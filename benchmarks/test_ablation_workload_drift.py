"""Ablation: robustness to workload drift.

The whole technique rests on "assuming that the individual users conform
to the previous behavior captured by the workload" (footnote 4).  This
bench stresses that assumption: count tables are trained on one user
population, then explorations are drawn from progressively drifted
populations (different attribute-usage profile).  Measured: how the
fraction of items examined degrades with drift, and whether the
cost-based technique still beats No-Cost even under heavy drift.
"""

from repro.core.algorithm import CostBasedCategorizer
from repro.core.baselines import NoCostCategorizer
from repro.core.config import PAPER_CONFIG
from repro.explore.exploration import replay_all
from repro.explore.metrics import fractional_cost, mean
from repro.study.report import format_table
from repro.workload.broadening import broaden_to_region
from repro.workload.generator import (
    DEFAULT_ATTRIBUTE_USAGE,
    WorkloadGeneratorConfig,
    generate_workload,
)
from repro.workload.preprocess import preprocess_workload


def drifted_usage(drift: float) -> dict[str, float]:
    """Interpolate the usage profile toward an inverted-interest population.

    At drift = 0 the future users match the training workload; at
    drift = 1 they mostly care about year built and square footage and
    rarely about bedrooms or price — the attributes the trained trees
    lead with.
    """
    inverted = dict(DEFAULT_ATTRIBUTE_USAGE)
    inverted.update(
        {
            "bedroomcount": 0.15,
            "price": 0.25,
            "yearbuilt": 0.70,
            "squarefootage": 0.70,
            "bathcount": 0.15,
        }
    )
    return {
        name: (1.0 - drift) * DEFAULT_ATTRIBUTE_USAGE[name] + drift * inverted[name]
        for name in DEFAULT_ATTRIBUTE_USAGE
    }


def test_ablation_workload_drift(benchmark, bench_homes, bench_workload):
    statistics = preprocess_workload(
        bench_workload, bench_homes.schema, PAPER_CONFIG.separation_intervals
    )
    cost_based = CostBasedCategorizer(statistics, PAPER_CONFIG)
    no_cost = NoCostCategorizer(statistics, PAPER_CONFIG)
    warm = broaden_to_region(
        next(w for w in bench_workload if w.constrains("neighborhood"))
    )
    warm_rows = warm.query.execute(bench_homes)
    benchmark(lambda: cost_based.categorize(warm_rows, warm.query))

    rows_out = []
    fractions = {}
    for drift in (0.0, 0.5, 1.0):
        future = generate_workload(
            WorkloadGeneratorConfig(
                query_count=400, seed=97, attribute_usage=drifted_usage(drift)
            )
        )
        explorations = [
            w for w in future
            if w.constrains("neighborhood") and len(w.conditions) >= 2
        ][:60]
        cb_fractions, nc_fractions = [], []
        for exploration in explorations:
            user_query = broaden_to_region(exploration)
            result_rows = user_query.query.execute(bench_homes)
            if len(result_rows) < PAPER_CONFIG.max_tuples_per_category:
                continue
            cb_tree = cost_based.categorize(result_rows, user_query.query)
            nc_tree = no_cost.categorize(result_rows, user_query.query)
            cb_fractions.append(
                fractional_cost(
                    replay_all(cb_tree, exploration).items_examined,
                    len(result_rows),
                )
            )
            nc_fractions.append(
                fractional_cost(
                    replay_all(nc_tree, exploration).items_examined,
                    len(result_rows),
                )
            )
        fractions[drift] = (mean(cb_fractions), mean(nc_fractions))
        rows_out.append(
            [
                f"{drift:.1f}",
                len(cb_fractions),
                f"{fractions[drift][0]:.3f}",
                f"{fractions[drift][1]:.3f}",
            ]
        )

    print()
    print(
        format_table(
            ["drift", "explorations", "cost-based fraction", "no-cost fraction"],
            rows_out,
            title="Workload-drift robustness (fraction of result set examined)",
        )
    )

    in_distribution = fractions[0.0][0]
    fully_drifted = fractions[1.0][0]
    assert fully_drifted >= in_distribution, (
        "drifted users should cost more — the workload assumption matters"
    )
    for drift, (cb, nc) in fractions.items():
        assert cb < nc, (
            f"drift {drift}: cost-based should still beat no-cost "
            "(its structure remains generically sensible)"
        )
