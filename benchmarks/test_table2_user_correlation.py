"""Table 2: per-subject correlation between estimated and actual cost.

Paper: 11 subjects, correlations from -0.08 to 1.00, average 0.67, strong
positive (>= 0.6) in 9 of 11 cases.

Reproduced shape: clearly positive average; a majority of subjects with
positive correlation; an occasional weak/negative subject is expected
(each subject contributes only 4 sessions).
"""

import math

from repro.study.report import format_table
from repro.study.stats import classify_correlation


def test_table2_per_user_correlation(benchmark, userstudy_result):
    benchmark(userstudy_result.correlation_table)

    table = userstudy_result.correlation_table()
    print()
    print(
        format_table(
            ["User", "Correlation", "band"],
            [
                [name, f"{r:.2f}" if not math.isnan(r) else "-",
                 classify_correlation(r)]
                for name, r in table
            ],
            title="Table 2: per-subject correlation, estimated vs actual cost",
        )
    )
    print("(paper: average 0.67; 9 of 11 between 0.6 and 1.0)")

    average = dict(table)["average"]
    user_rs = [r for name, r in table if name != "average" and not math.isnan(r)]
    assert average > 0.25, "subjects' costs must track the estimates on average"
    positive = sum(1 for r in user_rs if r > 0)
    assert positive >= len(user_rs) * 0.6, "most subjects should be positive"
