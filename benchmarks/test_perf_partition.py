"""Performance: the column-direct partition fast path.

Level construction is the categorizer's inner loop; this bench times one
full-level partitioning of a large result set through both RowSet APIs —
the generic per-row path and the column-direct fast path the partitioners
use — and asserts they agree and that the fast path is not slower.
"""

import time

from repro.study.report import format_table


def test_perf_partition_fast_path(benchmark, bench_homes):
    rows = bench_homes.all_rows()

    def generic():
        return rows.partition_by(lambda row: row["neighborhood"])

    def fast():
        return rows.partition_by_attribute("neighborhood", lambda value: value)

    generic_buckets = generic()
    fast_buckets = benchmark(fast)

    assert set(generic_buckets) == set(fast_buckets)
    for key in generic_buckets:
        assert generic_buckets[key].indices == fast_buckets[key].indices

    # Wall-clock comparison (median of a few runs each).
    def timed(fn, repeats=5):
        samples = []
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - started)
        return sorted(samples)[repeats // 2]

    generic_seconds = timed(generic)
    fast_seconds = timed(fast)
    print()
    print(
        format_table(
            ["path", "median seconds", "rows"],
            [
                ["partition_by (Row views)", f"{generic_seconds:.4f}", len(rows)],
                ["partition_by_attribute (column)", f"{fast_seconds:.4f}", len(rows)],
            ],
            title="Partition fast-path comparison",
        )
    )
    print(f"speedup: {generic_seconds / fast_seconds:.2f}x")
    assert fast_seconds <= generic_seconds * 1.2, (
        "the fast path must not be slower than the generic one"
    )
