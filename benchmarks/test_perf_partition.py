"""Performance: partition fast paths, hot-path caching, instrumentation.

Level construction is the categorizer's inner loop.  This module times

* one full-level partitioning through both RowSet APIs (generic per-row
  vs column-direct),
* the categorize hot path with the caching layer on vs off (groupby
  index, RowSet-derived partitionings, memoized workload statistics),
* the cost of the always-on instrumentation hooks when disabled.

Each bench appends its measurements to ``BENCH_partition.json`` at the
repo root so successive runs form a trajectory (the file is
machine-local and git-ignored; see docs/performance.md).
"""

import contextlib
import json
import time
from datetime import datetime, timezone
from pathlib import Path

from repro import perf
from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import PAPER_CONFIG
from repro.study.report import format_table
from repro.workload.preprocess import preprocess_workload

BENCH_TRAJECTORY = Path(__file__).resolve().parents[1] / "BENCH_partition.json"

#: Acceptance floor for the caching layer at bench scale.
REQUIRED_SPEEDUP = 1.5

#: Acceptance ceiling for disabled-mode instrumentation overhead.
MAX_DISABLED_OVERHEAD = 0.05

#: Acceptance ceiling for sampled-mode (1-in-10 traces) overhead.  Counters
#: and gauges stay always-on in this mode, so the bound is far looser than
#: the disabled one; measured runs land around +26% (docs/observability.md).
MAX_SAMPLED_OVERHEAD = 0.50


def _timed(fn, repeats=5, statistic="median"):
    """Wall-clock ``fn`` ``repeats`` times; return the median (or min)."""
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    if statistic == "min":
        return min(samples)
    return sorted(samples)[repeats // 2]


@contextlib.contextmanager
def _stubbed_perf():
    """Replace every perf hook with a no-op, as if never instrumented."""
    null_scope = contextlib.nullcontext()
    real = {name: getattr(perf, name) for name in ("count", "span", "timer")}
    perf.count = lambda name, value=1, **labels: None
    perf.span = lambda name: null_scope
    perf.timer = lambda name: null_scope
    try:
        yield
    finally:
        for name, fn in real.items():
            setattr(perf, name, fn)


def _timed_vs_stubbed(fn, repeats=15):
    """Min wall-clock of ``fn`` instrumented vs perf-stubbed, interleaved.

    Alternating the two configurations within one loop cancels the slow
    drift (CPU frequency scaling, cache warming, noisy neighbors) that
    sequential min-of-N blocks are exposed to.
    """
    instrumented: list[float] = []
    stubbed: list[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        instrumented.append(time.perf_counter() - started)
        with _stubbed_perf():
            started = time.perf_counter()
            fn()
            stubbed.append(time.perf_counter() - started)
    return min(instrumented), min(stubbed)


def _append_bench_record(bench, record):
    """Append one measurement to the BENCH_partition.json trajectory."""
    data = {"schema": "bench.partition.v1", "runs": []}
    if BENCH_TRAJECTORY.exists():
        try:
            loaded = json.loads(BENCH_TRAJECTORY.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                data = loaded
        except (ValueError, OSError):
            pass  # corrupt trajectory: start a fresh one
    data["runs"].append(
        {
            "bench": bench,
            "timestamp": datetime.now(timezone.utc).isoformat(),
            **record,
        }
    )
    BENCH_TRAJECTORY.write_text(json.dumps(data, indent=2) + "\n")


def _tree_shape(node):
    return (
        len(node.rows),
        str(node.label),
        [_tree_shape(child) for child in node.children],
    )


def test_perf_partition_fast_path(benchmark, bench_homes):
    rows = bench_homes.all_rows()

    def generic():
        return rows.partition_by(lambda row: row["neighborhood"])

    def fast():
        return rows.partition_by_attribute("neighborhood", lambda value: value)

    generic_buckets = generic()
    fast_buckets = benchmark(fast)

    assert set(generic_buckets) == set(fast_buckets)
    for key in generic_buckets:
        assert generic_buckets[key].indices == fast_buckets[key].indices

    # Wall-clock comparison (median of a few runs each).
    generic_seconds = _timed(generic)
    fast_seconds = _timed(fast)
    print()
    print(
        format_table(
            ["path", "median seconds", "rows"],
            [
                ["partition_by (Row views)", f"{generic_seconds:.4f}", len(rows)],
                ["partition_by_attribute (column)", f"{fast_seconds:.4f}", len(rows)],
            ],
            title="Partition fast-path comparison",
        )
    )
    print(f"speedup: {generic_seconds / fast_seconds:.2f}x")
    _append_bench_record(
        "partition_fast_path",
        {
            "rows": len(rows),
            "generic_ms": round(generic_seconds * 1e3, 3),
            "fast_ms": round(fast_seconds * 1e3, 3),
            "speedup": round(generic_seconds / fast_seconds, 2),
        },
    )
    assert fast_seconds <= generic_seconds * 1.2, (
        "the fast path must not be slower than the generic one"
    )


def test_perf_categorize_hot_path_caching(
    bench_homes, bench_workload, bench_seattle_query
):
    """The caching layer must speed up steady-state categorize >= 1.5x.

    Cold: statistics memoization off AND ``enable_caches=False`` — every
    call recomputes partitionings, bounds and probabilities from scratch.
    Warm: the defaults — the table groupby index, RowSet-derived
    partitionings and memoized count-table lookups all hit after the
    first call, which is the serving pattern (the same result set is
    re-categorized as the exploration UI re-renders).
    """
    query, rows = bench_seattle_query
    cold_statistics = preprocess_workload(
        bench_workload,
        bench_homes.schema,
        PAPER_CONFIG.separation_intervals,
        memoize=False,
    )
    warm_statistics = preprocess_workload(
        bench_workload, bench_homes.schema, PAPER_CONFIG.separation_intervals
    )
    cold = CostBasedCategorizer(
        cold_statistics, PAPER_CONFIG.with_overrides(enable_caches=False)
    )
    warm = CostBasedCategorizer(warm_statistics, PAPER_CONFIG)

    # Correctness first: both configurations build the identical tree.
    cold_tree = cold.categorize(rows, query)
    warm_tree = warm.categorize(rows, query)
    assert _tree_shape(cold_tree.root) == _tree_shape(warm_tree.root)

    cold_seconds = _timed(lambda: cold.categorize(rows, query), repeats=5)
    warm_seconds = _timed(lambda: warm.categorize(rows, query), repeats=7)
    speedup = cold_seconds / warm_seconds

    print()
    print(
        format_table(
            ["configuration", "median seconds", "result rows"],
            [
                ["cold (caches off)", f"{cold_seconds:.4f}", len(rows)],
                ["warm (caches on)", f"{warm_seconds:.4f}", len(rows)],
            ],
            title="Categorize hot path: caching layer",
        )
    )
    print(f"speedup: {speedup:.2f}x (required >= {REQUIRED_SPEEDUP}x)")
    _append_bench_record(
        "categorize_hot_path",
        {
            "table_rows": len(bench_homes),
            "workload_queries": len(bench_workload),
            "result_rows": len(rows),
            "cold_ms": round(cold_seconds * 1e3, 3),
            "warm_ms": round(warm_seconds * 1e3, 3),
            "speedup": round(speedup, 2),
        },
    )
    assert speedup >= REQUIRED_SPEEDUP


def test_perf_instrumentation_disabled_overhead(
    bench_statistics, bench_seattle_query
):
    """Disabled instrumentation must cost <= 5% on the categorize hot path.

    Baseline: the same run with every perf hook stubbed to a no-op, i.e.
    as if the call sites were never instrumented.  Both sides run warm
    (caches populated), interleaved, taking the min of many repeats — the
    most noise-resistant wall-clock statistic.
    """
    query, rows = bench_seattle_query
    categorizer = CostBasedCategorizer(bench_statistics, PAPER_CONFIG)

    def run():
        return categorizer.categorize(rows, query)

    run()  # populate every cache so both sides measure steady state
    assert not perf.enabled()
    instrumented, stubbed = _timed_vs_stubbed(run, repeats=15)

    overhead = instrumented / stubbed - 1.0
    print()
    print(
        format_table(
            ["configuration", "min seconds"],
            [
                ["disabled instrumentation", f"{instrumented:.4f}"],
                ["no-op stubs", f"{stubbed:.4f}"],
            ],
            title="Instrumentation disabled-mode overhead",
        )
    )
    print(
        f"overhead: {overhead * 100:+.2f}% "
        f"(budget {MAX_DISABLED_OVERHEAD * 100:.0f}%)"
    )
    _append_bench_record(
        "instrumentation_disabled_overhead",
        {
            "instrumented_ms": round(instrumented * 1e3, 3),
            "stubbed_ms": round(stubbed * 1e3, 3),
            "overhead_pct": round(overhead * 100, 2),
        },
    )
    assert instrumented <= stubbed * (1.0 + MAX_DISABLED_OVERHEAD)


def test_perf_instrumentation_sampled_overhead(
    bench_statistics, bench_seattle_query
):
    """Sampled tracing (1 in 10 roots) must cost <= 50% over uninstrumented.

    Enabled mode keeps counters/gauges always-on and traces only every
    tenth root span, which is the intended production posture: cheap
    steady-state accounting plus a representative latency sample.  The
    baseline is the same no-op-stub configuration the disabled-mode bench
    uses, i.e. code compiled as if never instrumented.
    """
    query, rows = bench_seattle_query
    categorizer = CostBasedCategorizer(bench_statistics, PAPER_CONFIG)

    def run():
        return categorizer.categorize(rows, query)

    run()  # populate caches: both sides measure steady state
    assert not perf.enabled()
    perf.enable()
    perf.set_sampling(every=10)
    try:
        sampled, stubbed = _timed_vs_stubbed(run, repeats=15)
    finally:
        perf.clear_sampling()
        perf.reset()
        perf.disable()

    overhead = sampled / stubbed - 1.0
    print()
    print(
        format_table(
            ["configuration", "min seconds"],
            [
                ["sampled tracing (every=10)", f"{sampled:.4f}"],
                ["no-op stubs", f"{stubbed:.4f}"],
            ],
            title="Instrumentation sampled-mode overhead",
        )
    )
    print(
        f"overhead: {overhead * 100:+.2f}% "
        f"(budget {MAX_SAMPLED_OVERHEAD * 100:.0f}%)"
    )
    _append_bench_record(
        "instrumentation_sampled_overhead",
        {
            "sampled_ms": round(sampled * 1e3, 3),
            "stubbed_ms": round(stubbed * 1e3, 3),
            "overhead_pct": round(overhead * 100, 2),
        },
    )
    assert sampled <= stubbed * (1.0 + MAX_SAMPLED_OVERHEAD)
