"""Ablation: independence assumption vs correlation-aware estimation.

Section 5.2: "the quality of the categorization can be improved by
weakening this independence assumption and leveraging the correlations
captured in the workload".  This bench compares the paper's marginal
estimator against :class:`repro.core.correlation.CorrelationAwareEstimator`
on estimation accuracy: for a sample of broadened queries, each
estimator's CostAll prediction for the same cost-based tree is correlated
against the replayed actual costs of held-out explorations.
"""

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import PAPER_CONFIG
from repro.core.correlation import CorrelationAwareEstimator
from repro.core.cost import CostModel
from repro.core.probability import ProbabilityEstimator
from repro.explore.exploration import replay_all
from repro.study.report import format_table
from repro.study.stats import pearson
from repro.workload.broadening import broaden_to_region
from repro.workload.log import Workload


def test_ablation_correlation_aware_estimation(
    benchmark, bench_homes, bench_workload, bench_statistics
):
    # A reduced joint index keeps the per-node conditional scans fast.
    joint_sample = Workload(bench_workload.sample(3_000, seed=71))
    marginal = CostModel(ProbabilityEstimator(bench_statistics), PAPER_CONFIG)
    conditional = CostModel(
        CorrelationAwareEstimator(bench_statistics, joint_sample, min_support=40),
        PAPER_CONFIG,
    )
    categorizer = CostBasedCategorizer(bench_statistics, PAPER_CONFIG)

    explorations = [
        w for w in bench_workload.sample(600, seed=77)
        if w.constrains("neighborhood") and len(w.conditions) >= 2
    ][:60]
    marginal_estimates, conditional_estimates, actuals = [], [], []
    for exploration in explorations:
        user_query = broaden_to_region(exploration)
        rows = user_query.query.execute(bench_homes)
        if len(rows) < PAPER_CONFIG.max_tuples_per_category:
            continue
        tree = categorizer.categorize(rows, user_query.query)
        marginal_estimates.append(marginal.tree_cost_all(tree))
        conditional_estimates.append(conditional.tree_cost_all(tree))
        actuals.append(replay_all(tree, exploration).items_examined)

    benchmark(lambda: marginal.tree_cost_all(
        categorizer.categorize(
            broaden_to_region(explorations[0]).query.execute(bench_homes),
            broaden_to_region(explorations[0]).query,
        )
    ))

    r_marginal = pearson(marginal_estimates, actuals)
    r_conditional = pearson(conditional_estimates, actuals)
    bias_marginal = sum(marginal_estimates) / sum(actuals)
    bias_conditional = sum(conditional_estimates) / sum(actuals)
    print()
    print(
        format_table(
            ["estimator", "Pearson r vs actual", "Σestimated/Σactual"],
            [
                ["marginal (paper, Section 4.2)", f"{r_marginal:.3f}",
                 f"{bias_marginal:.2f}"],
                ["correlation-aware (Section 5.2)", f"{r_conditional:.3f}",
                 f"{bias_conditional:.2f}"],
            ],
            title=f"Estimator ablation over {len(actuals)} explorations",
        )
    )

    assert len(actuals) >= 30
    assert r_marginal > 0.2 and r_conditional > 0.2
    # The conditional estimator must not be materially worse; on correlated
    # workloads it should match or improve the marginal one.
    assert r_conditional >= r_marginal - 0.1
