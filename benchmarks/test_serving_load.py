"""Performance: threading vs asyncio front end under closed-loop load.

The tentpole claim for the async front end is throughput under the
workload an interactive search site actually sees — many concurrent
clients, few distinct queries.  Both servers wrap *identical* services
(bench-scale table, cache off, so every duplicate is real work unless
the front end coalesces it) and face the same 32 closed-loop clients
over a duplicate-heavy mix with a real request deadline:

* the threading server computes every duplicate on its own thread,
  serialized by the GIL;
* the async server coalesces concurrent duplicates into one computation
  and tightens deadlines under pressure instead of queueing unboundedly.

Appends ``serving_load`` to ``BENCH_partition.json``; the regression
gate (``benchmarks/compare_bench.py``) tracks ``async_req_ms`` (inverse
throughput) and ``p99_ms`` so both the capacity and the tail are pinned.
"""

from __future__ import annotations

from repro import perf
from repro.serving.aserve import start_in_thread
from repro.serving.http import make_server, serve_in_thread
from repro.serving.loadgen import run_loadgen
from repro.serving.relation import Relation
from repro.serving.service import CategorizationService
from repro.study.report import format_table

from benchmarks.test_perf_partition import _append_bench_record

#: Duplicate-heavy mix: 32 clients over 2 distinct queries.
MIX = (
    "SELECT * FROM ListProperty WHERE price <= 300000",
    "SELECT * FROM ListProperty WHERE bedroomcount = 3",
)

CLIENTS = 32
REQUESTS_PER_CLIENT = 3
DEADLINE_MS = 1000.0

#: The async front end must at least double the threading throughput on
#: this workload (the ISSUE's acceptance bar).
REQUIRED_SPEEDUP = 2.0


def _fresh_service(bench_homes, bench_statistics) -> CategorizationService:
    # cache_capacity=0: a duplicate answered cheaply means the *front end*
    # deduplicated it, not the result cache.
    return CategorizationService(
        Relation(bench_homes, bench_statistics.copy()), cache_capacity=0
    )


def test_perf_serving_load(bench_homes, bench_statistics):
    # -- threading baseline --------------------------------------------------
    threading_server = make_server(
        _fresh_service(bench_homes, bench_statistics), port=0
    )
    serve_in_thread(threading_server)
    try:
        host, port = threading_server.server_address[:2]
        threading_report = run_loadgen(
            f"http://{host}:{port}",
            sqls=MIX,
            clients=CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT,
            deadline_ms=DEADLINE_MS,
            timeout_s=120.0,
        )
    finally:
        threading_server.shutdown()
        threading_server.server_close()

    # -- async front end -----------------------------------------------------
    perf.reset()
    perf.enable()
    try:
        handle = start_in_thread(
            _fresh_service(bench_homes, bench_statistics),
            max_inflight=8,
            max_queue=64,
            pressure_deadline_ms=DEADLINE_MS,
        )
        try:
            async_report = run_loadgen(
                handle.url,
                sqls=MIX,
                clients=CLIENTS,
                requests_per_client=REQUESTS_PER_CLIENT,
                deadline_ms=DEADLINE_MS,
                timeout_s=120.0,
            )
        finally:
            handle.stop()
        coalesced_counter = perf.ACTIVE.counters.get("aserve.coalesced", 0)
        shed_counter = sum(
            value
            for key, value in perf.ACTIVE.counters.items()
            if key.startswith("aserve.shed")
        )
    finally:
        perf.disable()
        perf.reset()

    speedup = (
        async_report.throughput_rps / threading_report.throughput_rps
        if threading_report.throughput_rps
        else float("inf")
    )
    print()
    print(
        format_table(
            ["front end", "req/s", "p50 ms", "p99 ms", "coalesced", "shed"],
            [
                ["threading", f"{threading_report.throughput_rps:.1f}",
                 f"{threading_report.p50_ms:.1f}",
                 f"{threading_report.p99_ms:.1f}", "-", "-"],
                ["async", f"{async_report.throughput_rps:.1f}",
                 f"{async_report.p50_ms:.1f}",
                 f"{async_report.p99_ms:.1f}",
                 async_report.coalesced, async_report.shed],
            ],
            title=(
                f"Closed-loop load: {CLIENTS} clients x "
                f"{REQUESTS_PER_CLIENT} requests, {len(MIX)} distinct queries "
                f"({speedup:.1f}x)"
            ),
        )
    )
    _append_bench_record(
        "serving_load",
        {
            "clients": CLIENTS,
            "requests": async_report.requests,
            "threading_rps": round(threading_report.throughput_rps, 2),
            "async_rps": round(async_report.throughput_rps, 2),
            "speedup": round(speedup, 2),
            # Inverse throughput so the gate's lower-is-better diff works.
            "async_req_ms": round(1000.0 / async_report.throughput_rps, 3),
            "p99_ms": round(async_report.p99_ms, 3),
            "coalesced": async_report.coalesced,
            "shed": async_report.shed,
        },
    )

    # Zero dropped requests on either front end: every request sent got an
    # HTTP answer (503s included), never a transport error.
    for report in (threading_report, async_report):
        assert report.responses == report.requests
        assert report.errors == 0
    # Every shed request is a counted 503, and vice versa.
    assert async_report.shed == shed_counter
    # The duplicate-heavy mix must actually exercise the singleflight path.
    assert async_report.coalesced > 0
    assert coalesced_counter >= async_report.coalesced
    # The tail stays inside the request deadline: shedding quality (rungs)
    # under pressure is what keeps p99 bounded while throughput doubles.
    assert async_report.p99_ms <= DEADLINE_MS, (
        f"async p99 {async_report.p99_ms:.1f} ms blew the "
        f"{DEADLINE_MS:.0f} ms deadline"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"async front end is only {speedup:.2f}x the threading throughput "
        f"(need {REQUIRED_SPEEDUP:.1f}x)"
    )
