"""Ablation: WHERE to cut — workload splitpoints vs evenly spaced cuts.

Section 5.1.3's design choice is boundary *placement*: given the same
number of buckets m, put the m−1 cuts at the gridpoints where the most
workload ranges begin/end (goodness score) rather than spacing them
evenly.  This bench partitions the same result set on price both ways
with identical m and replays held-out price-constrained explorations:
goodness-placed cuts let users ignore more buckets, so the actual
exploration cost must be lower.
"""

from repro.core.config import PAPER_CONFIG
from repro.core.cost import CostModel
from repro.core.partition.numeric import NumericPartitioner, bucketize
from repro.core.probability import ProbabilityEstimator
from repro.core.tree import CategoryNode, CategoryTree
from repro.data.geography import SEATTLE_BELLEVUE
from repro.explore.exploration import replay_all
from repro.relational.expressions import InPredicate
from repro.relational.query import SelectQuery
from repro.study.report import format_table


def build_price_tree(rows, query, partitioning, name):
    root = CategoryNode(rows)
    if len(partitioning) >= 2:
        root.add_children("price", partitioning)
    return CategoryTree(root, query=query, technique=name)


def test_ablation_splitpoint_placement(
    benchmark, bench_homes, bench_statistics, bench_workload
):
    query = SelectQuery(
        "ListProperty",
        InPredicate("neighborhood", SEATTLE_BELLEVUE.neighborhood_names()),
    )
    rows = query.execute(bench_homes)

    smart = NumericPartitioner(
        "price", bench_statistics, PAPER_CONFIG, query=query, root_rows=rows
    )
    benchmark(lambda: smart.partition(rows))
    smart_partitioning = smart.partition(rows)
    cut_count = len(smart_partitioning) - 1
    assert cut_count >= 2, "need a multi-bucket partitioning to compare"

    # Evenly spaced cuts over the same (vmin, vmax), same bucket count.
    span = smart.vmax - smart.vmin
    even_cuts = [
        smart.vmin + span * (i + 1) / (cut_count + 1) for i in range(cut_count)
    ]
    even_partitioning = bucketize("price", rows, smart.vmin, smart.vmax, even_cuts)

    trees = {
        "goodness splitpoints": build_price_tree(
            rows, query, smart_partitioning, "splitpoints"
        ),
        "evenly spaced": build_price_tree(rows, query, even_partitioning, "even"),
    }

    explorations = [
        w for w in bench_workload.sample(600, seed=3)
        if w.constrains("price")
        and w.in_values("neighborhood")
        and w.in_values("neighborhood")
        <= set(SEATTLE_BELLEVUE.neighborhood_names())
    ][:60]
    assert explorations, "need price-constrained Seattle explorations"

    model = CostModel(ProbabilityEstimator(bench_statistics), PAPER_CONFIG)
    rows_out, measured = [], {}
    for name, tree in trees.items():
        estimated = model.tree_cost_all(tree)
        actual = sum(
            replay_all(tree, w).items_examined for w in explorations
        ) / len(explorations)
        measured[name] = (estimated, actual)
        rows_out.append(
            [name, len(tree.root.children), f"{estimated:.1f}", f"{actual:.1f}"]
        )

    print()
    print(
        format_table(
            ["cut placement", "buckets", "estimated CostAll", "avg actual cost"],
            rows_out,
            title=(
                f"Splitpoint-placement ablation ({cut_count} cuts, "
                f"{len(explorations)} explorations)"
            ),
        )
    )

    smart_est, smart_act = measured["goodness splitpoints"]
    even_est, even_act = measured["evenly spaced"]
    assert smart_act <= even_act * 1.05, (
        "goodness-placed cuts should cost users less in replay"
    )
    assert smart_est <= even_est * 1.15, (
        "goodness-placed cuts should not lose materially on estimated cost"
    )
