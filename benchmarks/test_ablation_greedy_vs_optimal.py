"""Ablation: the greedy Figure 6 algorithm vs exhaustive enumeration.

Section 5 motivates the greedy level-by-level algorithm by noting that
full enumeration "could be prohibitively expensive".  This bench measures
what the greediness costs: on result sets small enough to enumerate every
attribute-to-level assignment, compare the greedy tree's CostAll against
the enumerated optimum (and count how much more work enumeration does).
"""

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import PAPER_CONFIG
from repro.core.cost import CostModel
from repro.core.enumerate import enumerate_optimal_tree
from repro.core.probability import ProbabilityEstimator
from repro.study.report import format_table
from repro.workload.broadening import broaden_to_region


def test_ablation_greedy_vs_enumerated_optimum(
    benchmark, bench_homes, bench_workload, bench_statistics
):
    # Use modest result sets (small regions) so 1,956 trees per query stay fast.
    explorations = [
        w for w in bench_workload.sample(300, seed=57)
        if w.constrains("neighborhood") and len(w.conditions) >= 2
    ]
    model = CostModel(ProbabilityEstimator(bench_statistics), PAPER_CONFIG)
    greedy = CostBasedCategorizer(bench_statistics, PAPER_CONFIG)

    rows_out = []
    ratios = []
    measured = 0
    for exploration in explorations:
        if measured >= 5:
            break
        user_query = broaden_to_region(exploration)
        rows = user_query.query.execute(bench_homes)
        if not 50 <= len(rows) <= 700:
            continue
        measured += 1
        greedy_tree = greedy.categorize(rows, user_query.query)
        greedy_cost = model.tree_cost_all(greedy_tree)
        optimum = enumerate_optimal_tree(
            rows, user_query.query, bench_statistics, PAPER_CONFIG
        )
        ratio = greedy_cost / optimum.best_cost if optimum.best_cost else 1.0
        ratios.append(ratio)
        rows_out.append(
            [
                len(rows),
                f"{greedy_cost:.1f}",
                f"{optimum.best_cost:.1f}",
                f"{ratio:.3f}",
                optimum.trees_evaluated,
            ]
        )

    assert measured == 5, "expected five enumerable queries"
    benchmark(lambda: greedy.categorize(
        broaden_to_region(explorations[0]).query.execute(bench_homes),
        broaden_to_region(explorations[0]).query,
    ))

    print()
    print(
        format_table(
            ["|R|", "greedy CostAll", "optimal CostAll", "greedy/optimal",
             "trees enumerated"],
            rows_out,
            title="Greedy (Figure 6) vs exhaustive enumeration",
        )
    )
    print(f"worst ratio: {max(ratios):.3f}")

    assert all(r >= 1.0 - 1e-9 for r in ratios), "optimum must lower-bound greedy"
    assert max(ratios) <= 1.3, (
        "the greedy algorithm should stay within 30% of the enumerated optimum"
    )
