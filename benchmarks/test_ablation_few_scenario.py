"""Ablation: the scenario spectrum between ONE and ALL.

Section 3.2: "other scenarios (e.g., user interested in two/few tuples)
fall in between these two ends of the spectrum".  This bench replays
held-out explorations under the FEW scenario for increasing k and checks
the interpolation claim empirically: actual cost grows monotonically from
the ONE cost to the ALL cost, and the analytic CostFew estimate tracks
the same curve.
"""

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import PAPER_CONFIG
from repro.core.cost import CostModel
from repro.core.probability import ProbabilityEstimator
from repro.explore.exploration import replay_all, replay_few, replay_one
from repro.study.report import format_table
from repro.workload.broadening import broaden_to_region

K_VALUES = (1, 2, 3, 5, 10, 25)


def test_ablation_few_scenario_spectrum(
    benchmark, bench_homes, bench_workload, bench_statistics
):
    categorizer = CostBasedCategorizer(bench_statistics, PAPER_CONFIG)
    model = CostModel(ProbabilityEstimator(bench_statistics), PAPER_CONFIG)

    explorations = [
        w for w in bench_workload.sample(400, seed=91)
        if w.constrains("neighborhood") and len(w.conditions) >= 3
    ][:30]
    prepared = []
    for exploration in explorations:
        user_query = broaden_to_region(exploration)
        rows = user_query.query.execute(bench_homes)
        if len(rows) < 100:
            continue
        prepared.append(
            (exploration, categorizer.categorize(rows, user_query.query))
        )
    assert len(prepared) >= 10
    benchmark(lambda: replay_few(prepared[0][1], prepared[0][0], k=3))

    actual_by_k = {
        k: sum(
            replay_few(tree, w, k).items_examined for w, tree in prepared
        ) / len(prepared)
        for k in K_VALUES
    }
    one_cost = sum(
        replay_one(tree, w).items_examined for w, tree in prepared
    ) / len(prepared)
    all_cost = sum(
        replay_all(tree, w).items_examined for w, tree in prepared
    ) / len(prepared)
    estimated_by_k = {
        k: sum(model.tree_cost_few(tree, k) for _, tree in prepared) / len(prepared)
        for k in K_VALUES
    }

    print()
    print(
        format_table(
            ["k", "actual avg cost", "estimated CostFew"],
            [
                [k, f"{actual_by_k[k]:.1f}", f"{estimated_by_k[k]:.1f}"]
                for k in K_VALUES
            ],
            title=f"FEW-scenario spectrum ({len(prepared)} explorations)",
        )
    )
    print(f"ONE-scenario avg: {one_cost:.1f}   ALL-scenario avg: {all_cost:.1f}")

    actual_curve = [actual_by_k[k] for k in K_VALUES]
    assert actual_curve == sorted(actual_curve), "actual cost must grow with k"
    assert abs(actual_by_k[1] - one_cost) < 1e-9, "k=1 must equal the ONE scenario"
    assert actual_by_k[K_VALUES[-1]] <= all_cost + 1e-9, (
        "FEW cost is bounded by the ALL cost"
    )
    estimated_curve = [estimated_by_k[k] for k in K_VALUES]
    assert estimated_curve == sorted(estimated_curve)
