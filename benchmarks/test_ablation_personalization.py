"""Ablation: personalization (the paper's footnote 4, implemented).

"We can get some of this knowledge by observing past behavior of this
particular user ... We do not pursue that direction in this paper."
This bench pursues it: simulated users with strong idiosyncratic
interests (they always filter by year built — a LOW-usage attribute the
global workload would never select) explore (a) the global tree and
(b) a tree personalized with their own query history.  Personalization
must reduce the items they examine.
"""

import random

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import PAPER_CONFIG
from repro.data.geography import SEATTLE_BELLEVUE
from repro.explore.exploration import replay_all
from repro.relational.expressions import InPredicate
from repro.relational.query import SelectQuery
from repro.study.report import format_table
from repro.workload.log import Workload
from repro.workload.model import WorkloadQuery
from repro.workload.personalization import personalized_statistics, weight_for_share
from repro.workload.preprocess import preprocess_workload


def make_history_and_explorations(seed: int) -> tuple[Workload, list[WorkloadQuery]]:
    """A year-built-obsessed buyer: history + future searches alike."""
    rng = random.Random(seed)
    statements = []
    for _ in range(14):
        hood = rng.choice(SEATTLE_BELLEVUE.neighborhood_names()[:8])
        year = rng.choice((1980, 1990, 1995, 2000))
        statements.append(
            f"SELECT * FROM ListProperty WHERE neighborhood IN ('{hood}') "
            f"AND yearbuilt >= {year}"
        )
    workload = Workload.from_sql_strings(statements)
    history = Workload(list(workload)[:8])
    future = list(workload)[8:]
    return history, future


def test_ablation_personalization(benchmark, bench_homes, bench_workload):
    query = SelectQuery(
        "ListProperty",
        InPredicate("neighborhood", SEATTLE_BELLEVUE.neighborhood_names()),
    )
    rows = query.execute(bench_homes)
    global_stats = preprocess_workload(
        bench_workload, bench_homes.schema, PAPER_CONFIG.separation_intervals
    )
    global_tree = CostBasedCategorizer(global_stats, PAPER_CONFIG).categorize(
        rows, query
    )
    benchmark(lambda: CostBasedCategorizer(global_stats, PAPER_CONFIG).categorize(
        rows, query
    ))

    rows_out = []
    improvements = []
    for seed in range(5):
        history, future = make_history_and_explorations(seed)
        weight = weight_for_share(bench_workload, history, 0.45)
        personal_stats = personalized_statistics(
            bench_workload,
            history,
            bench_homes.schema,
            PAPER_CONFIG.separation_intervals,
            personal_weight=weight,
        )
        personal_tree = CostBasedCategorizer(
            personal_stats, PAPER_CONFIG
        ).categorize(rows, query)

        global_cost = sum(
            replay_all(global_tree, w).items_examined for w in future
        ) / len(future)
        personal_cost = sum(
            replay_all(personal_tree, w).items_examined for w in future
        ) / len(future)
        improvements.append(global_cost / personal_cost)
        rows_out.append(
            [
                f"user {seed}",
                f"{global_cost:.0f}",
                f"{personal_cost:.0f}",
                f"{global_cost / personal_cost:.2f}x",
                "yearbuilt" in personal_tree.level_attributes(),
            ]
        )

    print()
    print(
        format_table(
            ["subject", "global tree cost", "personalized tree cost",
             "improvement", "yearbuilt level added"],
            rows_out,
            title="Personalization ablation (year-built-obsessed buyers)",
        )
    )

    mean_improvement = sum(improvements) / len(improvements)
    print(f"mean improvement: {mean_improvement:.2f}x")
    assert mean_improvement > 1.2, (
        "personalized trees should clearly reduce idiosyncratic users' cost"
    )
    assert sum(1 for i in improvements if i >= 1.0) >= 4, (
        "personalization should help nearly every such user"
    )
