"""Figure 12: average items examined until the FIRST relevant tuple.

Paper: as in the ALL scenario, subjects examined significantly fewer items
to find their first relevant tuple with the cost-based technique — this is
where the occ-descending category ordering (Section 5.1.2) pays off.

Reproduced shape: cost-based lowest average across tasks.
"""

from repro.explore.metrics import mean
from repro.study.report import format_series


def test_fig12_cost_one_scenario(benchmark, userstudy_result):
    benchmark(lambda: userstudy_result.figure_series("cost_one"))

    series = userstudy_result.figure_series("cost_one")
    print()
    print(
        format_series(
            series,
            [f"Task {i + 1}" for i in range(4)],
            title="Figure 12: avg #items examined until first relevant tuple",
            value_format="{:.0f}",
        )
    )
    print("(paper: cost-based significantly fewer items than the baselines)")

    overall = {t: mean(v) for t, v in series.items()}
    assert overall["cost-based"] == min(overall.values())
    assert overall["no-cost"] > overall["cost-based"]
