"""Shared fixtures for the benchmark harness.

All experiment data is generated once per benchmark session at "bench
scale" — large enough that the paper's shapes are visible, small enough
that the full suite finishes in minutes:

* 30,000-row ListProperty table (paper: 1.7 M),
* 12,000-query workload (paper: 176,262),
* simulated study: 8 disjoint subsets of 50 explorations (paper: 8 x 100),
* user study: 11 simulated subjects, 4 tasks, 3 techniques (as the paper).

Every bench prints the reproduced table/series through
:mod:`repro.study.report`, so the bench log reads like the paper's
evaluation section; EXPERIMENTS.md records paper-vs-measured.
"""

from __future__ import annotations

import pytest

from repro.core.algorithm import CostBasedCategorizer
from repro.core.baselines import AttrCostCategorizer, NoCostCategorizer
from repro.core.config import PAPER_CONFIG
from repro.data.homes import generate_homes
from repro.study.simulated import run_simulated_study
from repro.study.userstudy import run_user_study
from repro.workload.generator import WorkloadGeneratorConfig, generate_workload
from repro.workload.preprocess import preprocess_workload

BENCH_ROWS = 30_000
BENCH_QUERIES = 12_000
TECHNIQUES = [CostBasedCategorizer, AttrCostCategorizer, NoCostCategorizer]


@pytest.fixture(scope="session")
def bench_homes():
    """The bench-scale ListProperty relation."""
    return generate_homes(rows=BENCH_ROWS, seed=7)


@pytest.fixture(scope="session")
def bench_workload():
    """The bench-scale synthetic query log."""
    return generate_workload(
        WorkloadGeneratorConfig(query_count=BENCH_QUERIES, seed=41)
    )


@pytest.fixture(scope="session")
def bench_statistics(bench_homes, bench_workload):
    """Count tables over the full bench workload."""
    return preprocess_workload(
        bench_workload, bench_homes.schema, PAPER_CONFIG.separation_intervals
    )


@pytest.fixture(scope="session")
def simulated_result(bench_homes, bench_workload):
    """The Section 6.2 cross-validated study (Fig 7, Table 1, Fig 8)."""
    return run_simulated_study(
        bench_homes,
        bench_workload,
        TECHNIQUES,
        config=PAPER_CONFIG,
        subset_count=8,
        subset_size=50,
        seed=17,
    )


@pytest.fixture(scope="session")
def userstudy_result(bench_homes, bench_workload):
    """The Section 6.3 study (Tables 2-4, Figs 9-12).

    33 simulated subjects instead of the paper's 11: each (task,
    technique) cell then averages ~11 sessions instead of ~4, keeping the
    stochastic user model's noise below the effect sizes being measured.
    The protocol (tasks, technique rotation, measurements) is the paper's.
    """
    return run_user_study(
        bench_homes,
        bench_workload,
        TECHNIQUES,
        config=PAPER_CONFIG,
        subject_count=33,
        seed=23,
    )


@pytest.fixture(scope="session")
def bench_seattle_query(bench_homes):
    """The representative large query: Seattle-side neighborhoods.

    Returns ``(query, rows)`` — the biggest single result set the bench
    table yields, used by the hot-path timing benches.
    """
    from repro.data.geography import SEATTLE_BELLEVUE
    from repro.relational.expressions import InPredicate
    from repro.relational.query import SelectQuery

    query = SelectQuery(
        "ListProperty",
        InPredicate("neighborhood", SEATTLE_BELLEVUE.neighborhood_names()),
    )
    return query, query.execute(bench_homes)


@pytest.fixture(scope="session")
def categorize_one(bench_statistics, bench_seattle_query):
    """A representative single categorization call, for timing."""
    query, rows = bench_seattle_query

    def run():
        return CostBasedCategorizer(bench_statistics, PAPER_CONFIG).categorize(
            rows, query
        )

    return run
