"""Regression gate over the BENCH_partition.json trajectory.

Compares the two most recent runs of each gated benchmark and fails
(exit code 1) when the newest run is more than ``--threshold`` slower
than the previous one.  This is the CI tripwire behind the perf-smoke
job: the trajectory file is restored from the previous run's cache, the
bench suite appends the current measurements, and this script diffs the
tail.

Usage::

    python benchmarks/compare_bench.py                      # gate defaults
    python benchmarks/compare_bench.py --threshold 0.1      # stricter
    python benchmarks/compare_bench.py --trajectory path.json

With fewer than two runs of a gated bench the script reports a baseline
note and exits 0 — a fresh machine (or an expired CI cache) must not
fail the build.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_TRAJECTORY = Path(__file__).resolve().parents[1] / "BENCH_partition.json"

#: Newest run may be at most this fraction slower than the previous one.
DEFAULT_THRESHOLD = 0.20

#: (bench name, lower-is-better metric) pairs gated by default.  Only
#: hot-path latency metrics belong here: ratios like ``speedup`` compare
#: two same-machine timings and are gated by the bench's own assertion.
GATED_METRICS: tuple[tuple[str, str], ...] = (
    ("categorize_hot_path", "warm_ms"),
    ("partition_fast_path", "fast_ms"),
    ("serving_hot_path", "warm_ms"),
    ("columnar_scale", "columnar_ms"),
    ("sharded_scale", "sharded_ms"),
    ("serving_load", "async_req_ms"),
    ("serving_load", "p99_ms"),
    ("warm_start", "warm_boot_ms"),
    # Telemetry overhead gates on same-run ratios (installed vs no
    # pipeline), not raw microsecond latencies: on a ~50us warm path,
    # run-to-run machine drift alone can blow a 20% absolute budget.
    ("telemetry_overhead", "off_ratio"),
    ("telemetry_overhead", "sampled_ratio"),
)


def load_runs(trajectory: Path) -> list[dict]:
    """Load the trajectory's run list; empty when missing or malformed."""
    try:
        data = json.loads(trajectory.read_text())
    except (OSError, ValueError):
        return []
    runs = data.get("runs") if isinstance(data, dict) else None
    return runs if isinstance(runs, list) else []


def latest_two(runs: list[dict], bench: str, metric: str) -> list[float]:
    """The metric values of the two most recent runs of ``bench``."""
    values = [
        run[metric]
        for run in runs
        if run.get("bench") == bench and isinstance(run.get(metric), (int, float))
    ]
    return values[-2:]


def check(runs: list[dict], bench: str, metric: str, threshold: float) -> bool:
    """Print one gate line; True when the gate passes (or has no baseline)."""
    values = latest_two(runs, bench, metric)
    if len(values) < 2:
        print(f"  {bench}.{metric}: no baseline ({len(values)} run(s)) -- skipping")
        return True
    previous, current = values
    if previous <= 0:
        print(f"  {bench}.{metric}: previous run is {previous}; cannot compare")
        return True
    change = current / previous - 1.0
    verdict = "OK" if change <= threshold else "REGRESSION"
    print(
        f"  {bench}.{metric}: {previous:.3f} -> {current:.3f} ms "
        f"({change * 100:+.1f}%, budget +{threshold * 100:.0f}%) {verdict}"
    )
    return change <= threshold


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when the newest bench run regressed past the threshold"
    )
    parser.add_argument(
        "--trajectory", type=Path, default=DEFAULT_TRAJECTORY,
        help="BENCH_partition.json path (default: repo root)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="maximum allowed slowdown as a fraction (default 0.20 = +20%%)",
    )
    args = parser.parse_args(argv)
    if args.threshold < 0:
        parser.error("--threshold must be >= 0")

    runs = load_runs(args.trajectory)
    print(f"bench regression gate: {args.trajectory} ({len(runs)} run(s))")
    passed = True
    for bench, metric in GATED_METRICS:
        passed &= check(runs, bench, metric, args.threshold)
    if not passed:
        print("FAIL: hot-path regression past the budget", file=sys.stderr)
        return 1
    print("gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
