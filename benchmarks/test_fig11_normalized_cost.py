"""Figure 11: normalized cost — items examined per relevant tuple found.

Paper: the fairest cross-technique metric.  Cost-based beats No-Cost by
one to two orders of magnitude; cost-based subjects needed only ~5-10
items per relevant tuple.

Reproduced shape: cost-based lowest normalized cost, No-Cost several
times worse, cost-based absolute value small (tens of items, not
hundreds).
"""

from repro.explore.metrics import mean_finite
from repro.study.report import format_series


def test_fig11_normalized_cost(benchmark, userstudy_result):
    benchmark(lambda: userstudy_result.figure_series("normalized_cost"))

    series = userstudy_result.figure_series("normalized_cost")
    print()
    print(
        format_series(
            series,
            [f"Task {i + 1}" for i in range(4)],
            title="Figure 11: avg normalized cost (#items per relevant tuple)",
            value_format="{:.1f}",
        )
    )
    print("(paper: cost-based ~5-10 items/relevant; 1-2 orders better than no-cost)")

    overall = {t: mean_finite(v) for t, v in series.items()}
    print("means:", {k: round(v, 1) for k, v in overall.items()})

    # 95% bootstrap CIs over the per-session normalized costs quantify the
    # simulated-subject noise behind the technique gap.
    import math

    from repro.study.stats import bootstrap_mean_ci

    for technique in userstudy_result.techniques():
        samples = [
            r.normalized_cost
            for r in userstudy_result.records
            if r.technique == technique and math.isfinite(r.normalized_cost)
        ]
        low, high = bootstrap_mean_ci(samples, seed=7)
        print(f"  {technique}: mean CI95 [{low:.1f}, {high:.1f}] "
              f"(n={len(samples)})")
    assert overall["cost-based"] == min(overall.values())
    assert overall["no-cost"] > 2 * overall["cost-based"], (
        "no-cost should pay several times more per relevant tuple"
    )
    assert overall["cost-based"] < 50, (
        "cost-based users should pay tens of items per relevant tuple at most"
    )
