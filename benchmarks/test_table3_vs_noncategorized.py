"""Table 3: cost-based categorization vs no categorization at all.

Paper: per task, the cost-based normalized cost (items examined per
relevant tuple found) against the result-set size — the cost a user pays
if no categorization is used.  Values: 17.1 vs 17,949; 10.5 vs 2,597;
4.6 vs 574; 8.0 vs 7,147 — around 3 orders of magnitude on the largest
task.

Reproduced shape: normalized cost orders of magnitude below the result
size on every task.
"""

from repro.study.report import format_table


def test_table3_cost_based_vs_no_categorization(benchmark, userstudy_result):
    benchmark(userstudy_result.vs_no_categorization)

    rows = userstudy_result.vs_no_categorization(primary="cost-based")
    print()
    print(
        format_table(
            ["Task #", "Cost-based (items/relevant)", "No categorization (|result|)"],
            [[task, f"{cost:.2f}", size] for task, cost, size in rows],
            title="Table 3: cost-based categorization vs no categorization",
        )
    )
    print("(paper: 17.1/17949, 10.5/2597, 4.6/574, 8.0/7147)")

    assert len(rows) == 4
    for task, normalized, result_size in rows:
        assert normalized < result_size / 10, (
            f"task {task}: categorization must beat scanning by >=10x"
        )
    biggest = max(rows, key=lambda row: row[2])
    assert biggest[2] / biggest[1] > 50, (
        "on the largest task the gap should be large (paper: ~3 orders)"
    )
