"""Table 1: Pearson correlation per cross-validation subset.

Paper: subset correlations range 0.16-0.98 (a mix of weak and strong
positive), overall correlation 0.90 across the pooled 800 explorations.

Reproduced shape: every subset positively correlated, pooled correlation
substantially higher than the typical subset (the pooling effect the
paper's 'All' row shows).
"""

from repro.study.report import format_table
from repro.study.stats import classify_correlation


def test_table1_subset_correlations(benchmark, simulated_result):
    benchmark(simulated_result.overall_correlation)

    rows = [
        [name, f"{r:.2f}", classify_correlation(r)]
        for name, r in simulated_result.correlation_table()
    ]
    print()
    print(
        format_table(
            ["Subset", "Correlation", "band"],
            rows,
            title="Table 1: Pearson correlation, estimated vs actual cost",
        )
    )
    print("(paper: subsets 0.16-0.98, All = 0.90)")

    subset_rs = [r for name, r in simulated_result.correlation_table() if name != "All"]
    overall = simulated_result.overall_correlation()
    assert all(r > 0 for r in subset_rs), "every subset must correlate positively"
    assert overall > 0.35
    assert sum(1 for r in subset_rs if r > 0.2) >= 6, (
        "most subsets should show at least weak positive correlation"
    )
