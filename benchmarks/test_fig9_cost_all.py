"""Figure 9: average items examined until all relevant tuples found.

Paper: per task, the cost-based technique consistently outperforms
Attr-Cost and No-Cost (Task 1/Attr-Cost missing — the tree was too large
to view).

Reproduced shape: cost-based has the lowest average cost overall and on
most tasks.
"""

from repro.explore.metrics import mean
from repro.study.report import format_series


def test_fig9_average_cost_all_scenario(benchmark, userstudy_result):
    benchmark(lambda: userstudy_result.figure_series("cost_all"))

    series = userstudy_result.figure_series("cost_all")
    print()
    print(
        format_series(
            series,
            [f"Task {i + 1}" for i in range(4)],
            title="Figure 9: avg #items examined until all relevant found",
            value_format="{:.0f}",
        )
    )
    print("(paper: cost-based lowest on every task)")

    overall = {t: mean(v) for t, v in series.items()}
    assert overall["cost-based"] == min(overall.values())
    assert overall["no-cost"] > 1.8 * overall["cost-based"], (
        "no-cost should cost users far more effort"
    )
    wins = sum(
        1
        for task in range(4)
        if series["cost-based"][task] <= min(s[task] for s in series.values()) + 1e-9
    )
    assert wins >= 2, "cost-based should win at least half the tasks"
