"""Performance: warm-start boot vs the cold CSV + workload path.

A cold `repro serve` pays CSV parse + type coercion for the relation and
a full preprocess pass over the workload log before it can answer a
single request.  The warm path loads the same state from the snapshot
pair (``table.snap`` + ``stats.snap``) written at the last clean
shutdown — length-prefixed typed columns and pickled count tables, no
parsing, no counting.  This bench times both boots over the bench-scale
inputs and gates the ratio: if warm start ever degrades to within 5x of
cold, the snapshot format has stopped paying for its complexity.

Appends ``warm_start`` to ``BENCH_partition.json``; the regression gate
(``benchmarks/compare_bench.py``) watches ``warm_boot_ms``.
"""

from repro.core.config import PAPER_CONFIG
from repro.relational.csvio import read_csv, write_csv
from repro.serving.warmstart import (
    load_warm,
    write_stats_snapshot,
    write_table_snapshot,
)
from repro.study.report import format_table
from repro.workload.preprocess import preprocess_workload

from benchmarks.test_perf_partition import _append_bench_record, _timed

#: Warm boot must beat the cold CSV + preprocess path by at least this much.
REQUIRED_WARM_SPEEDUP = 5.0


def test_perf_warm_start_boot(bench_homes, bench_workload, bench_statistics, tmp_path):
    data = tmp_path / "homes.csv"
    write_csv(bench_homes, data)
    state = tmp_path / "state"
    state.mkdir()
    write_table_snapshot(bench_homes, state)
    write_stats_snapshot(bench_statistics, state, epoch=3, journal_seq=0)
    schema = bench_homes.schema

    def cold_boot():
        table = read_csv(schema, data)
        statistics = preprocess_workload(
            bench_workload, schema, PAPER_CONFIG.separation_intervals
        )
        return table, statistics

    def warm_boot():
        return load_warm(schema, state)

    cold_seconds = _timed(cold_boot, repeats=3, statistic="min")
    warm_seconds = _timed(warm_boot, repeats=5, statistic="min")

    # The fast path must also be the *same* path: identical relation and
    # count tables, not a cheaper approximation of them.
    warm = load_warm(schema, state)
    assert len(warm.table) == len(bench_homes)
    assert warm.statistics.total_queries == bench_statistics.total_queries
    assert warm.epoch == 3

    speedup = cold_seconds / warm_seconds
    print()
    print(
        format_table(
            ["boot path", "seconds", "note"],
            [
                ["cold (CSV + preprocess)", f"{cold_seconds:.4f}",
                 f"{len(bench_homes)} rows, "
                 f"{bench_statistics.total_queries} queries"],
                ["warm (snapshot pair)", f"{warm_seconds:.4f}",
                 f"{speedup:.0f}x faster"],
            ],
            title="Warm-start boot",
        )
    )
    _append_bench_record(
        "warm_start",
        {
            "rows": len(bench_homes),
            "queries": bench_statistics.total_queries,
            "cold_boot_ms": round(cold_seconds * 1e3, 3),
            "warm_boot_ms": round(warm_seconds * 1e3, 3),
            "speedup": round(speedup, 2),
        },
    )
    assert warm_seconds * REQUIRED_WARM_SPEEDUP <= cold_seconds, (
        "warm start must stay much cheaper than the cold boot it replaces"
    )
