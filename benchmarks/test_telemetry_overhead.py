"""Performance: request-telemetry overhead on the warm serving path.

The telemetry pipeline's hard constraint is that it rides along for
free when it isn't looking: with no pipeline installed the hooks are a
global load and a ``None`` check, and with sampling at 10% only one
request in ten pays for event assembly.  This bench times the warm
(cache-hit) categorize path in three configurations — no pipeline,
pipeline installed at rate 0.0, pipeline at rate 0.1 — interleaved
round-robin so machine drift cancels, and appends a
``telemetry_overhead`` record that the compare_bench gate tracks
run-over-run.
"""

import time

from repro import telemetry
from repro.serving.relation import Relation
from repro.serving.service import CategorizationService
from repro.study.report import format_table
from repro.telemetry import RotatingJsonlSink, TelemetryPipeline

from benchmarks.test_perf_partition import _append_bench_record

SERVE_SQL = "SELECT * FROM ListProperty WHERE price <= 300000"

#: Warm-path regression ceilings relative to the no-pipeline baseline.
MAX_OFF_OVERHEAD = 0.02
MAX_SAMPLED_OVERHEAD = 0.05

#: Noise floor absorbed on top of the relative bound: the warm path is
#: tens of microseconds, where a 2% margin is below timer jitter.
EPSILON_MS = 0.05

ROUNDS = 300
TRIM_FRACTION = 0.1


def _trimmed_mean(samples):
    """Mean with the slowest ``TRIM_FRACTION`` dropped (GC / scheduler spikes)."""
    ordered = sorted(samples)
    kept = ordered[: max(1, len(ordered) - int(len(ordered) * TRIM_FRACTION))]
    return sum(kept) / len(kept)


def test_telemetry_overhead(tmp_path, bench_homes, bench_statistics):
    service = CategorizationService(Relation(bench_homes, bench_statistics.copy()))
    service.categorize(SERVE_SQL)  # fill the result cache

    sink = RotatingJsonlSink(tmp_path / "events.jsonl")
    off = TelemetryPipeline(sink, sample_rate=0.0)
    sampled = TelemetryPipeline(sink, sample_rate=0.1)

    def warm():
        return service.categorize(SERVE_SQL)

    base_samples, off_samples, sampled_samples = [], [], []
    try:
        for _ in range(5):  # warmup
            warm()
        for _ in range(ROUNDS):
            started = time.perf_counter()
            warm()
            base_samples.append(time.perf_counter() - started)

            with telemetry.installed(off):
                started = time.perf_counter()
                warm()
                off_samples.append(time.perf_counter() - started)

            with telemetry.installed(sampled):
                started = time.perf_counter()
                warm()
                sampled_samples.append(time.perf_counter() - started)
    finally:
        off.close()
        sampled.close()

    base_ms = _trimmed_mean(base_samples) * 1e3
    off_ms = _trimmed_mean(off_samples) * 1e3
    sampled_ms = _trimmed_mean(sampled_samples) * 1e3

    print()
    print(
        format_table(
            ["configuration", "warm ms", "vs base"],
            [
                ["no pipeline", f"{base_ms:.4f}", "-"],
                ["installed, rate 0.0", f"{off_ms:.4f}",
                 f"{(off_ms / base_ms - 1) * 100:+.1f}%"],
                ["installed, rate 0.1", f"{sampled_ms:.4f}",
                 f"{(sampled_ms / base_ms - 1) * 100:+.1f}%"],
            ],
            title="Telemetry overhead (warm categorize, trimmed mean)",
        )
    )
    _append_bench_record(
        "telemetry_overhead",
        {
            "rounds": ROUNDS,
            "base_ms": round(base_ms, 4),
            "off_ms": round(off_ms, 4),
            "sampled_ms": round(sampled_ms, 4),
            # The gated metrics: same-run ratios cancel machine drift,
            # which dwarfs a 20% budget on a ~50 microsecond path.
            "off_ratio": round(off_ms / base_ms, 4),
            "sampled_ratio": round(sampled_ms / base_ms, 4),
            "events_emitted": sampled.emitted,
        },
    )
    assert off_ms <= base_ms * (1 + MAX_OFF_OVERHEAD) + EPSILON_MS, (
        "telemetry installed with sampling off must be free on the warm path"
    )
    assert sampled_ms <= base_ms * (1 + MAX_SAMPLED_OVERHEAD) + EPSILON_MS, (
        "10% sampling must stay within a few percent of the warm path"
    )
