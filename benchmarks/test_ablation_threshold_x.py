"""Ablation: the attribute-elimination threshold x (Section 5.1.1).

The paper eliminates attributes with NAttr(A)/N < x before any
partitioning is considered, claiming this prunes the search cheaply
because low-usage attributes yield high-Pw (hence high-cost) trees
anyway.  This bench sweeps x and reports: attributes retained, tree cost,
and categorization time — showing cost is flat up to the paper's x = 0.4
and degrades only when elimination starts removing genuinely useful
attributes.
"""

import time

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import PAPER_CONFIG
from repro.core.cost import CostModel
from repro.core.probability import ProbabilityEstimator
from repro.data.geography import SEATTLE_BELLEVUE
from repro.relational.expressions import InPredicate
from repro.relational.query import SelectQuery
from repro.study.report import format_table


def test_ablation_elimination_threshold(benchmark, bench_homes, bench_statistics):
    query = SelectQuery(
        "ListProperty",
        InPredicate("neighborhood", SEATTLE_BELLEVUE.neighborhood_names()),
    )
    rows = query.execute(bench_homes)
    model = CostModel(ProbabilityEstimator(bench_statistics), PAPER_CONFIG)

    results = []
    for x in (0.0, 0.2, 0.4, 0.6, 0.8):
        config = PAPER_CONFIG.with_overrides(elimination_threshold=x)
        categorizer = CostBasedCategorizer(bench_statistics, config)
        retained = len(categorizer._candidate_attributes(rows, query))
        started = time.perf_counter()
        tree = categorizer.categorize(rows, query)
        elapsed = time.perf_counter() - started
        results.append((x, retained, model.tree_cost_all(tree), elapsed))

    benchmark(
        lambda: CostBasedCategorizer(
            bench_statistics, PAPER_CONFIG
        ).categorize(rows, query)
    )

    print()
    print(
        format_table(
            ["x", "attributes retained", "CostAll(T)", "build seconds"],
            [
                [f"{x:.1f}", retained, f"{cost:.1f}", f"{seconds:.3f}"]
                for x, retained, cost, seconds in results
            ],
            title="Elimination-threshold ablation (Seattle/Bellevue query)",
        )
    )
    print("(paper: x=0.4 retains 6 of 53 attributes with no quality loss)")

    by_x = {x: (retained, cost) for x, retained, cost, _ in results}
    assert by_x[0.0][0] >= by_x[0.4][0] >= by_x[0.8][0]
    # The paper's x=0.4 should cost essentially the same as no elimination.
    assert by_x[0.4][1] <= by_x[0.0][1] * 1.25
    # Aggressive elimination must eventually hurt (fewer levels available).
    assert by_x[0.8][1] >= by_x[0.4][1]
