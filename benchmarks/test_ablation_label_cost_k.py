"""Ablation: the label/tuple cost ratio K (Equations 1 and 2).

The paper keeps K symbolic.  This bench sweeps K and checks two things:

* estimated tree cost grows with K (labels become more expensive), and
* the categorizer's choice is *self-consistent*: the tree built under a
  given K is at least as good, evaluated at that K, as the trees built
  under the other K values — i.e. the optimizer actually responds to K.
"""

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import PAPER_CONFIG
from repro.core.cost import CostModel
from repro.core.probability import ProbabilityEstimator
from repro.data.geography import SEATTLE_BELLEVUE
from repro.relational.expressions import InPredicate
from repro.relational.query import SelectQuery
from repro.study.report import format_table


K_VALUES = (0.1, 1.0, 5.0, 20.0)


def test_ablation_label_cost(benchmark, bench_homes, bench_statistics):
    query = SelectQuery(
        "ListProperty",
        InPredicate("neighborhood", SEATTLE_BELLEVUE.neighborhood_names()),
    )
    rows = query.execute(bench_homes)

    trees = {}
    for k in K_VALUES:
        config = PAPER_CONFIG.with_overrides(label_cost=k)
        trees[k] = CostBasedCategorizer(bench_statistics, config).categorize(
            rows, query
        )
    benchmark(
        lambda: CostBasedCategorizer(bench_statistics, PAPER_CONFIG).categorize(
            rows, query
        )
    )

    estimator = ProbabilityEstimator(bench_statistics)
    rows_out = []
    self_costs = {}
    for k in K_VALUES:
        model = CostModel(estimator, PAPER_CONFIG.with_overrides(label_cost=k))
        self_costs[k] = model.tree_cost_all(trees[k])
        rows_out.append(
            [
                f"{k:g}",
                f"{self_costs[k]:.1f}",
                trees[k].category_count(),
                trees[k].depth(),
            ]
        )
    print()
    print(
        format_table(
            ["K", "CostAll(T_K) at K", "categories", "depth"],
            rows_out,
            title="Label-cost (K) ablation",
        )
    )

    costs = [self_costs[k] for k in K_VALUES]
    assert costs == sorted(costs), "estimated cost must grow with K"

    # Self-consistency: evaluating tree T_K at K never loses to T_K' at K.
    for k in K_VALUES:
        model = CostModel(estimator, PAPER_CONFIG.with_overrides(label_cost=k))
        own = model.tree_cost_all(trees[k])
        for other_k in K_VALUES:
            cross = model.tree_cost_all(trees[other_k])
            assert own <= cross * 1.05, (
                f"tree built for K={k} should be near-best at K={k} "
                f"(lost to K={other_k}'s tree)"
            )
