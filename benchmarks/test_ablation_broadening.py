"""Ablation: query-broadening strategies (Section 6.2).

The paper broadens held-out queries by region expansion and notes "we have
tried other broadening strategies and have obtained similar results".
This bench runs a reduced simulated study under all three implemented
strategies and checks the headline result — positive estimated-vs-actual
correlation and cost-based superiority — survives each.
"""

from repro.core.algorithm import CostBasedCategorizer
from repro.core.baselines import NoCostCategorizer
from repro.study.report import format_table
from repro.study.simulated import run_simulated_study
from repro.workload.broadening import STRATEGIES


def test_ablation_broadening_strategies(benchmark, bench_homes, bench_workload):
    results = {}
    for name, strategy in STRATEGIES.items():
        results[name] = run_simulated_study(
            bench_homes,
            bench_workload,
            [CostBasedCategorizer, NoCostCategorizer],
            subset_count=2,
            subset_size=25,
            seed=31,
            broaden=strategy,
        )
    benchmark(lambda: results["region"].overall_correlation())

    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                f"{result.overall_correlation():.2f}",
                f"{result.trend_slope():.2f}",
                f"{result.mean_fraction_examined('cost-based'):.3f}",
                f"{result.mean_fraction_examined('no-cost'):.3f}",
            ]
        )
    print()
    print(
        format_table(
            ["strategy", "Pearson r", "slope", "frac(cost-based)", "frac(no-cost)"],
            rows,
            title="Broadening-strategy ablation (2x25 explorations each)",
        )
    )
    print('(paper: "other broadening strategies ... similar results")')

    for name, result in results.items():
        assert result.overall_correlation() > 0.2, (
            f"{name}: correlation collapsed"
        )
        assert result.mean_fraction_examined("cost-based") < (
            result.mean_fraction_examined("no-cost")
        ), f"{name}: cost-based no longer wins"
