"""Ablation: categorization + ranking, the paper's complementary pairing.

Section 1: "categorization and ranking present two complementary
techniques to manage information overload."  This bench measures the
interaction: the same result sets are replayed in the ONE scenario with
tuple sets in (a) generation order and (b) query-frequency rank order,
at three categorization granularities.

Measured finding (an honest negative): a *static, query-independent*
QF ordering leaves ALL-scenario costs untouched by construction, is
neutral on finely categorized trees (leaf scans are already short), and
does NOT shorten first-match scans on flat results for a heterogeneous
query population — front-loading majority-interest tuples makes
minority-interest queries scan past them, and the downside outweighs the
upside.  Ranking complements categorization only when conditioned on the
user's query — which is what drill-down itself provides.
"""

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import PAPER_CONFIG
from repro.explore.exploration import replay_all, replay_one
from repro.ranking.qf import QueryFrequencyScorer
from repro.ranking.ranker import rank_tree
from repro.study.report import format_table
from repro.workload.broadening import broaden_to_region


def test_ablation_ranking_complement(
    benchmark, bench_homes, bench_workload, bench_statistics
):
    categorizer = CostBasedCategorizer(bench_statistics, PAPER_CONFIG)
    scorer = QueryFrequencyScorer(bench_statistics)

    explorations = [
        w for w in bench_workload.sample(400, seed=101)
        if w.constrains("neighborhood") and len(w.conditions) >= 2
    ][:40]
    prepared = []
    for exploration in explorations:
        user_query = broaden_to_region(exploration)
        rows = user_query.query.execute(bench_homes)
        if len(rows) < 100:
            continue
        prepared.append((exploration, user_query, rows))
    assert len(prepared) >= 15
    benchmark(lambda: rank_tree(
        categorizer.categorize(prepared[0][2], prepared[0][1].query), scorer
    ))

    # Sweep tree granularity: the coarser the categorization (bigger M),
    # the longer the SHOWTUPLES scans and the more ranking should matter.
    n = len(prepared)
    rows_out = []
    improvements = {}
    for m in (20, 200, 100_000):
        config = PAPER_CONFIG.with_overrides(max_tuples_per_category=m)
        builder = CostBasedCategorizer(bench_statistics, config)
        unranked_one = ranked_one = 0.0
        unranked_all = ranked_all = 0.0
        for exploration, user_query, rows in prepared:
            tree = builder.categorize(rows, user_query.query)
            unranked_one += replay_one(tree, exploration).items_examined
            unranked_all += replay_all(tree, exploration).items_examined
            rank_tree(tree, scorer)
            ranked_one += replay_one(tree, exploration).items_examined
            ranked_all += replay_all(tree, exploration).items_examined
        assert ranked_all == unranked_all, "ranking must not change the ALL cost"
        improvements[m] = unranked_one / ranked_one if ranked_one else 1.0
        label = "no categorization" if m == 100_000 else f"M={m}"
        rows_out.append(
            [label, f"{unranked_one / n:.1f}", f"{ranked_one / n:.1f}",
             f"{improvements[m]:.2f}x"]
        )

    print()
    print(
        format_table(
            ["granularity", "ONE cost, generation order", "ONE cost, QF-ranked",
             "improvement"],
            rows_out,
            title=f"Ranking complement ({n} explorations)",
        )
    )
    print(
        "finding: static QF ordering is neutral on categorized trees and "
        "does not rescue flat result sets — query-independent ranking "
        "cannot serve a heterogeneous query population; the drill-down of "
        "categorization is what conditions the presentation on the query."
    )

    assert 0.9 <= improvements[20] <= 1.15, (
        "ranking should be near-neutral on finely categorized trees"
    )
    assert 0.7 <= improvements[100_000] <= 1.3, (
        "static ranking neither rescues nor wrecks flat scans"
    )
