"""Ablation: P-descending ordering heuristic vs the Appendix A optimum.

The paper orders a node's subcategories by decreasing P(Ci) rather than by
the provably optimal increasing 1/P(Ci) + CostOne(Ci), arguing the
heuristic is cheap and "tantamount to assuming equality of CostOne(Ci)'s".
This bench measures the gap on real trees: the ONE-scenario SHOWCAT cost
of each internal node's actual child order vs the optimal order vs a
workload-blind (value-sorted) order.
"""

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import PAPER_CONFIG
from repro.core.cost import CostModel
from repro.core.partition.ordering import (
    expected_cost_one_of_ordering,
    order_optimal_one,
)
from repro.core.probability import ProbabilityEstimator
from repro.data.geography import SEATTLE_BELLEVUE
from repro.relational.expressions import InPredicate
from repro.relational.query import SelectQuery
from repro.study.report import format_table


def test_ablation_ordering_heuristic_vs_optimal(benchmark, bench_homes, bench_statistics):
    query = SelectQuery(
        "ListProperty",
        InPredicate("neighborhood", SEATTLE_BELLEVUE.neighborhood_names()),
    )
    rows = query.execute(bench_homes)
    categorizer = CostBasedCategorizer(bench_statistics, PAPER_CONFIG)
    tree = benchmark(lambda: categorizer.categorize(rows, query))

    model = CostModel(ProbabilityEstimator(bench_statistics), PAPER_CONFIG)
    annotations = model.annotate(tree)

    from repro.core.labels import CategoricalLabel
    from repro.core.partition.ordering import order_by_probability

    heuristic_total = optimal_total = arbitrary_total = 0.0
    nodes_measured = 0
    for node in tree.nodes():
        if len(node.children) < 2:
            continue
        if not isinstance(node.children[0].label, CategoricalLabel):
            # The ordering heuristic applies to categorical levels only;
            # numeric buckets are always presented in ascending value order.
            continue
        probabilities = [
            annotations[id(c)].exploration_probability for c in node.children
        ]
        costs = [annotations[id(c)].cost_one for c in node.children]
        indices = list(range(len(costs)))
        heuristic = order_by_probability(indices, probabilities)
        heuristic_total += expected_cost_one_of_ordering(
            [probabilities[i] for i in heuristic], [costs[i] for i in heuristic]
        )
        order = order_optimal_one(indices, probabilities, costs)
        optimal_total += expected_cost_one_of_ordering(
            [probabilities[i] for i in order], [costs[i] for i in order]
        )
        blind = sorted(indices, key=lambda i: node.children[i].display())
        arbitrary_total += expected_cost_one_of_ordering(
            [probabilities[i] for i in blind], [costs[i] for i in blind]
        )
        nodes_measured += 1

    print()
    print(
        format_table(
            ["ordering", "total ONE-scenario SHOWCAT cost"],
            [
                ["optimal (1/P + CostOne, Appendix A)", f"{optimal_total:.1f}"],
                ["heuristic (P descending, paper)", f"{heuristic_total:.1f}"],
                ["arbitrary (value-sorted, No-Cost)", f"{arbitrary_total:.1f}"],
            ],
            title=f"Ordering ablation over {nodes_measured} internal nodes",
        )
    )
    gap = heuristic_total / optimal_total if optimal_total else 1.0
    print(f"heuristic / optimal = {gap:.3f}")
    print(
        "finding: P-descending fronts popular categories whose subtrees are "
        "also the most expensive, so when P and CostOne correlate (popular "
        "neighborhoods have the most homes) the heuristic can trail even an "
        "arbitrary order — the CostOne-equality assumption Section 5.1.2 "
        "makes explicit is what it costs."
    )

    assert nodes_measured > 5
    assert optimal_total <= heuristic_total + 1e-6, "optimum must be optimal"
    assert optimal_total <= arbitrary_total + 1e-6
    assert heuristic_total <= optimal_total * 1.5, (
        "the paper's heuristic should stay within 1.5x of optimal"
    )
