"""Figure 7: estimated vs actual exploration cost, with zero-intercept fit.

Paper: a scatter of 800 synthetic explorations whose best linear fit with
intercept 0 is y = 1.1002x, showing "strong positive correlation" between
the model's estimated average cost and the cost users actually incur.

Reproduced shape: positive correlation, zero-intercept slope near 1.
"""

from repro.render.figures import scatter_plot
from repro.study.report import format_table


def test_fig7_estimated_vs_actual(benchmark, simulated_result, categorize_one):
    benchmark(categorize_one)

    estimated, actual = simulated_result.scatter()
    slope = simulated_result.trend_slope()
    r = simulated_result.overall_correlation()

    sample = sorted(zip(estimated, actual))[:: max(1, len(estimated) // 12)]
    print()
    print(
        format_table(
            ["estimated CostAll(T)", "actual CostAll(W,T)"],
            [[f"{e:.1f}", f"{a:.1f}"] for e, a in sample],
            title="Figure 7 (sampled scatter points)",
        )
    )
    print()
    print(scatter_plot(
        estimated, actual, width=64, height=16,
        x_label="estimated CostAll(T)", y_label="actual CostAll(W,T)",
    ))
    print(f"explorations: {len(estimated)}")
    print(f"trend line (intercept 0): y = {slope:.4f}x   (paper: y = 1.1002x)")
    print(f"overall Pearson r: {r:.3f}                   (paper: 0.90)")

    assert len(estimated) >= 300, "study produced too few explorations"
    assert r > 0.35, "estimated and actual costs must correlate positively"
    assert 0.4 < slope < 2.5, "trend slope should be near unity"
