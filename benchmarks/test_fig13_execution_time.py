"""Figure 13: categorizer execution time vs M in {10, 20, 50, 100}.

Paper: ~1 second average response time (on 2004 hardware, including count
table access) over 100 workload queries with average result size ~2000;
time decreases as M grows.

Reproduced shape: sub-second categorization at paper scale; runtime
non-increasing in M (larger M -> fewer oversized nodes and levels).
"""

from repro.study.report import format_table
from repro.study.timing import run_timing_study


def test_fig13_execution_time(benchmark, bench_homes, bench_workload, categorize_one):
    benchmark(categorize_one)

    points = run_timing_study(
        bench_homes,
        bench_workload,
        m_values=(10, 20, 50, 100),
        query_count=60,
        seed=29,
    )
    print()
    print(
        format_table(
            ["M", "mean seconds", "queries", "mean |result|"],
            [
                [p.m, f"{p.mean_seconds:.4f}", p.queries_timed,
                 f"{p.mean_result_size:.0f}"]
                for p in points
            ],
            title="Figure 13: average execution time of cost-based categorization",
        )
    )
    print("(paper: ~1s at M=20 on 2004 hardware; decreasing in M)")

    by_m = {p.m: p.mean_seconds for p in points}
    assert by_m[10] >= by_m[100] * 0.8, "runtime should not grow with M"
    assert by_m[20] < 5.0, "categorization should be interactive-speed"
    assert all(p.queries_timed >= 30 for p in points)
