"""Table 4: post-study survey — which technique worked best.

Paper: 8 of the 9 responding subjects picked the cost-based technique;
1 picked Attr-Cost; nobody picked No-Cost.

Reproduced shape (votes derived from each subject's best normalized
cost): cost-based receives a plurality; No-Cost receives the fewest.
"""

from repro.study.report import format_table


def test_table4_survey(benchmark, userstudy_result):
    benchmark(userstudy_result.survey)

    votes = userstudy_result.survey()
    print()
    print(
        format_table(
            ["Categorization Technique", "#subjects that called it best"],
            sorted(votes.items(), key=lambda kv: -kv[1]),
            title="Table 4: post-study survey",
        )
    )
    print("(paper: cost-based 8, attr-cost 1, no-cost 0, no response 2)")

    assert votes["cost-based"] == max(votes.values()), (
        "cost-based must win the survey"
    )
    assert votes["cost-based"] >= votes.get("no-cost", 0) + 2
