"""Performance: the serving hot path (cache hits, deadline enforcement).

The serving layer adds a request/response wrapper (parse, epoch pin,
cache lookup) around the categorizer; the steady-state question is what a
*warm* request costs — the result cache should make repeats nearly free —
and whether a tight deadline actually bounds latency instead of merely
labeling it.  Appends ``serving_hot_path`` to ``BENCH_partition.json`` so
the PR 3 regression gate (``benchmarks/compare_bench.py``) covers the new
path via its ``warm_ms`` metric.
"""

import time

from repro.core.config import PAPER_CONFIG
from repro.serving.degrade import RUNGS
from repro.serving.relation import Relation
from repro.serving.service import CategorizationService
from repro.study.report import format_table

from benchmarks.test_perf_partition import _append_bench_record, _timed

SERVE_SQL = "SELECT * FROM ListProperty WHERE price <= 300000"

#: A warm (cached) request must beat the cold build by at least this much.
REQUIRED_WARM_SPEEDUP = 5.0

#: Served latency ceiling for deadline-bounded requests.  The deadline is
#: 5 ms; the ladder checks it between levels, so one level of work can
#: overshoot — bound the p50 at a small multiple, not the raw deadline.
DEADLINE_MS = 5.0
MAX_DEADLINE_OVERSHOOT = 10.0


def test_perf_serving_hot_path(bench_homes, bench_statistics):
    service = CategorizationService(
        Relation(bench_homes, bench_statistics.copy()), config=PAPER_CONFIG
    )

    def cold():
        service.cache.clear()  # every iteration pays the full build
        return service.categorize(SERVE_SQL)

    cold_seconds = _timed(cold, repeats=3, statistic="min")
    first = service.categorize(SERVE_SQL)
    warm_seconds = _timed(lambda: service.categorize(SERVE_SQL))
    warm = service.categorize(SERVE_SQL)
    assert warm.cached and warm.tree is first.tree

    # Deadline-enforced requests on an uncacheable service: every request
    # must come back near the budget, whatever rung that requires.
    bounded = CategorizationService(
        Relation(bench_homes, bench_statistics.copy()), cache_capacity=0
    )
    deadline_samples = []
    rungs = set()
    for _ in range(9):
        started = time.perf_counter()
        result = bounded.categorize(SERVE_SQL, deadline_ms=DEADLINE_MS)
        deadline_samples.append(time.perf_counter() - started)
        assert result.rung in RUNGS
        rungs.add(result.rung)
    deadline_p50 = sorted(deadline_samples)[len(deadline_samples) // 2]

    print()
    print(
        format_table(
            ["path", "seconds", "note"],
            [
                ["cold (build + cache fill)", f"{cold_seconds:.4f}",
                 f"{len(first.rows)} rows"],
                ["warm (cache hit)", f"{warm_seconds:.4f}",
                 f"{cold_seconds / warm_seconds:.0f}x faster"],
                ["deadline-bounded p50", f"{deadline_p50:.4f}",
                 f"rungs served: {sorted(rungs)}"],
            ],
            title="Serving hot path",
        )
    )
    _append_bench_record(
        "serving_hot_path",
        {
            "rows": len(first.rows),
            "cold_ms": round(cold_seconds * 1e3, 3),
            "warm_ms": round(warm_seconds * 1e3, 3),
            "deadline_p50_ms": round(deadline_p50 * 1e3, 3),
            "speedup": round(cold_seconds / warm_seconds, 2),
        },
    )
    assert warm_seconds * REQUIRED_WARM_SPEEDUP <= cold_seconds, (
        "a cache hit must be much cheaper than a cold build"
    )
    assert deadline_p50 * 1e3 <= DEADLINE_MS * MAX_DEADLINE_OVERSHOOT, (
        "deadline-bounded requests must stay near the budget"
    )
