"""Figure 10: average number of relevant tuples found per technique.

Paper: subjects found 3-5x more relevant tuples with cost-based
categorization than with No-Cost — good trees don't just reduce effort,
they let users reach more of what they wanted before giving up.

Reproduced shape: cost-based finds at least as many relevant tuples as
No-Cost on average (the patience mechanism produces the effect).
"""

from repro.explore.metrics import mean
from repro.study.report import format_series


def test_fig10_relevant_tuples_found(benchmark, userstudy_result):
    benchmark(lambda: userstudy_result.figure_series("relevant_found"))

    series = userstudy_result.figure_series("relevant_found")
    print()
    print(
        format_series(
            series,
            [f"Task {i + 1}" for i in range(4)],
            title="Figure 10: avg #relevant tuples found",
            value_format="{:.1f}",
        )
    )
    print("(paper: cost-based 3-5x more than no-cost)")

    overall = {t: mean(v) for t, v in series.items()}
    assert overall["cost-based"] >= overall["no-cost"], (
        "cost-based users must find at least as many relevant tuples"
    )
    # Some no-cost sessions must actually hit the patience wall, otherwise
    # the mechanism behind the paper's observation is not being exercised.
    gave_up = [
        r.gave_up for r in userstudy_result.records if r.technique == "no-cost"
    ]
    assert any(gave_up), "no no-cost session exhausted patience"
