"""Ablation: domain independence — the movie catalog.

Section 1 claims "a domain-independent approach"; every calibrated number
elsewhere in this suite comes from the real-estate domain.  This bench
repeats the core comparison (cost-based vs No-Cost, estimated-vs-actual
correlation) on a structurally different domain — a movie catalog with
its own schema, value distributions and search personas — with zero
domain-specific code in the categorizer.
"""

from repro.core.algorithm import CostBasedCategorizer
from repro.core.baselines import NoCostCategorizer
from repro.core.config import CategorizerConfig
from repro.core.cost import CostModel
from repro.core.probability import ProbabilityEstimator
from repro.data.movies import (
    MOVIE_SEPARATION_INTERVALS,
    generate_movie_workload,
    generate_movies,
)
from repro.explore.exploration import replay_all
from repro.explore.metrics import fractional_cost, mean
from repro.study.report import format_table
from repro.study.stats import pearson
from repro.workload.model import WorkloadQuery
from repro.workload.preprocess import preprocess_workload
from repro.relational.expressions import RangePredicate
from repro.relational.query import SelectQuery


MOVIE_CONFIG = CategorizerConfig(
    separation_intervals=MOVIE_SEPARATION_INTERVALS
)


def broaden_movie_query(w: WorkloadQuery) -> SelectQuery:
    """Movie-domain broadening: keep only a widened rating band."""
    bounds = w.range_bounds("rating")
    low = bounds[0] if bounds and bounds[0] > 0 else 5.0
    return SelectQuery("Movies", RangePredicate("rating", max(1.0, low - 1.5), 10.0))


def test_ablation_cross_domain(benchmark):
    movies = generate_movies(rows=15_000, seed=3)
    workload = generate_movie_workload(queries=6_000, seed=5)
    statistics = preprocess_workload(
        workload, movies.schema, MOVIE_SEPARATION_INTERVALS
    )
    cost_based = CostBasedCategorizer(statistics, MOVIE_CONFIG)
    no_cost = NoCostCategorizer(
        statistics,
        MOVIE_CONFIG,
        attribute_set=("genre", "language", "year", "runtime", "rating"),
    )
    model = CostModel(ProbabilityEstimator(statistics), MOVIE_CONFIG)

    explorations = [
        w for w in workload.sample(300, seed=9)
        if w.constrains("genre") and w.constrains("rating")
    ][:50]
    assert len(explorations) >= 30

    estimated, actual = [], []
    cb_fractions, nc_fractions = [], []
    for exploration in explorations:
        query = broaden_movie_query(exploration)
        rows = query.execute(movies)
        if len(rows) < 50:
            continue
        cb_tree = cost_based.categorize(rows, query)
        nc_tree = no_cost.categorize(rows, query)
        estimated.append(model.tree_cost_all(cb_tree))
        replayed = replay_all(cb_tree, exploration)
        actual.append(replayed.items_examined)
        cb_fractions.append(fractional_cost(replayed.items_examined, len(rows)))
        nc_fractions.append(
            fractional_cost(
                replay_all(nc_tree, exploration).items_examined, len(rows)
            )
        )

    benchmark(lambda: cost_based.categorize(
        broaden_movie_query(explorations[0]).execute(movies),
        broaden_movie_query(explorations[0]),
    ))

    r = pearson(estimated, actual)
    print()
    print(
        format_table(
            ["quantity", "movies domain", "homes domain (EXPERIMENTS.md)"],
            [
                ["Pearson r (est vs actual)", f"{r:.2f}", "0.46"],
                ["cost-based fraction examined", f"{mean(cb_fractions):.3f}", "0.142"],
                ["no-cost fraction examined", f"{mean(nc_fractions):.3f}", "0.612"],
            ],
            title=f"Cross-domain check ({len(actual)} movie explorations)",
        )
    )

    assert len(actual) >= 30
    # The rating-band broadening yields only ~5 distinct result sizes, so
    # the correlation here is under-powered (the calibrated Fig 7 test
    # lives in the primary domain); require the sign, not the strength.
    assert r > 0.0, "the cost model must transfer to the new domain"
    assert mean(cb_fractions) < mean(nc_fractions) / 2, (
        "cost-based must clearly beat no-cost on movies too"
    )
    assert mean(cb_fractions) < 0.5