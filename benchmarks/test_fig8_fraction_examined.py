"""Figure 8: fraction of the result set examined, per subset x technique.

Paper: the cost-based technique is 3-8x better than Attr-Cost and No-Cost
on every subset, and cost-based explorations examine under 10% of the
result set.

Reproduced shape: cost-based lowest on every subset; No-Cost several times
worse; Attr-Cost between them.  (Deviation recorded in EXPERIMENTS.md: our
Attr-Cost gap is smaller than the paper's because CostAll is presentation-
order-invariant and empty-bucket removal makes naive partitions less
harmful on our synthetic workload.)
"""

from repro.study.report import format_series


def test_fig8_fraction_of_items_examined(benchmark, simulated_result):
    benchmark(simulated_result.fraction_examined_series)

    series = simulated_result.fraction_examined_series()
    x_labels = [f"Subset {i + 1}" for i in range(simulated_result.subset_count)]
    print()
    print(
        format_series(
            series,
            x_labels,
            title="Figure 8: fraction of items examined (actual cost / |result|)",
        )
    )
    means = {
        technique: simulated_result.mean_fraction_examined(technique)
        for technique in simulated_result.techniques()
    }
    print("means:", {k: round(v, 4) for k, v in means.items()})
    print("(paper: cost-based 3-8x better than both baselines, <10% examined)")

    cost_based = means["cost-based"]
    assert cost_based < 0.25, "cost-based should examine a small fraction"
    assert cost_based == min(means.values()), "cost-based must be the best technique"
    assert means["no-cost"] > 2.5 * cost_based, (
        "no-cost should be several times worse"
    )
    assert means["attr-cost"] > cost_based, "attr-cost should trail cost-based"
    for subset in range(simulated_result.subset_count):
        per_subset = {
            t: simulated_result.fraction_examined(subset, t)
            for t in simulated_result.techniques()
        }
        assert per_subset["cost-based"] <= min(per_subset.values()) + 1e-9
