"""Performance: the columnar backend at paper scale (>= 500k rows).

The paper categorizes a 1.7M-row MSN HomeAdvisor snapshot; the seed repo
topped out around 30k synthetic rows because the row-at-a-time engine made
bigger tables unpleasant.  This bench builds a 500,000-row relation on
both storage backends and measures two loops, warm:

* the **storage loop** — ``query.execute`` (a three-conjunct selection
  keeping ~30% of the table) followed by one category-level build over
  the result (categorical partition + numeric bucketing), i.e. exactly
  the operations the :class:`~repro.relational.backends.StorageBackend`
  redesign moved onto packed arrays.  Acceptance floor (ISSUE 5): the
  columnar backend must be >= 3x faster here.
* the **serve loop** — the same selection followed by a full cost-based
  categorization.  Tree construction and cost-model math are
  backend-neutral by design (the equivalence suite depends on that), so
  the end-to-end ratio is smaller; it is recorded for honesty and only
  gated on "columnar must not be slower".

Both loops assert observational equivalence before timing anything —
speed without identical results is a bug, not a win.  Measurements
append a ``columnar_scale`` record to ``BENCH_partition.json``; CI's
``columnar-scale`` job gates the ``columnar_ms`` trajectory through
``compare_bench.py``.

The **sharded scaling matrix** (``test_sharded_scaling_matrix``) takes
the same loop beyond one process: rows × queries × workers cells, each
asserting element-for-element equivalence with the single-process
columnar backend before timing.  The headline cell — 1M rows, 4 workers,
the full query mix — is recorded as ``sharded_scale`` and gated on its
``sharded_ms`` trajectory; the >= 2x speedup floor over columnar is
asserted only on machines with >= 4 cores (CI's ``sharded-scale`` job),
because on a 1-2 core box the pool cannot physically deliver it.
"""

import os
import random
import time

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import PAPER_CONFIG
from repro.relational.expressions import (
    Conjunction,
    InPredicate,
    RangePredicate,
)
from repro.relational.query import SelectQuery
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import AttributeKind, DataType
from repro.study.report import format_table
from repro.workload.log import Workload
from repro.workload.preprocess import preprocess_workload

from benchmarks.test_perf_partition import _append_bench_record, _tree_shape

SCALE_ROWS = 500_000
SCALE_QUERIES = 2_000
REQUIRED_STORAGE_SPEEDUP = 3.0

CITIES = [f"City{i:02d}" for i in range(24)]
TYPES = ["house", "condo", "townhome", "apartment", "loft", "cabin"]
CONDITIONS = ["new", "good", "fair", "fixer"]

#: Large M keeps the (backend-neutral) tree small, so the serve loop is
#: dominated by the storage-bound work rather than label math.
SCALE_CONFIG = PAPER_CONFIG.with_overrides(
    max_tuples_per_category=2_500,
    separation_intervals={"price": 25_000.0, "sqft": 250.0, "rating": 0.5},
)


def scale_schema() -> TableSchema:
    return TableSchema(
        "Listings",
        (
            Attribute("city", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("type", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("condition", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("price", DataType.INT, AttributeKind.NUMERIC),
            Attribute("sqft", DataType.INT, AttributeKind.NUMERIC),
            Attribute("rating", DataType.FLOAT, AttributeKind.NUMERIC),
        ),
    )


def generate_columns(rows: int, seed: int = 11) -> dict[str, list]:
    """Synthesize the relation column-wise — the only way 500k rows is
    cheap enough to build twice inside a bench."""
    rng = random.Random(seed)
    choices = rng.choices
    uniform = rng.uniform
    return {
        "city": choices(CITIES, weights=range(1, len(CITIES) + 1), k=rows),
        "type": choices(TYPES, weights=(6, 4, 3, 3, 1, 1), k=rows),
        "condition": choices(CONDITIONS, weights=(2, 5, 3, 1), k=rows),
        "price": [int(uniform(50_000, 950_000)) for _ in range(rows)],
        "sqft": [int(uniform(400, 5_400)) for _ in range(rows)],
        "rating": [round(uniform(1.0, 5.0), 1) for _ in range(rows)],
    }


def scale_tables() -> dict[str, Table]:
    schema = scale_schema()
    columns = generate_columns(SCALE_ROWS)
    return {
        backend: Table.from_columns(
            schema, columns, backend=backend, coerce=False
        )
        for backend in ("rows", "columnar")
    }


def scale_workload(queries: int = SCALE_QUERIES, seed: int = 13) -> Workload:
    """A small synthetic search log so the categorizer retains city /
    price / rating (usage above the x = 0.4 elimination threshold)."""
    rng = random.Random(seed)
    statements = []
    for _ in range(queries):
        parts = []
        if rng.random() < 0.85:
            picked = rng.sample(CITIES, rng.choice((1, 2, 3)))
            rendered = ", ".join(f"'{c}'" for c in picked)
            parts.append(f"city IN ({rendered})")
        if rng.random() < 0.70:
            low = rng.randrange(50_000, 700_000, 25_000)
            parts.append(f"price BETWEEN {low} AND {low + 250_000}")
        if rng.random() < 0.55:
            parts.append(f"rating >= {rng.choice((2.0, 3.0, 3.5, 4.0))}")
        if rng.random() < 0.25:
            parts.append(f"type IN ('{rng.choice(TYPES)}')")
        if rng.random() < 0.15:
            parts.append(f"sqft >= {rng.choice((1000, 1500, 2000))}")
        if not parts:
            parts.append("rating >= 3.0")
        statements.append("SELECT * FROM Listings WHERE " + " AND ".join(parts))
    return Workload.from_sql_strings(statements)


def scale_query() -> SelectQuery:
    """Three conjuncts keeping ~30% of the table: a broad search."""
    return SelectQuery(
        "Listings",
        Conjunction(
            (
                InPredicate("city", CITIES[8:]),  # the 16 popular cities
                RangePredicate("price", 100_000, 500_000),
                RangePredicate("rating", 2.0, 5.0),
            )
        ),
    )


#: One category level over the query result: the paper's price buckets.
PRICE_BOUNDARIES = [100_000 + 25_000 * step for step in range(17)]


def _timed(fn, repeats=3):
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return sorted(samples)[repeats // 2]


def test_columnar_scale_storage_speedup():
    """Selection + level-build must be >= 3x faster on packed columns."""
    tables = scale_tables()
    query = scale_query()

    def storage_loop(table):
        rows = query.execute(table)
        by_city = rows.partition_by_attribute("city", lambda value: value)
        by_price = rows.partition_by_buckets("price", PRICE_BOUNDARIES)
        return rows, by_city, by_price

    # Equivalence before speed.
    row_rows, row_city, row_price = storage_loop(tables["rows"])
    col_rows, col_city, col_price = storage_loop(tables["columnar"])
    assert row_rows.indices == col_rows.indices
    selectivity = len(row_rows) / SCALE_ROWS
    assert 0.10 <= selectivity <= 0.45, (
        f"bench query drifted to {selectivity:.0%} selectivity"
    )
    assert set(row_city) == set(col_city)
    for key in row_city:
        assert row_city[key].indices == col_city[key].indices
    assert set(row_price) == set(col_price)
    for key in row_price:
        assert row_price[key].indices == col_price[key].indices

    timings = {
        backend: _timed(lambda table=table: storage_loop(table))
        for backend, table in tables.items()
    }
    speedup = timings["rows"] / timings["columnar"]

    print()
    print(
        format_table(
            ["backend", "median seconds", "table rows", "result rows"],
            [
                [name, f"{seconds:.4f}", SCALE_ROWS, len(row_rows)]
                for name, seconds in timings.items()
            ],
            title="Storage loop at paper scale (execute + one level build)",
        )
    )
    print(
        f"speedup: {speedup:.2f}x (required >= {REQUIRED_STORAGE_SPEEDUP}x)"
    )
    _append_bench_record(
        "columnar_scale",
        {
            "table_rows": SCALE_ROWS,
            "result_rows": len(row_rows),
            "row_ms": round(timings["rows"] * 1e3, 3),
            "columnar_ms": round(timings["columnar"] * 1e3, 3),
            "speedup": round(speedup, 2),
        },
    )
    assert speedup >= REQUIRED_STORAGE_SPEEDUP


def test_columnar_scale_serve_equivalence():
    """The full serve loop: identical trees, columnar never slower."""
    tables = scale_tables()
    schema = scale_schema()
    statistics = preprocess_workload(
        scale_workload(), schema, SCALE_CONFIG.separation_intervals
    )
    query = scale_query()

    def serve(table):
        rows = query.execute(table)
        tree = CostBasedCategorizer(statistics, SCALE_CONFIG).categorize(
            rows, query
        )
        return rows, tree

    row_rows, row_tree = serve(tables["rows"])
    col_rows, col_tree = serve(tables["columnar"])
    assert row_rows.indices == col_rows.indices
    assert _tree_shape(row_tree.root) == _tree_shape(col_tree.root)

    # Warm timing: the first serves above populated the statistics memos;
    # each timed iteration re-executes the selection and rebuilds the
    # tree on fresh RowSets, the steady-state serving pattern.
    timings = {
        backend: _timed(lambda table=table: serve(table))
        for backend, table in tables.items()
    }
    speedup = timings["rows"] / timings["columnar"]

    print()
    print(
        format_table(
            ["backend", "median seconds", "tree categories"],
            [
                [name, f"{seconds:.4f}", row_tree.category_count()]
                for name, seconds in timings.items()
            ],
            title="Serve loop at paper scale (execute + full categorize)",
        )
    )
    print(f"end-to-end speedup: {speedup:.2f}x")
    _append_bench_record(
        "columnar_scale_serve",
        {
            "table_rows": SCALE_ROWS,
            "result_rows": len(row_rows),
            "workload_queries": SCALE_QUERIES,
            "row_ms": round(timings["rows"] * 1e3, 3),
            "columnar_ms": round(timings["columnar"] * 1e3, 3),
            "speedup": round(speedup, 2),
        },
    )
    # Tree construction and cost estimation are backend-neutral, so the
    # end-to-end gain is bounded by their share; the floor here is only
    # "the columnar backend must clearly pay for itself".
    assert speedup >= 1.5


# ---------------------------------------------------------------------------
# Sharded scaling matrix: rows × queries × workers.
# ---------------------------------------------------------------------------

SHARDED_ROW_SCALES = (250_000, 1_000_000)
SHARDED_WORKER_COUNTS = (1, 2, 4)
SHARDED_HEADLINE_ROWS = 1_000_000
SHARDED_HEADLINE_WORKERS = 4
REQUIRED_SHARDED_SPEEDUP = 2.0
#: The speedup floor only binds where the pool can physically deliver it.
SHARDED_MIN_CORES = 4


def sharded_queries() -> dict[str, SelectQuery]:
    """Three selectivity points: the mix a serving box actually sees."""
    return {
        # ~30% of the table, three vectorizable conjuncts.
        "broad": scale_query(),
        # Under 1%: unpopular cities in a narrow price band.
        "narrow": SelectQuery(
            "Listings",
            Conjunction(
                (
                    InPredicate("city", CITIES[:4]),
                    RangePredicate("price", 200_000, 300_000),
                )
            ),
        ),
        # ~90%: one broad range, the worst case for result-shipping.
        "sweep": SelectQuery("Listings", RangePredicate("rating", 1.5, 5.0)),
    }


def _select_bucket_loop(table: Table, queries: dict[str, SelectQuery]):
    """The gated loop: execute each query, bucket its result by price."""
    results = []
    for query in queries.values():
        rows = query.execute(table)
        buckets = rows.partition_by_buckets("price", PRICE_BOUNDARIES)
        results.append((rows, buckets))
    return results


def _assert_cell_equivalent(expected, got, cell: str) -> None:
    for (want_rows, want_buckets), (got_rows, got_buckets) in zip(expected, got):
        assert got_rows.indices == want_rows.indices, cell
        assert set(got_buckets) == set(want_buckets), cell
        for key in want_buckets:
            assert got_buckets[key].indices == want_buckets[key].indices, cell


def test_sharded_scaling_matrix():
    """Equivalent at every cell; >= 2x at 1M x 4 workers on >= 4 cores."""
    queries = sharded_queries()
    schema = scale_schema()
    cells = []
    headline = None
    for row_scale in SHARDED_ROW_SCALES:
        columns = generate_columns(row_scale)
        col_table = Table.from_columns(
            schema, columns, backend="columnar", coerce=False
        )
        expected = _select_bucket_loop(col_table, queries)
        columnar_ms = (
            _timed(lambda: _select_bucket_loop(col_table, queries)) * 1e3
        )
        for workers in SHARDED_WORKER_COUNTS:
            cell = f"rows={row_scale} workers={workers}"
            sharded_table = Table.from_columns(
                schema,
                columns,
                backend="sharded",
                coerce=False,
                backend_options={"workers": workers},
            )
            try:
                # Equivalence before speed; this also seals the shards so
                # the timed loop measures steady state, not the one-time
                # shared-memory copy.
                _assert_cell_equivalent(
                    expected, _select_bucket_loop(sharded_table, queries), cell
                )
                sharded_ms = (
                    _timed(lambda: _select_bucket_loop(sharded_table, queries))
                    * 1e3
                )
            finally:
                sharded_table.close()
            record = {
                "table_rows": row_scale,
                "workers": workers,
                "queries": len(queries),
                "columnar_ms": round(columnar_ms, 3),
                "sharded_ms": round(sharded_ms, 3),
                "speedup": round(columnar_ms / sharded_ms, 2),
            }
            cells.append(record)
            if (
                row_scale == SHARDED_HEADLINE_ROWS
                and workers == SHARDED_HEADLINE_WORKERS
            ):
                headline = record

    print()
    print(
        format_table(
            ["rows", "workers", "columnar ms", "sharded ms", "speedup"],
            [
                [
                    cell["table_rows"],
                    cell["workers"],
                    f"{cell['columnar_ms']:.1f}",
                    f"{cell['sharded_ms']:.1f}",
                    f"{cell['speedup']:.2f}x",
                ]
                for cell in cells
            ],
            title="Sharded scaling matrix (select + bucket, 3-query mix)",
        )
    )

    assert headline is not None
    _append_bench_record("sharded_scale", {**headline, "cells": cells})
    cores = os.cpu_count() or 1
    if cores >= SHARDED_MIN_CORES:
        assert headline["speedup"] >= REQUIRED_SHARDED_SPEEDUP, headline
    else:
        print(
            f"speedup floor not asserted: {cores} core(s) < "
            f"{SHARDED_MIN_CORES} (equivalence still held at every cell)"
        )
