"""Ablation: designer-specified m vs goodness-driven automatic m.

Section 5.1.3: "the goodness metric may be used as a basis for
automatically determining m instead of being specified externally".
This bench compares fixed m ∈ {3, 5, 8} against the automatic mode on
estimated tree cost and replayed exploration cost.
"""

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import PAPER_CONFIG
from repro.core.cost import CostModel
from repro.core.probability import ProbabilityEstimator
from repro.data.geography import SEATTLE_BELLEVUE
from repro.explore.exploration import replay_all
from repro.relational.expressions import InPredicate
from repro.relational.query import SelectQuery
from repro.study.report import format_table


def test_ablation_auto_bucket_count(
    benchmark, bench_homes, bench_workload, bench_statistics
):
    query = SelectQuery(
        "ListProperty",
        InPredicate("neighborhood", SEATTLE_BELLEVUE.neighborhood_names()),
    )
    rows = query.execute(bench_homes)
    model = CostModel(ProbabilityEstimator(bench_statistics), PAPER_CONFIG)
    explorations = [
        w for w in bench_workload.sample(500, seed=83)
        if w.constrains("price")
        and w.in_values("neighborhood")
        and w.in_values("neighborhood")
        <= set(SEATTLE_BELLEVUE.neighborhood_names())
    ][:40]
    assert explorations

    configs = {
        "m=3": PAPER_CONFIG.with_overrides(bucket_count=3),
        "m=5 (paper default)": PAPER_CONFIG,
        "m=8": PAPER_CONFIG.with_overrides(bucket_count=8),
        "automatic": PAPER_CONFIG.with_overrides(auto_bucket_count=True),
    }
    benchmark(lambda: CostBasedCategorizer(
        bench_statistics, configs["automatic"]
    ).categorize(rows, query))

    rows_out, measured = [], {}
    for name, config in configs.items():
        tree = CostBasedCategorizer(bench_statistics, config).categorize(
            rows, query
        )
        estimated = model.tree_cost_all(tree)
        actual = sum(
            replay_all(tree, w).items_examined for w in explorations
        ) / len(explorations)
        measured[name] = (estimated, actual)
        rows_out.append(
            [name, tree.category_count(), f"{estimated:.1f}", f"{actual:.1f}"]
        )

    print()
    print(
        format_table(
            ["mode", "categories", "estimated CostAll", "avg actual cost"],
            rows_out,
            title=f"Bucket-count ablation ({len(explorations)} explorations)",
        )
    )

    auto_estimated, auto_actual = measured["automatic"]
    best_fixed_actual = min(v[1] for k, v in measured.items() if k != "automatic")
    assert auto_actual <= best_fixed_actual * 1.3, (
        "automatic m should be competitive with the best fixed m"
    )
    assert auto_estimated > 0
