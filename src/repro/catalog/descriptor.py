"""Declarative dataset descriptors: how one relation gets built.

A :class:`DatasetDescriptor` is the catalog's unit of configuration — a
plain declarative record (name, CSV source *or* built-in generator,
workload, schema, backend, namespace) in the style of wesdash's
``DATASET`` dicts.  Descriptors arrive three ways and converge on the
same object:

* programmatically, ``DatasetDescriptor(name=..., generator="movies")``;
* from a CLI flag, ``--dataset Movies=@movies,rows=8000`` via
  :func:`parse_dataset_arg`;
* from a TOML catalog file, ``--catalog catalog.toml`` via
  :func:`load_catalog_file`::

      default = "ListProperty"

      [datasets.ListProperty]
      source = "homes.csv"
      workload = "workload.sql"
      backend = "columnar"

      [datasets.Movies]
      generator = "movies"
      rows = 8000

A descriptor only *describes*; :meth:`DatasetDescriptor.build` does the
expensive work (CSV parse or generation, workload preprocessing) and
:func:`repro.catalog.catalog.open_relation` decides whether a warm
snapshot can skip it entirely.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.core.config import PAPER_CONFIG
from repro.data.homes import generate_homes, list_property_schema
from repro.data.movies import (
    MOVIE_SEPARATION_INTERVALS,
    generate_movie_workload,
    generate_movies,
    movie_schema,
)
from repro.relational.csvio import read_csv
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import AttributeKind, DataType
from repro.workload.generator import WorkloadGeneratorConfig, generate_workload
from repro.workload.log import Workload
from repro.workload.preprocess import WorkloadStatistics, preprocess_workload


@dataclass(frozen=True)
class _Generator:
    """One built-in dataset family: schema + table + workload factories."""

    schema: Callable[[], TableSchema]
    table: Callable[..., Table]
    workload: Callable[[int, int], Workload]
    separation_intervals: Mapping[str, float]
    default_rows: int
    default_seed: int
    default_queries: int
    default_workload_seed: int


def _homes_workload(queries: int, seed: int) -> Workload:
    return generate_workload(
        WorkloadGeneratorConfig(query_count=queries, seed=seed)
    )


#: The built-in generators a descriptor may name instead of a CSV source.
GENERATORS: dict[str, _Generator] = {
    "homes": _Generator(
        schema=list_property_schema,
        table=generate_homes,
        workload=_homes_workload,
        separation_intervals=PAPER_CONFIG.separation_intervals,
        default_rows=20_000,
        default_seed=7,
        default_queries=8_000,
        default_workload_seed=41,
    ),
    "movies": _Generator(
        schema=movie_schema,
        table=generate_movies,
        workload=generate_movie_workload,
        separation_intervals=MOVIE_SEPARATION_INTERVALS,
        default_rows=20_000,
        default_seed=3,
        default_queries=8_000,
        default_workload_seed=5,
    ),
}

#: Built-in schemas resolvable by relation name (CSV datasets without an
#: explicit ``schema=`` file).
BUILTIN_SCHEMAS: dict[str, Callable[[], TableSchema]] = {
    "ListProperty": list_property_schema,
    "Movies": movie_schema,
}

_SPEC_KEYS = frozenset(
    {
        "source",
        "generator",
        "workload",
        "schema",
        "rows",
        "seed",
        "workload_queries",
        "workload_seed",
        "backend",
        "workers",
        "technique",
        "lenient_csv",
        "namespace",
        "separation_intervals",
    }
)

_BACKENDS = ("rows", "columnar", "sharded")


@dataclass(frozen=True)
class DatasetDescriptor:
    """One relation, declaratively.

    Exactly one of ``source`` (a CSV path) or ``generator`` (a key into
    :data:`GENERATORS`) must be set.  CSV datasets need a ``workload``
    SQL log and a resolvable schema (built-in by name, or a ``schema``
    JSON path); generated datasets default both from the generator.

    Attributes:
        name: the relation name — must match the schema's table name;
            it is what requests address via ``table=``.
        namespace: cache/telemetry key prefix; defaults to ``name``.
        separation_intervals: per-attribute splitpoint grid spacing for
            workload preprocessing; None uses the generator's (or the
            paper's, for ListProperty CSVs) defaults.
    """

    name: str
    source: Path | None = None
    generator: str | None = None
    workload: Path | None = None
    schema: Path | None = None
    rows: int | None = None
    seed: int | None = None
    workload_queries: int | None = None
    workload_seed: int | None = None
    backend: str = "rows"
    workers: int | None = None
    technique: str = "cost-based"
    lenient_csv: bool = False
    namespace: str | None = None
    separation_intervals: Mapping[str, float] | None = field(default=None)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("dataset needs a non-empty name")
        if (self.source is None) == (self.generator is None):
            raise ValueError(
                f"dataset {self.name!r}: set exactly one of source= "
                "(a CSV path) or generator= "
                f"(one of {sorted(GENERATORS)})"
            )
        if self.generator is not None and self.generator not in GENERATORS:
            raise ValueError(
                f"dataset {self.name!r}: unknown generator "
                f"{self.generator!r}; choose from {sorted(GENERATORS)}"
            )
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"dataset {self.name!r}: unknown backend {self.backend!r}; "
                f"choose from {_BACKENDS}"
            )
        if self.workers is not None and self.backend != "sharded":
            raise ValueError(
                f"dataset {self.name!r}: workers= only applies to the "
                "sharded backend"
            )
        if self.source is not None and self.workload is None:
            raise ValueError(
                f"dataset {self.name!r}: CSV datasets need workload= "
                "(an SQL log file)"
            )
        if self.namespace is None:
            object.__setattr__(self, "namespace", self.name)

    # -- building ------------------------------------------------------------

    def backend_options(self) -> dict[str, Any] | None:
        if self.workers is None:
            return None
        return {"workers": self.workers}

    def load_schema(self) -> TableSchema:
        """Resolve the relation schema (file > built-in > generator)."""
        if self.schema is not None:
            schema = _read_schema_json(self.schema)
        elif self.generator is not None:
            schema = GENERATORS[self.generator].schema()
        elif self.name in BUILTIN_SCHEMAS:
            schema = BUILTIN_SCHEMAS[self.name]()
        else:
            raise ValueError(
                f"dataset {self.name!r}: no schema= given and no built-in "
                f"schema matches (built-ins: {sorted(BUILTIN_SCHEMAS)})"
            )
        if schema.name != self.name:
            raise ValueError(
                f"dataset {self.name!r}: schema declares table "
                f"{schema.name!r} — descriptor names must match the schema"
            )
        return schema

    def intervals(self) -> Mapping[str, float] | None:
        """Separation intervals for workload preprocessing."""
        if self.separation_intervals is not None:
            return self.separation_intervals
        if self.generator is not None:
            return GENERATORS[self.generator].separation_intervals
        if self.name == "ListProperty":
            return PAPER_CONFIG.separation_intervals
        return None

    def load_table(self, schema: TableSchema | None = None) -> Table:
        """Build the relation (CSV parse or deterministic generation)."""
        schema = schema or self.load_schema()
        if self.source is not None:
            return read_csv(
                schema,
                self.source,
                strict=not self.lenient_csv,
                backend=self.backend,
                backend_options=self.backend_options(),
            )
        generator = GENERATORS[self.generator]
        return generator.table(
            rows=self.rows if self.rows is not None else generator.default_rows,
            seed=self.seed if self.seed is not None else generator.default_seed,
            backend=self.backend,
            backend_options=self.backend_options(),
        )

    def load_workload(self) -> Workload:
        if self.workload is not None:
            return Workload.load(self.workload)
        generator = GENERATORS[self.generator]
        return generator.workload(
            self.workload_queries
            if self.workload_queries is not None
            else generator.default_queries,
            self.workload_seed
            if self.workload_seed is not None
            else generator.default_workload_seed,
        )

    def build(self) -> tuple[Table, WorkloadStatistics]:
        """The cold-boot path: table + preprocessed seed statistics."""
        schema = self.load_schema()
        table = self.load_table(schema)
        statistics = preprocess_workload(
            self.load_workload(), schema, self.intervals()
        )
        return table, statistics

    # -- parsing -------------------------------------------------------------

    @classmethod
    def from_dict(cls, name: str, spec: Mapping[str, Any]) -> DatasetDescriptor:
        """Build a descriptor from a declarative dict (TOML table)."""
        unknown = set(spec) - _SPEC_KEYS
        if unknown:
            raise ValueError(
                f"dataset {name!r}: unknown key(s) {sorted(unknown)}; "
                f"valid keys: {sorted(_SPEC_KEYS)}"
            )
        kwargs: dict[str, Any] = dict(spec)
        for key in ("source", "workload", "schema"):
            if kwargs.get(key) is not None:
                kwargs[key] = Path(kwargs[key])
        for key in ("rows", "seed", "workload_queries", "workload_seed", "workers"):
            if kwargs.get(key) is not None:
                kwargs[key] = int(kwargs[key])
        if "lenient_csv" in kwargs:
            kwargs["lenient_csv"] = _as_bool(name, kwargs["lenient_csv"])
        intervals = kwargs.get("separation_intervals")
        if intervals is not None:
            kwargs["separation_intervals"] = {
                str(attr): float(value) for attr, value in dict(intervals).items()
            }
        return cls(name=name, **kwargs)


def _as_bool(name: str, value: Any) -> bool:
    if isinstance(value, bool):
        return value
    text = str(value).strip().lower()
    if text in ("1", "true", "yes", "on"):
        return True
    if text in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"dataset {name!r}: not a boolean: {value!r}")


def _read_schema_json(path: Path) -> TableSchema:
    import json

    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    attributes = []
    for spec in payload["attributes"]:
        kind = spec.get("kind")
        attributes.append(
            Attribute(
                spec["name"],
                DataType(spec["type"]),
                AttributeKind(kind) if kind else None,
            )
        )
    return TableSchema(payload["name"], tuple(attributes))


def parse_dataset_arg(text: str) -> DatasetDescriptor:
    """Parse one ``--dataset NAME=SPEC`` flag.

    ``SPEC`` is a CSV path or ``@generator``, optionally followed by
    comma-separated ``key=value`` options (the :data:`_SPEC_KEYS` set)::

        --dataset ListProperty=homes.csv,workload=workload.sql
        --dataset Movies=@movies,rows=8000,seed=3
    """
    name, sep, rest = text.partition("=")
    name = name.strip()
    if not sep or not name or not rest:
        raise ValueError(
            f"--dataset wants NAME=SPEC (a CSV path or @generator), got {text!r}"
        )
    head, *options = rest.split(",")
    spec: dict[str, Any] = {}
    head = head.strip()
    if head.startswith("@"):
        spec["generator"] = head[1:]
    else:
        spec["source"] = head
    for option in options:
        key, sep, value = option.partition("=")
        key, value = key.strip(), value.strip()
        if not sep or not key or not value:
            raise ValueError(
                f"--dataset {name}: options are key=value, got {option!r}"
            )
        if key in spec:
            raise ValueError(f"--dataset {name}: duplicate option {key!r}")
        spec[key] = value
    return DatasetDescriptor.from_dict(name, spec)


def load_catalog_file(
    path: Path,
) -> tuple[list[DatasetDescriptor], str | None]:
    """Load a ``catalog.toml``: descriptors plus the default table name.

    Relative ``source``/``workload``/``schema`` paths are resolved
    against the TOML file's directory, so a catalog file travels with
    its data.
    """
    path = Path(path)
    with path.open("rb") as handle:
        document = tomllib.load(handle)
    datasets = document.get("datasets")
    if not isinstance(datasets, dict) or not datasets:
        raise ValueError(
            f"{path}: needs at least one [datasets.<Name>] table"
        )
    base = path.parent
    descriptors = []
    for name, spec in datasets.items():
        if not isinstance(spec, dict):
            raise ValueError(f"{path}: [datasets.{name}] must be a table")
        descriptor = DatasetDescriptor.from_dict(name, spec)
        updates = {
            key: base / getattr(descriptor, key)
            for key in ("source", "workload", "schema")
            if getattr(descriptor, key) is not None
            and not getattr(descriptor, key).is_absolute()
        }
        if updates:
            descriptor = replace(descriptor, **updates)
        descriptors.append(descriptor)
    default = document.get("default")
    if default is not None:
        if default not in datasets:
            raise ValueError(
                f"{path}: default = {default!r} names no [datasets.*] table"
            )
        default = str(default)
    return descriptors, default
