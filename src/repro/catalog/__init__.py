"""Multi-relation catalog: dataset registry + per-relation serving state.

The paper defines categorization per relation R with its own workload
statistics; this package lets one process serve many such relations:

* :mod:`~repro.catalog.descriptor` — :class:`DatasetDescriptor`, the
  declarative record of how one relation gets built (CSV source or
  built-in generator, workload, schema, backend, namespace), plus the
  ``--dataset NAME=SPEC`` and ``catalog.toml`` parsers.
* :mod:`~repro.catalog.catalog` — :class:`Catalog`, the name → service
  registry with a default relation, a process-wide trace-id sequence,
  and per-relation durability (``<root>/<table>/`` journal + snapshot
  pair) via :func:`open_catalog` / :func:`persist_relation`.

The serving-layer bundle each catalog entry wraps is
:class:`repro.serving.relation.Relation` (re-exported here).  See
docs/catalog.md.
"""

from repro.catalog.catalog import (
    Catalog,
    open_catalog,
    open_relation,
    persist_relation,
)
from repro.catalog.descriptor import (
    BUILTIN_SCHEMAS,
    GENERATORS,
    DatasetDescriptor,
    load_catalog_file,
    parse_dataset_arg,
)
from repro.serving.relation import Relation

__all__ = [
    "BUILTIN_SCHEMAS",
    "Catalog",
    "DatasetDescriptor",
    "GENERATORS",
    "Relation",
    "load_catalog_file",
    "open_catalog",
    "open_relation",
    "parse_dataset_arg",
    "persist_relation",
]
