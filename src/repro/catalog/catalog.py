"""The multi-relation catalog: one process, many relations.

A :class:`Catalog` maps relation names to
:class:`~repro.serving.service.CategorizationService` instances — each
with its own :class:`~repro.serving.snapshot.SnapshotStore` epochs,
workload statistics, result-cache namespace, spill journal, and
warm-start snapshot directory.  The HTTP front ends hold a catalog
(wrapping a lone service in one when needed) and resolve every request's
``table=`` through it; a request that names no table falls back to the
catalog's **default relation** and is answered with a ``Deprecation``
response header (docs/catalog.md).

Cross-relation sharing is deliberately minimal:

* **trace ids** come from one process-wide counter here, so telemetry
  never sees two tables minting the same ``req-000001``;
* everything else — epochs, caches, journals, snapshots — is
  per-relation, which the isolation tests in ``tests/catalog/`` pin
  down (recording into A never moves B's epoch, keys never collide).

Durability is per relation too: :func:`open_catalog` gives each dataset
its own state directory ``<root>/<table>/`` holding ``journal/`` and the
``table.snap``/``stats.snap`` pair, replays each journal past its own
watermark, and :func:`persist_relation` checkpoints them independently.
"""

from __future__ import annotations

import itertools
import sys
import threading
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from repro import perf
from repro.catalog.descriptor import DatasetDescriptor
from repro.serving.errors import PublishError, UnknownTable
from repro.serving.journal import SpillJournal
from repro.serving.relation import Relation
from repro.serving.service import CategorizationService
from repro.serving.warmstart import (
    TABLE_SNAPSHOT,
    SnapshotMismatch,
    load_warm,
    write_stats_snapshot,
    write_table_snapshot,
)


class Catalog:
    """Name → service registry with a default relation.

    The first relation added becomes the default unless one was named at
    construction; the default is what legacy table-less requests resolve
    to.  Reads are lock-free after setup (the dict is only mutated by
    :meth:`add`, expected at boot); trace-id allocation takes a lock so
    ids stay unique across tables and front-end threads.
    """

    def __init__(self, default: str | None = None) -> None:
        self._services: dict[str, CategorizationService] = {}
        self._default = default
        self._trace_ids = itertools.count(1)
        self._lock = threading.Lock()

    @classmethod
    def of(
        cls,
        *services: CategorizationService,
        default: str | None = None,
    ) -> "Catalog":
        catalog = cls(default=default)
        for service in services:
            catalog.add(service)
        return catalog

    def add(self, service: CategorizationService) -> CategorizationService:
        name = service.name
        if name in self._services:
            raise ValueError(f"catalog already holds a relation named {name!r}")
        self._services[name] = service
        return service

    # -- lookup --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._services)

    def __contains__(self, name: object) -> bool:
        return name in self._services

    def __iter__(self) -> Iterator[str]:
        return iter(self._services)

    def names(self) -> tuple[str, ...]:
        return tuple(self._services)

    def services(self) -> tuple[CategorizationService, ...]:
        return tuple(self._services.values())

    @property
    def default_name(self) -> str:
        if not self._services:
            raise ValueError("empty catalog has no default relation")
        if self._default is not None:
            if self._default not in self._services:
                raise UnknownTable(self._default, self.names())
            return self._default
        return next(iter(self._services))

    @property
    def default(self) -> CategorizationService:
        return self._services[self.default_name]

    def get(self, name: str) -> CategorizationService:
        """Look up one relation by name.

        Raises:
            UnknownTable: the catalog holds no relation named ``name``.
        """
        try:
            return self._services[name]
        except KeyError:
            raise UnknownTable(name, self.names()) from None

    def resolve(
        self, name: str | None
    ) -> tuple[CategorizationService, bool]:
        """Resolve a request's table to a service.

        Returns ``(service, defaulted)`` — ``defaulted`` is True when the
        request named no table and fell back to the default relation, the
        condition the front ends answer with a ``Deprecation`` header.

        Raises:
            UnknownTable: a table was named but is not in the catalog.
        """
        if name is None:
            return self.default, True
        return self.get(name), False

    # -- shared state --------------------------------------------------------

    def new_trace_id(self) -> str:
        """Allocate the next trace id — one sequence for the whole catalog."""
        with self._lock:
            return f"req-{next(self._trace_ids):06d}"

    # -- aggregate operations ------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Per-table health, plus which relation answers by default."""
        return {
            "default_table": self.default_name if self._services else None,
            "tables": {
                name: service.health()
                for name, service in self._services.items()
            },
        }

    def record_gauges(self) -> None:
        """Publish per-table gauges (called at /metrics scrape time)."""
        for name, service in self._services.items():
            perf.gauge("serve.epoch", service.epoch_number, table=name)
            perf.gauge("serve.pending", service.store.pending_count, table=name)
            perf.gauge("serve.cache_entries", len(service.cache), table=name)
            perf.gauge("serve.table_rows", len(service.table), table=name)

    def flush(self) -> None:
        for service in self._services.values():
            service.flush()

    def persist(self) -> None:
        """Checkpoint every relation that has durable state armed."""
        for service in self._services.values():
            persist_relation(service)

    def close(self) -> None:
        """Close every relation's journal and table (idempotent)."""
        for service in self._services.values():
            if service.journal is not None:
                service.journal.close()
            service.table.close()


# -- opening relations -------------------------------------------------------


def open_relation(
    descriptor: DatasetDescriptor,
    state_root: Path | None = None,
    journal_fsync: str = "always",
) -> Relation:
    """Open one relation, warm when its snapshots check out.

    With ``state_root`` set, the relation's durable state lives under
    ``state_root/<name>/`` — its own journal and snapshot pair, fully
    independent of every other relation's.  A snapshot that fails any
    check boots the relation cold (``warmstart.fallback``) and the
    journal replays from sequence 0; other relations are unaffected.
    """
    if state_root is None:
        table, statistics = descriptor.build()
        return Relation(
            table=table,
            statistics=statistics,
            namespace=descriptor.namespace,
        )
    state_dir = Path(state_root) / descriptor.name
    journal = SpillJournal(state_dir / "journal", fsync=journal_fsync)
    try:
        warm = load_warm(
            descriptor.load_schema(),
            state_dir,
            backend=descriptor.backend,
            backend_options=descriptor.backend_options(),
        )
    except SnapshotMismatch as exc:
        # Fail-stop honesty: a snapshot that does not fully check out is
        # never served.  Count why, boot cold, replay everything.
        perf.count("warmstart.fallback", reason=exc.reason, table=descriptor.name)
        table, statistics = descriptor.build()
        return Relation(
            table=table,
            statistics=statistics,
            namespace=descriptor.namespace,
            journal=journal,
            state_dir=state_dir,
            warm=False,
        )
    return Relation(
        table=warm.table,
        statistics=warm.statistics,
        namespace=descriptor.namespace,
        journal=journal,
        initial_epoch=warm.epoch,
        replay_after=warm.journal_seq,
        state_dir=state_dir,
        warm=True,
    )


def open_catalog(
    descriptors: Iterable[DatasetDescriptor],
    default: str | None = None,
    state_root: Path | None = None,
    journal_fsync: str = "always",
    service_options: Mapping[str, Any] | None = None,
) -> Catalog:
    """Open every descriptor into one serving catalog.

    Each relation is built (warm or cold), wrapped in a service, its
    journal replayed past its own watermark, and — when durability is
    armed — immediately re-persisted so the *next* boot is warm and
    replays (close to) nothing.  ``service_options`` are shared service
    knobs (batch_size, cache sizing...); the technique comes from each
    descriptor.

    On any failure the relations opened so far are closed again —
    half-open journals must not leak lock files.
    """
    catalog = Catalog(default=default)
    options = dict(service_options or {})
    try:
        for descriptor in descriptors:
            relation = open_relation(
                descriptor, state_root=state_root, journal_fsync=journal_fsync
            )
            service = CategorizationService(
                relation, technique=descriptor.technique, **options
            )
            if relation.journal is not None:
                service.mark_boot(relation.warm, snapshot_epoch=relation.initial_epoch)
                service.recover_from_journal(after_seq=relation.replay_after)
                persist_relation(service)
            catalog.add(service)
        catalog.default_name  # validate an explicit default actually exists
    except BaseException:
        catalog.close()
        raise
    return catalog


def persist_relation(service: CategorizationService) -> bool:
    """Snapshot one relation's epoch and checkpoint its journal behind it.

    Only safe when nothing is pending: the stats snapshot's watermark
    claims every journal record up to ``journal.last_seq`` is folded in,
    which a pending (unpublished) query would falsify.  Returns False —
    leaving the previous snapshot and watermark untouched, so no query
    can be lost — when durability is off for this relation, a failed
    publish keeps queries pending, or a snapshot write fails.
    """
    journal = service.journal
    directory = service.relation.state_dir
    if journal is None or directory is None:
        return False
    try:
        service.flush()
    except PublishError:
        return False
    if service.store.pending_count:
        return False
    try:
        if not (directory / TABLE_SNAPSHOT).exists():
            write_table_snapshot(service.table, directory)
        epoch = service.store.pin()
        write_stats_snapshot(
            epoch.statistics, directory, epoch.number, journal.last_seq
        )
        journal.checkpoint(journal.last_seq)
    except OSError as exc:
        print(
            f"warning: could not persist durable state for "
            f"{service.name}: {exc}",
            file=sys.stderr,
        )
        return False
    return True
