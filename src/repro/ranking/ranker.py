"""Applying tuple ranking to result sets and category trees.

The paper's exploration models scan a tuple set "starting from the first
tuple" without assuming any ordering ("we do not assume any particular
ordering/ranking when the tuples in tset(C) are presented", Section
3.2.1) — and the conclusion positions ranking as the complementary
technique.  This module supplies that complement: reorder every tuple set
so workload-favoured tuples come first, which directly shortens the
expected SHOWTUPLES scan in the ONE/FEW scenarios while leaving the ALL
scenario (which reads everything) untouched.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.tree import CategoryTree
from repro.relational.table import Row, RowSet


class TupleScorer(Protocol):
    """Anything assigning a (higher-is-better) score to a row."""

    def tuple_score(self, row: Row) -> float: ...


def rank_rowset(rows: RowSet, scorer: TupleScorer) -> RowSet:
    """Return a view of ``rows`` reordered by descending score.

    Ties keep their original relative order (stable), so ranking is
    deterministic and minimally disruptive.
    """
    scored = sorted(
        rows.indices,
        key=lambda index: (-scorer.tuple_score(Row(rows.table, index)), index),
    )
    return RowSet(rows.table, scored)


def rank_tree(tree: CategoryTree, scorer: TupleScorer) -> CategoryTree:
    """Reorder every node's tuple set by descending score, in place.

    Category structure, labels, and sibling order are untouched — only
    the order tuples are presented within each ``tset(C)`` changes, which
    is exactly the degree of freedom the paper leaves to a ranker.
    Returns the same tree for chaining.
    """
    # Score each base-table row once; every node reuses the ranking.
    cache: dict[int, float] = {}

    class _CachingScorer:
        def tuple_score(self, row: Row) -> float:
            key = row.index
            if key not in cache:
                cache[key] = scorer.tuple_score(row)
            return cache[key]

    caching = _CachingScorer()
    for node in tree.nodes():
        node.rows = rank_rowset(node.rows, caching)
    return tree
