"""Workload-based tuple scoring (the QF model of Agrawal et al., CIDR'03).

The paper presents ranking as the complementary technique to
categorization ("categorization and ranking present two complementary
techniques to manage information overload", Section 1) and cites
"Automated Ranking of Database Query Results" [2] as the relational
ranking approach.  This module implements that work's core idea — the
*query-frequency* (QF) model — on top of the same count tables the
categorizer already builds:

* a categorical value ``v`` scores ``occ(v) / max_occ`` — how often past
  users asked for exactly that value;
* a numeric value ``x`` scores by the fraction of past query ranges on
  the attribute that contain ``x``;
* a tuple's score aggregates its per-attribute scores (sum of logs, with
  additive smoothing so unseen values demote rather than veto).

Scores depend only on the workload, so a scorer is built once and reused
across queries — exactly like the categorizer's statistics.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.relational.schema import TableSchema
from repro.workload.preprocess import WorkloadStatistics


#: Additive smoothing applied to every per-attribute score so that a
#: never-requested value contributes a strong negative (but finite) log.
SMOOTHING = 1e-3


class QueryFrequencyScorer:
    """Scores tuples by how much past-query attention their values drew."""

    def __init__(
        self,
        statistics: WorkloadStatistics,
        attributes: list[str] | None = None,
    ) -> None:
        """Args:
            statistics: the preprocessed workload count tables.
            attributes: attributes contributing to the score; defaults to
                every schema attribute with any workload usage (an unused
                attribute carries no preference signal).
        """
        self.statistics = statistics
        schema: TableSchema = statistics.schema
        if attributes is None:
            attributes = [
                a.name for a in schema if statistics.n_attr(a.name) > 0
            ]
        for name in attributes:
            schema.attribute(name)  # validate early
        self.attributes = list(attributes)
        self._max_occ: dict[str, int] = {}

    # -- per-value scores -------------------------------------------------------

    def value_score(self, attribute: str, value: Any) -> float:
        """QF score of one attribute value, in [smoothing, 1].

        Returns the neutral score 1.0 for NULLs (no evidence either way)
        and for attributes the workload never constrains.
        """
        if value is None:
            return 1.0
        if self.statistics.n_attr(attribute) == 0:
            return 1.0
        schema_attribute = self.statistics.schema.attribute(attribute)
        if schema_attribute.is_categorical:
            return self._categorical_score(attribute, value)
        return self._numeric_score(attribute, float(value))

    def _categorical_score(self, attribute: str, value: Any) -> float:
        maximum = self._max_occurrence(attribute)
        if maximum == 0:
            return 1.0
        occ = self.statistics.occ(attribute, value)
        return min(1.0, occ / maximum + SMOOTHING)

    def _numeric_score(self, attribute: str, value: float) -> float:
        index = self.statistics.range_index(attribute)
        if index.total_ranges == 0:
            return 1.0
        containing = index.count_overlapping(value, value, high_inclusive=True)
        return min(1.0, containing / index.total_ranges + SMOOTHING)

    def _max_occurrence(self, attribute: str) -> int:
        cached = self._max_occ.get(attribute)
        if cached is None:
            rows = self.statistics.occurrence_counts(attribute).as_rows()
            cached = rows[0][1] if rows else 0
            self._max_occ[attribute] = cached
        return cached

    # -- tuple scores ----------------------------------------------------------------

    def tuple_score(self, row: Mapping[str, Any]) -> float:
        """Log-sum QF score of one tuple (higher = more sought-after)."""
        return sum(
            math.log(self.value_score(attribute, row.get(attribute)))
            for attribute in self.attributes
        )
