"""Workload-based ranking: the paper's complementary technique, implemented.

Query-frequency tuple scoring (after Agrawal et al., CIDR'03 — the
paper's reference [2]) plus integration into category trees: reorder each
``tset(C)`` so sought-after tuples surface first in SHOWTUPLES scans.
"""

from repro.ranking.qf import SMOOTHING, QueryFrequencyScorer
from repro.ranking.ranker import TupleScorer, rank_rowset, rank_tree

__all__ = [
    "QueryFrequencyScorer",
    "SMOOTHING",
    "TupleScorer",
    "rank_rowset",
    "rank_tree",
]
