"""Command-line interface: categorize query results from the shell.

Subcommands::

    repro generate-data   --rows 20000 --out homes.csv
    repro generate-workload --queries 8000 --out workload.sql
    repro stats           --workload workload.sql
    repro categorize      --data homes.csv --workload workload.sql \
                          --query "SELECT * FROM ListProperty WHERE ..." \
                          [--technique cost-based] [--m 20] [--depth 3] \
                          [--explain]
    repro perf-report     --data homes.csv --workload workload.sql \
                          --query "SELECT ..." [--format text|prometheus|jsonl] \
                          [--sample-rate 0.5 | --sample-every 10]
    repro serve           --data homes.csv --workload workload.sql \
                          [--host 127.0.0.1 --port 8765] [--lenient-csv]
    repro request         --sql "SELECT ..." [--deadline-ms 50] [--budget full] \
                          [--record | --health | --metrics]
    repro request         --batch "SELECT ..." "SELECT ..." [--deadline-ms 200]

``categorize``/``perf-report``/``serve`` accept ``--backend columnar`` to
load the relation into the packed columnar store, or ``--backend sharded
[--workers N]`` to spread it over shared-memory shards with a parallel
worker pool (docs/storage.md).

``generate-data``/``generate-workload`` emit the synthetic MSN stand-ins;
``categorize`` works on any CSV whose schema is the built-in ListProperty
one or is described by ``--schema schema.json``::

    {"name": "Laptops",
     "attributes": [
        {"name": "brand", "type": "text", "kind": "categorical"},
        {"name": "price", "type": "int", "kind": "numeric"}]}
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import perf
from repro.core.algorithm import CostBasedCategorizer
from repro.core.baselines import AttrCostCategorizer, NoCostCategorizer
from repro.core.config import CategorizerConfig, PAPER_CONFIG
from repro.core.cost import CostModel
from repro.core.probability import ProbabilityEstimator
from repro.data.homes import generate_homes, list_property_schema
from repro.relational.csvio import read_csv, write_csv
from repro.relational.schema import Attribute, TableSchema
from repro.relational.types import AttributeKind, DataType
from repro.render.treeview import render_tree, summarize_tree
from repro.sql.compiler import parse_query
from repro.study.report import format_table
from repro.workload.generator import WorkloadGeneratorConfig, generate_workload
from repro.workload.log import Workload
from repro.workload.preprocess import preprocess_workload

TECHNIQUES = {
    "cost-based": CostBasedCategorizer,
    "attr-cost": AttrCostCategorizer,
    "no-cost": NoCostCategorizer,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ValueError, KeyError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Automatic categorization of query results (SIGMOD 2004)",
    )
    subparsers = parser.add_subparsers(required=True)

    data = subparsers.add_parser(
        "generate-data", help="write a synthetic ListProperty CSV"
    )
    data.add_argument("--rows", type=int, default=20_000)
    data.add_argument("--seed", type=int, default=7)
    data.add_argument("--out", type=Path, required=True)
    data.set_defaults(handler=_cmd_generate_data)

    wl = subparsers.add_parser(
        "generate-workload", help="write a synthetic SQL search log"
    )
    wl.add_argument("--queries", type=int, default=8_000)
    wl.add_argument("--seed", type=int, default=41)
    wl.add_argument("--out", type=Path, required=True)
    wl.set_defaults(handler=_cmd_generate_workload)

    stats = subparsers.add_parser(
        "stats", help="print the count tables of a workload (Figure 4a/4b)"
    )
    stats.add_argument("--workload", type=Path, required=True)
    stats.add_argument("--schema", type=Path, default=None)
    stats.add_argument("--top", type=int, default=10)
    stats.set_defaults(handler=_cmd_stats)

    cat = subparsers.add_parser(
        "categorize", help="categorize the results of one query"
    )
    cat.add_argument("--data", type=Path, required=True, help="CSV relation")
    cat.add_argument("--workload", type=Path, required=True, help="SQL log file")
    cat.add_argument("--query", required=True, help="SQL SELECT string")
    cat.add_argument("--schema", type=Path, default=None, help="schema JSON")
    cat.add_argument(
        "--technique", choices=sorted(TECHNIQUES), default="cost-based"
    )
    cat.add_argument("--m", type=int, default=PAPER_CONFIG.max_tuples_per_category,
                     help="max tuples per un-partitioned category (M)")
    cat.add_argument("--k", type=float, default=PAPER_CONFIG.label_cost,
                     help="label cost relative to a tuple (K)")
    cat.add_argument("--x", type=float, default=PAPER_CONFIG.elimination_threshold,
                     help="attribute elimination threshold")
    cat.add_argument("--buckets", type=int, default=PAPER_CONFIG.bucket_count,
                     help="numeric buckets per partitioning (m)")
    cat.add_argument("--depth", type=int, default=None, help="render depth")
    cat.add_argument("--children", type=int, default=8,
                     help="children rendered per node")
    cat.add_argument("--explain", action="store_true",
                     help="print the per-level decision trace (candidates, "
                          "CostAll/CostOne, eliminations, chosen attribute)")
    cat.add_argument("--backend", choices=("rows", "columnar", "sharded"),
                     default="rows",
                     help="table storage backend (columnar for large CSVs, "
                          "sharded for parallel selection over many cores)")
    cat.add_argument("--workers", type=int, default=None,
                     help="worker-pool size for --backend sharded")
    cat.set_defaults(handler=_cmd_categorize)

    report = subparsers.add_parser(
        "perf-report",
        help="categorize with instrumentation on and dump the metrics",
    )
    report.add_argument("--data", type=Path, required=True, help="CSV relation")
    report.add_argument("--workload", type=Path, required=True, help="SQL log file")
    report.add_argument("--query", required=True, help="SQL SELECT string")
    report.add_argument("--schema", type=Path, default=None, help="schema JSON")
    report.add_argument(
        "--technique", choices=sorted(TECHNIQUES), default="cost-based"
    )
    report.add_argument("--m", type=int, default=PAPER_CONFIG.max_tuples_per_category)
    report.add_argument(
        "--format", choices=("text", "prometheus", "jsonl"), default="text",
        help="output format for the collected metrics",
    )
    report.add_argument("--sample-rate", type=float, default=None,
                        help="trace sampling probability in [0, 1]")
    report.add_argument("--sample-every", type=int, default=None,
                        help="trace every Nth root span")
    report.add_argument("--backend", choices=("rows", "columnar", "sharded"),
                        default="rows",
                        help="table storage backend (columnar for large CSVs, "
                             "sharded for parallel selection over many cores)")
    report.add_argument("--workers", type=int, default=None,
                        help="worker-pool size for --backend sharded")
    report.set_defaults(handler=_cmd_perf_report)

    serve = subparsers.add_parser(
        "serve", help="run the categorization service over HTTP"
    )
    serve.add_argument("--data", type=Path, required=True, help="CSV relation")
    serve.add_argument("--workload", type=Path, required=True, help="SQL log file")
    serve.add_argument("--schema", type=Path, default=None, help="schema JSON")
    serve.add_argument(
        "--technique", choices=sorted(TECHNIQUES), default="cost-based"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument("--batch-size", type=int, default=64,
                       help="ingested queries per epoch publish")
    serve.add_argument("--cache-size", type=int, default=128,
                       help="result-cache capacity (0 disables)")
    serve.add_argument("--cache-ttl", type=float, default=300.0,
                       help="result-cache TTL in seconds")
    serve.add_argument("--lenient-csv", action="store_true",
                       help="skip malformed CSV rows instead of failing")
    serve.add_argument("--backend", choices=("rows", "columnar", "sharded"),
                       default="rows",
                       help="table storage backend (columnar for large CSVs, "
                            "sharded for parallel selection over many cores)")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker-pool size for --backend sharded")
    serve.set_defaults(handler=_cmd_serve)

    req = subparsers.add_parser(
        "request", help="send one request to a running `repro serve`"
    )
    req.add_argument("--url", default="http://127.0.0.1:8765",
                     help="base URL of the service")
    req.add_argument("--sql", default=None, help="SQL SELECT to categorize")
    req.add_argument("--batch", nargs="+", metavar="SQL", default=None,
                     help="several SQL SELECTs served against one pinned "
                          "epoch via POST /categorize_batch")
    req.add_argument("--deadline-ms", type=float, default=None)
    req.add_argument("--budget", default="full",
                     help="best rung to pay for: full|single_level|showtuples")
    req.add_argument("--record", action="store_true",
                     help="ingest --sql into the workload instead of serving it")
    req.add_argument("--render", action="store_true",
                     help="include the rendered tree in the response")
    req.add_argument("--trace", action="store_true",
                     help="include the decision trace in the response")
    req.add_argument("--health", action="store_true", help="GET /healthz")
    req.add_argument("--metrics", action="store_true", help="GET /metrics")
    req.set_defaults(handler=_cmd_request)
    return parser


# -- handlers --------------------------------------------------------------


def _backend_options(args) -> dict | None:
    """Translate CLI backend flags into ``Table`` backend options."""
    if getattr(args, "workers", None) is None:
        return None
    if args.backend != "sharded":
        raise ValueError("--workers only applies to --backend sharded")
    return {"workers": args.workers}


def _cmd_generate_data(args) -> int:
    table = generate_homes(rows=args.rows, seed=args.seed)
    write_csv(table, args.out)
    print(f"wrote {len(table)} rows to {args.out}")
    return 0


def _cmd_generate_workload(args) -> int:
    workload = generate_workload(
        WorkloadGeneratorConfig(query_count=args.queries, seed=args.seed)
    )
    workload.save(args.out)
    print(f"wrote {len(workload)} queries to {args.out}")
    return 0


def _cmd_stats(args) -> int:
    schema = load_schema(args.schema)
    workload = Workload.load(args.workload)
    statistics = preprocess_workload(
        workload, schema, PAPER_CONFIG.separation_intervals
    )
    print(
        format_table(
            ["Attribute", "NAttr(A)", "NAttr(A)/N"],
            [
                [name, count, f"{count / statistics.total_queries:.3f}"]
                for name, count in statistics.usage.as_rows()
            ],
            title=f"AttributeUsageCounts (N = {statistics.total_queries})",
        )
    )
    for attribute in schema.categorical_attributes():
        rows = statistics.occurrence_counts(attribute.name).as_rows()[: args.top]
        if not rows:
            continue
        print()
        print(
            format_table(
                ["Value", "occ(v)"],
                rows,
                title=f"OccurrenceCounts: {attribute.name} (top {args.top})",
            )
        )
    return 0


def _cmd_categorize(args) -> int:
    schema = load_schema(args.schema)
    table = read_csv(
        schema, args.data, backend=args.backend,
        backend_options=_backend_options(args),
    )
    workload = Workload.load(args.workload)
    config = CategorizerConfig(
        max_tuples_per_category=args.m,
        label_cost=args.k,
        elimination_threshold=args.x,
        bucket_count=args.buckets,
        separation_intervals=PAPER_CONFIG.separation_intervals,
    )
    statistics = preprocess_workload(workload, schema, config.separation_intervals)

    query = parse_query(args.query)
    rows = query.execute(table)
    print(f"result set: {len(rows)} of {len(table)} tuples")
    categorizer = TECHNIQUES[args.technique](statistics, config)
    tree = categorizer.categorize(rows, query, collect_trace=args.explain)
    print(summarize_tree(tree))
    print()
    print(render_tree(tree, max_depth=args.depth, max_children=args.children))

    model = CostModel(ProbabilityEstimator(statistics), config)
    print()
    print(f"estimated CostAll: {model.tree_cost_all(tree):.1f}")
    print(f"estimated CostOne: {model.tree_cost_one(tree):.1f}")
    print(f"uncategorized scan: {len(rows)}")
    if args.explain and tree.decision_trace is not None:
        print()
        print(tree.decision_trace.render())
    table.close()
    return 0


def _cmd_perf_report(args) -> int:
    schema = load_schema(args.schema)
    config = PAPER_CONFIG.with_overrides(max_tuples_per_category=args.m)
    perf.enable()
    try:
        if args.sample_rate is not None or args.sample_every is not None:
            perf.set_sampling(rate=args.sample_rate, every=args.sample_every)
        table = read_csv(
            schema, args.data, backend=args.backend,
            backend_options=_backend_options(args),
        )
        workload = Workload.load(args.workload)
        statistics = preprocess_workload(workload, schema, config.separation_intervals)
        query = parse_query(args.query)
        rows = query.execute(table)
        categorizer = TECHNIQUES[args.technique](statistics, config)
        tree = categorizer.categorize(rows, query)
        perf.gauge("categorize.result_size", len(rows))
        perf.gauge("categorize.tree_nodes", sum(1 for _ in tree.nodes()))
        if args.format == "prometheus":
            print(perf.export_prometheus(), end="")
        elif args.format == "jsonl":
            print(perf.export_jsonl(), end="")
        else:
            print(perf.format_report())
    finally:
        perf.clear_sampling()
        perf.reset()
        perf.disable()
    table.close()
    return 0


def _cmd_serve(args) -> int:
    from repro.serving.http import make_server
    from repro.serving.service import CategorizationService

    schema = load_schema(args.schema)
    table = read_csv(
        schema,
        args.data,
        strict=not args.lenient_csv,
        backend=args.backend,
        backend_options=_backend_options(args),
    )
    workload = Workload.load(args.workload)
    statistics = preprocess_workload(
        workload, schema, PAPER_CONFIG.separation_intervals
    )
    service = CategorizationService(
        table,
        statistics,
        technique=args.technique,
        batch_size=args.batch_size,
        cache_capacity=args.cache_size,
        cache_ttl_s=args.cache_ttl,
    )
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    perf.enable()  # the /metrics endpoint should have data from request 1
    print(
        f"serving {schema.name} ({len(table)} rows, "
        f"{statistics.total_queries} workload queries) on http://{host}:{port}"
    )
    print(
        "endpoints: GET /healthz /metrics, "
        "POST /categorize /categorize_batch /record"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        service.flush()
        server.server_close()
        table.close()
        perf.disable()
    return 0


def _cmd_request(args) -> int:
    import urllib.error
    import urllib.request

    base = args.url.rstrip("/")
    if args.health or args.metrics:
        path = "/healthz" if args.health else "/metrics"
        request = urllib.request.Request(base + path)
    elif args.batch:
        payload: dict = {
            "sqls": list(args.batch),
            "deadline_ms": args.deadline_ms,
            "budget": args.budget,
            "render": args.render,
            "trace": args.trace,
        }
        request = urllib.request.Request(
            base + "/categorize_batch",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
    elif args.sql:
        path = "/record" if args.record else "/categorize"
        payload = {"sql": args.sql}
        if not args.record:
            payload.update(
                deadline_ms=args.deadline_ms,
                budget=args.budget,
                render=args.render,
                trace=args.trace,
            )
        request = urllib.request.Request(
            base + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
    else:
        print("error: need --sql, --batch, --health, or --metrics", file=sys.stderr)
        return 2

    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            print(response.read().decode("utf-8"), end="")
            return 0
    except urllib.error.HTTPError as exc:
        print(exc.read().decode("utf-8"), end="", file=sys.stderr)
        return 2
    except urllib.error.URLError as exc:
        print(f"error: cannot reach {base}: {exc.reason}", file=sys.stderr)
        return 2


def load_schema(path: Path | None) -> TableSchema:
    """Load a schema JSON, or return the built-in ListProperty schema."""
    if path is None:
        return list_property_schema()
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    attributes = []
    for spec in payload["attributes"]:
        kind = spec.get("kind")
        attributes.append(
            Attribute(
                spec["name"],
                DataType(spec["type"]),
                AttributeKind(kind) if kind else None,
            )
        )
    return TableSchema(payload["name"], tuple(attributes))


if __name__ == "__main__":
    raise SystemExit(main())
