"""Command-line interface: categorize query results from the shell.

Subcommands::

    repro generate-data   --rows 20000 --out homes.csv
    repro generate-workload --queries 8000 --out workload.sql
    repro stats           --workload workload.sql
    repro categorize      --data homes.csv --workload workload.sql \
                          --query "SELECT * FROM ListProperty WHERE ..." \
                          [--technique cost-based] [--m 20] [--depth 3] \
                          [--explain]
    repro perf-report     --data homes.csv --workload workload.sql \
                          --query "SELECT ..." [--format text|prometheus|jsonl] \
                          [--sample-rate 0.5 | --sample-every 10]

``generate-data``/``generate-workload`` emit the synthetic MSN stand-ins;
``categorize`` works on any CSV whose schema is the built-in ListProperty
one or is described by ``--schema schema.json``::

    {"name": "Laptops",
     "attributes": [
        {"name": "brand", "type": "text", "kind": "categorical"},
        {"name": "price", "type": "int", "kind": "numeric"}]}
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import perf
from repro.core.algorithm import CostBasedCategorizer
from repro.core.baselines import AttrCostCategorizer, NoCostCategorizer
from repro.core.config import CategorizerConfig, PAPER_CONFIG
from repro.core.cost import CostModel
from repro.core.probability import ProbabilityEstimator
from repro.data.homes import generate_homes, list_property_schema
from repro.relational.csvio import read_csv, write_csv
from repro.relational.schema import Attribute, TableSchema
from repro.relational.types import AttributeKind, DataType
from repro.render.treeview import render_tree, summarize_tree
from repro.sql.compiler import parse_query
from repro.study.report import format_table
from repro.workload.generator import WorkloadGeneratorConfig, generate_workload
from repro.workload.log import Workload
from repro.workload.preprocess import preprocess_workload

TECHNIQUES = {
    "cost-based": CostBasedCategorizer,
    "attr-cost": AttrCostCategorizer,
    "no-cost": NoCostCategorizer,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ValueError, KeyError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Automatic categorization of query results (SIGMOD 2004)",
    )
    subparsers = parser.add_subparsers(required=True)

    data = subparsers.add_parser(
        "generate-data", help="write a synthetic ListProperty CSV"
    )
    data.add_argument("--rows", type=int, default=20_000)
    data.add_argument("--seed", type=int, default=7)
    data.add_argument("--out", type=Path, required=True)
    data.set_defaults(handler=_cmd_generate_data)

    wl = subparsers.add_parser(
        "generate-workload", help="write a synthetic SQL search log"
    )
    wl.add_argument("--queries", type=int, default=8_000)
    wl.add_argument("--seed", type=int, default=41)
    wl.add_argument("--out", type=Path, required=True)
    wl.set_defaults(handler=_cmd_generate_workload)

    stats = subparsers.add_parser(
        "stats", help="print the count tables of a workload (Figure 4a/4b)"
    )
    stats.add_argument("--workload", type=Path, required=True)
    stats.add_argument("--schema", type=Path, default=None)
    stats.add_argument("--top", type=int, default=10)
    stats.set_defaults(handler=_cmd_stats)

    cat = subparsers.add_parser(
        "categorize", help="categorize the results of one query"
    )
    cat.add_argument("--data", type=Path, required=True, help="CSV relation")
    cat.add_argument("--workload", type=Path, required=True, help="SQL log file")
    cat.add_argument("--query", required=True, help="SQL SELECT string")
    cat.add_argument("--schema", type=Path, default=None, help="schema JSON")
    cat.add_argument(
        "--technique", choices=sorted(TECHNIQUES), default="cost-based"
    )
    cat.add_argument("--m", type=int, default=PAPER_CONFIG.max_tuples_per_category,
                     help="max tuples per un-partitioned category (M)")
    cat.add_argument("--k", type=float, default=PAPER_CONFIG.label_cost,
                     help="label cost relative to a tuple (K)")
    cat.add_argument("--x", type=float, default=PAPER_CONFIG.elimination_threshold,
                     help="attribute elimination threshold")
    cat.add_argument("--buckets", type=int, default=PAPER_CONFIG.bucket_count,
                     help="numeric buckets per partitioning (m)")
    cat.add_argument("--depth", type=int, default=None, help="render depth")
    cat.add_argument("--children", type=int, default=8,
                     help="children rendered per node")
    cat.add_argument("--explain", action="store_true",
                     help="print the per-level decision trace (candidates, "
                          "CostAll/CostOne, eliminations, chosen attribute)")
    cat.set_defaults(handler=_cmd_categorize)

    report = subparsers.add_parser(
        "perf-report",
        help="categorize with instrumentation on and dump the metrics",
    )
    report.add_argument("--data", type=Path, required=True, help="CSV relation")
    report.add_argument("--workload", type=Path, required=True, help="SQL log file")
    report.add_argument("--query", required=True, help="SQL SELECT string")
    report.add_argument("--schema", type=Path, default=None, help="schema JSON")
    report.add_argument(
        "--technique", choices=sorted(TECHNIQUES), default="cost-based"
    )
    report.add_argument("--m", type=int, default=PAPER_CONFIG.max_tuples_per_category)
    report.add_argument(
        "--format", choices=("text", "prometheus", "jsonl"), default="text",
        help="output format for the collected metrics",
    )
    report.add_argument("--sample-rate", type=float, default=None,
                        help="trace sampling probability in [0, 1]")
    report.add_argument("--sample-every", type=int, default=None,
                        help="trace every Nth root span")
    report.set_defaults(handler=_cmd_perf_report)
    return parser


# -- handlers --------------------------------------------------------------


def _cmd_generate_data(args) -> int:
    table = generate_homes(rows=args.rows, seed=args.seed)
    write_csv(table, args.out)
    print(f"wrote {len(table)} rows to {args.out}")
    return 0


def _cmd_generate_workload(args) -> int:
    workload = generate_workload(
        WorkloadGeneratorConfig(query_count=args.queries, seed=args.seed)
    )
    workload.save(args.out)
    print(f"wrote {len(workload)} queries to {args.out}")
    return 0


def _cmd_stats(args) -> int:
    schema = load_schema(args.schema)
    workload = Workload.load(args.workload)
    statistics = preprocess_workload(
        workload, schema, PAPER_CONFIG.separation_intervals
    )
    print(
        format_table(
            ["Attribute", "NAttr(A)", "NAttr(A)/N"],
            [
                [name, count, f"{count / statistics.total_queries:.3f}"]
                for name, count in statistics.usage.as_rows()
            ],
            title=f"AttributeUsageCounts (N = {statistics.total_queries})",
        )
    )
    for attribute in schema.categorical_attributes():
        rows = statistics.occurrence_counts(attribute.name).as_rows()[: args.top]
        if not rows:
            continue
        print()
        print(
            format_table(
                ["Value", "occ(v)"],
                rows,
                title=f"OccurrenceCounts: {attribute.name} (top {args.top})",
            )
        )
    return 0


def _cmd_categorize(args) -> int:
    schema = load_schema(args.schema)
    table = read_csv(schema, args.data)
    workload = Workload.load(args.workload)
    config = CategorizerConfig(
        max_tuples_per_category=args.m,
        label_cost=args.k,
        elimination_threshold=args.x,
        bucket_count=args.buckets,
        separation_intervals=PAPER_CONFIG.separation_intervals,
    )
    statistics = preprocess_workload(workload, schema, config.separation_intervals)

    query = parse_query(args.query)
    rows = query.execute(table)
    print(f"result set: {len(rows)} of {len(table)} tuples")
    categorizer = TECHNIQUES[args.technique](statistics, config)
    tree = categorizer.categorize(rows, query, collect_trace=args.explain)
    print(summarize_tree(tree))
    print()
    print(render_tree(tree, max_depth=args.depth, max_children=args.children))

    model = CostModel(ProbabilityEstimator(statistics), config)
    print()
    print(f"estimated CostAll: {model.tree_cost_all(tree):.1f}")
    print(f"estimated CostOne: {model.tree_cost_one(tree):.1f}")
    print(f"uncategorized scan: {len(rows)}")
    if args.explain and tree.decision_trace is not None:
        print()
        print(tree.decision_trace.render())
    return 0


def _cmd_perf_report(args) -> int:
    schema = load_schema(args.schema)
    config = PAPER_CONFIG.with_overrides(max_tuples_per_category=args.m)
    perf.enable()
    try:
        if args.sample_rate is not None or args.sample_every is not None:
            perf.set_sampling(rate=args.sample_rate, every=args.sample_every)
        table = read_csv(schema, args.data)
        workload = Workload.load(args.workload)
        statistics = preprocess_workload(workload, schema, config.separation_intervals)
        query = parse_query(args.query)
        rows = query.execute(table)
        categorizer = TECHNIQUES[args.technique](statistics, config)
        tree = categorizer.categorize(rows, query)
        perf.gauge("categorize.result_size", len(rows))
        perf.gauge("categorize.tree_nodes", sum(1 for _ in tree.nodes()))
        if args.format == "prometheus":
            print(perf.export_prometheus(), end="")
        elif args.format == "jsonl":
            print(perf.export_jsonl(), end="")
        else:
            print(perf.format_report())
    finally:
        perf.clear_sampling()
        perf.reset()
        perf.disable()
    return 0


def load_schema(path: Path | None) -> TableSchema:
    """Load a schema JSON, or return the built-in ListProperty schema."""
    if path is None:
        return list_property_schema()
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    attributes = []
    for spec in payload["attributes"]:
        kind = spec.get("kind")
        attributes.append(
            Attribute(
                spec["name"],
                DataType(spec["type"]),
                AttributeKind(kind) if kind else None,
            )
        )
    return TableSchema(payload["name"], tuple(attributes))


if __name__ == "__main__":
    raise SystemExit(main())
