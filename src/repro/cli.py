"""Command-line interface: categorize query results from the shell.

Subcommands::

    repro generate-data   --rows 20000 --out homes.csv
    repro generate-workload --queries 8000 --out workload.sql
    repro stats           --workload workload.sql
    repro categorize      --data homes.csv --workload workload.sql \
                          --query "SELECT * FROM ListProperty WHERE ..." \
                          [--technique cost-based] [--m 20] [--depth 3] \
                          [--explain]
    repro perf-report     --data homes.csv --workload workload.sql \
                          --query "SELECT ..." \
                          [--format text|prometheus|jsonl|json] \
                          [--sample-rate 0.5 | --sample-every 10]
    repro serve           --data homes.csv --workload workload.sql \
                          [--host 127.0.0.1 --port 8765] [--lenient-csv] \
                          [--async --max-inflight 8 --max-queue 32] \
                          [--warm-start state/ --journal-fsync always \
                           --grace 5] \
                          [--telemetry-sink events.jsonl \
                           --telemetry-sample 0.1]
    repro serve           --dataset ListProperty=homes.csv,workload=workload.sql \
                          --dataset Movies=@movies,rows=8000 \
                          [--default-table ListProperty]
    repro serve           --catalog catalog.toml
    repro audit           events.jsonl [events.jsonl.1 ...] \
                          [--format text|json] [--diff baseline.jsonl ...] \
                          [--table Movies] [--strict]
    repro request         --sql "SELECT ..." [--table Movies] [--deadline-ms 50] \
                          [--budget full] [--record | --health | --metrics] \
                          [--repeat N]
    repro request         --batch "SELECT ..." "SELECT ..." [--deadline-ms 200]
    repro loadgen         --url http://127.0.0.1:8765 --clients 32 --requests 10 \
                          [--sql "SELECT ..." ...] [--table Movies] \
                          [--deadline-ms 500] [--json]

One ``repro serve`` process can serve several relations (docs/catalog.md):
each ``--dataset NAME=SPEC`` or ``[datasets.NAME]`` TOML table opens an
independent relation — own epochs, result cache, spill journal, and
warm-start snapshots under ``--warm-start DIR/NAME/`` — and requests
address one via ``table=``.  Requests that name no table resolve to the
default relation and are answered with a ``Deprecation`` header.

``categorize``/``perf-report``/``serve`` accept ``--backend columnar`` to
load the relation into the packed columnar store, or ``--backend sharded
[--workers N]`` to spread it over shared-memory shards with a parallel
worker pool (docs/storage.md).

``generate-data``/``generate-workload`` emit the synthetic MSN stand-ins;
``categorize`` works on any CSV whose schema is the built-in ListProperty
one or is described by ``--schema schema.json``::

    {"name": "Laptops",
     "attributes": [
        {"name": "brand", "type": "text", "kind": "categorical"},
        {"name": "price", "type": "int", "kind": "numeric"}]}
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import perf
from repro.core.algorithm import CostBasedCategorizer
from repro.core.baselines import AttrCostCategorizer, NoCostCategorizer
from repro.core.config import CategorizerConfig, PAPER_CONFIG
from repro.core.cost import CostModel
from repro.core.probability import ProbabilityEstimator
from repro.data.homes import generate_homes, list_property_schema
from repro.relational.csvio import read_csv, write_csv
from repro.relational.schema import Attribute, TableSchema
from repro.relational.types import AttributeKind, DataType
from repro.render.treeview import render_tree, summarize_tree
from repro.sql.compiler import parse_query
from repro.study.report import format_table
from repro.workload.generator import WorkloadGeneratorConfig, generate_workload
from repro.workload.log import Workload
from repro.workload.preprocess import preprocess_workload

TECHNIQUES = {
    "cost-based": CostBasedCategorizer,
    "attr-cost": AttrCostCategorizer,
    "no-cost": NoCostCategorizer,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ValueError, KeyError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Automatic categorization of query results (SIGMOD 2004)",
    )
    subparsers = parser.add_subparsers(required=True)

    data = subparsers.add_parser(
        "generate-data", help="write a synthetic ListProperty CSV"
    )
    data.add_argument("--rows", type=int, default=20_000)
    data.add_argument("--seed", type=int, default=7)
    data.add_argument("--out", type=Path, required=True)
    data.set_defaults(handler=_cmd_generate_data)

    wl = subparsers.add_parser(
        "generate-workload", help="write a synthetic SQL search log"
    )
    wl.add_argument("--queries", type=int, default=8_000)
    wl.add_argument("--seed", type=int, default=41)
    wl.add_argument("--out", type=Path, required=True)
    wl.set_defaults(handler=_cmd_generate_workload)

    stats = subparsers.add_parser(
        "stats", help="print the count tables of a workload (Figure 4a/4b)"
    )
    stats.add_argument("--workload", type=Path, required=True)
    stats.add_argument("--schema", type=Path, default=None)
    stats.add_argument("--top", type=int, default=10)
    stats.set_defaults(handler=_cmd_stats)

    cat = subparsers.add_parser(
        "categorize", help="categorize the results of one query"
    )
    cat.add_argument("--data", type=Path, required=True, help="CSV relation")
    cat.add_argument("--workload", type=Path, required=True, help="SQL log file")
    cat.add_argument("--query", required=True, help="SQL SELECT string")
    cat.add_argument("--schema", type=Path, default=None, help="schema JSON")
    cat.add_argument("--table", default=None, metavar="NAME",
                     help="relation name: picks the built-in schema "
                          "(ListProperty, Movies) when --schema is absent, "
                          "and cross-checks it otherwise")
    cat.add_argument(
        "--technique", choices=sorted(TECHNIQUES), default="cost-based"
    )
    cat.add_argument("--m", type=int, default=PAPER_CONFIG.max_tuples_per_category,
                     help="max tuples per un-partitioned category (M)")
    cat.add_argument("--k", type=float, default=PAPER_CONFIG.label_cost,
                     help="label cost relative to a tuple (K)")
    cat.add_argument("--x", type=float, default=PAPER_CONFIG.elimination_threshold,
                     help="attribute elimination threshold")
    cat.add_argument("--buckets", type=int, default=PAPER_CONFIG.bucket_count,
                     help="numeric buckets per partitioning (m)")
    cat.add_argument("--depth", type=int, default=None, help="render depth")
    cat.add_argument("--children", type=int, default=8,
                     help="children rendered per node")
    cat.add_argument("--explain", action="store_true",
                     help="print the per-level decision trace (candidates, "
                          "CostAll/CostOne, eliminations, chosen attribute)")
    cat.add_argument("--backend", choices=("rows", "columnar", "sharded"),
                     default="rows",
                     help="table storage backend (columnar for large CSVs, "
                          "sharded for parallel selection over many cores)")
    cat.add_argument("--workers", type=int, default=None,
                     help="worker-pool size for --backend sharded")
    cat.set_defaults(handler=_cmd_categorize)

    report = subparsers.add_parser(
        "perf-report",
        help="categorize with instrumentation on and dump the metrics",
    )
    report.add_argument("--data", type=Path, required=True, help="CSV relation")
    report.add_argument("--workload", type=Path, required=True, help="SQL log file")
    report.add_argument("--query", required=True, help="SQL SELECT string")
    report.add_argument("--schema", type=Path, default=None, help="schema JSON")
    report.add_argument(
        "--technique", choices=sorted(TECHNIQUES), default="cost-based"
    )
    report.add_argument("--m", type=int, default=PAPER_CONFIG.max_tuples_per_category)
    report.add_argument(
        "--format", choices=("text", "prometheus", "jsonl", "json"), default="text",
        help="output format for the collected metrics (json = the full "
             "registry as one machine-readable document)",
    )
    report.add_argument("--sample-rate", type=float, default=None,
                        help="trace sampling probability in [0, 1]")
    report.add_argument("--sample-every", type=int, default=None,
                        help="trace every Nth root span")
    report.add_argument("--backend", choices=("rows", "columnar", "sharded"),
                        default="rows",
                        help="table storage backend (columnar for large CSVs, "
                             "sharded for parallel selection over many cores)")
    report.add_argument("--workers", type=int, default=None,
                        help="worker-pool size for --backend sharded")
    report.set_defaults(handler=_cmd_perf_report)

    serve = subparsers.add_parser(
        "serve", help="run the categorization service over HTTP"
    )
    serve.add_argument("--data", type=Path, default=None,
                       help="CSV relation (legacy single-table form; "
                            "pairs with --workload)")
    serve.add_argument("--workload", type=Path, default=None,
                       help="SQL log file for --data")
    serve.add_argument("--schema", type=Path, default=None, help="schema JSON")
    serve.add_argument("--dataset", action="append", default=None,
                       metavar="NAME=SPEC",
                       help="serve relation NAME from SPEC — a CSV path or "
                            "@generator, plus comma-separated key=value "
                            "options; repeatable (e.g. "
                            "Movies=@movies,rows=8000; docs/catalog.md)")
    serve.add_argument("--catalog", type=Path, default=None, metavar="TOML",
                       help="open every [datasets.NAME] relation in this "
                            "catalog TOML file (docs/catalog.md)")
    serve.add_argument("--default-table", default=None, metavar="NAME",
                       help="relation answering table-less (legacy) requests; "
                            "default: the catalog file's `default`, else the "
                            "first relation")
    serve.add_argument(
        "--technique", choices=sorted(TECHNIQUES), default="cost-based"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument("--batch-size", type=int, default=64,
                       help="ingested queries per epoch publish")
    serve.add_argument("--cache-size", type=int, default=128,
                       help="result-cache capacity (0 disables)")
    serve.add_argument("--cache-ttl", type=float, default=300.0,
                       help="result-cache TTL in seconds")
    serve.add_argument("--lenient-csv", action="store_true",
                       help="skip malformed CSV rows instead of failing")
    serve.add_argument("--backend", choices=("rows", "columnar", "sharded"),
                       default="rows",
                       help="table storage backend (columnar for large CSVs, "
                            "sharded for parallel selection over many cores)")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker-pool size for --backend sharded")
    serve.add_argument("--async", dest="use_async", action="store_true",
                       help="serve on the asyncio front end: keep-alive event "
                            "loop, request coalescing, load shedding "
                            "(docs/serving.md)")
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="concurrent compute requests on the async front "
                            "end (executor slots)")
    serve.add_argument("--max-queue", type=int, default=32,
                       help="bounded admission queue; arrivals beyond it are "
                            "shed with 503 + Retry-After")
    serve.add_argument("--telemetry-sink", type=Path, default=None,
                       help="ship sampled request/decision events to this "
                            "rotating JSONL file (analyze with `repro audit`)")
    serve.add_argument("--telemetry-sample", type=float, default=1.0,
                       help="fraction of requests traced end-to-end, in "
                            "[0, 1] (deterministic per trace id; default 1.0)")
    serve.add_argument("--telemetry-rotate-bytes", type=int,
                       default=16 * 1024 * 1024,
                       help="rotate the sink after this many bytes "
                            "(default 16 MiB)")
    serve.add_argument("--telemetry-fsync",
                       choices=("never", "rotate", "always"), default="rotate",
                       help="sink durability: fsync never, on rotation/close "
                            "(default), or every event")
    serve.add_argument("--warm-start", type=Path, default=None, metavar="DIR",
                       help="durable state root: each relation keeps its own "
                            "spill journal plus table/stats snapshots under "
                            "DIR/<table>/; a relation boots warm when its "
                            "checksums/versions check out, falls back cold "
                            "(and replays its journal) otherwise, and "
                            "re-snapshots on graceful shutdown "
                            "(docs/serving.md)")
    serve.add_argument("--journal-fsync",
                       choices=("never", "rotate", "always"), default="always",
                       help="spill-journal durability: fsync every append "
                            "(default -- an acked /record survives SIGKILL), "
                            "on segment rotation, or never")
    serve.add_argument("--grace", type=float, default=5.0,
                       help="seconds SIGTERM waits for in-flight requests "
                            "to finish before exiting anyway")
    serve.set_defaults(handler=_cmd_serve)

    audit = subparsers.add_parser(
        "audit",
        help="join a telemetry sink's events per request and report "
             "latency waterfalls, rung/shed/coalesce mixes, cache hit "
             "ratios, and the tree-quality digest",
    )
    audit.add_argument("events", nargs="+", type=Path, metavar="EVENTS",
                       help="sink files (pass rotated segments too)")
    audit.add_argument("--format", choices=("text", "json"), default="text",
                       help="report format")
    audit.add_argument("--diff", nargs="+", type=Path, default=None,
                       metavar="BASELINE",
                       help="baseline sink files to A/B against (rung mix, "
                            "chosen-attribute mix, cost margins)")
    audit.add_argument("--table", default=None, metavar="NAME",
                       help="restrict the report (and any --diff baseline) "
                            "to traces that touched this relation")
    audit.add_argument("--strict", action="store_true",
                       help="exit 1 when any trace is partial or any event "
                            "orphaned (the CI smoke contract)")
    audit.set_defaults(handler=_cmd_audit)

    req = subparsers.add_parser(
        "request", help="send one request to a running `repro serve`"
    )
    req.add_argument("--url", default="http://127.0.0.1:8765",
                     help="base URL of the service")
    req.add_argument("--sql", default=None, help="SQL SELECT to categorize")
    req.add_argument("--table", default=None, metavar="NAME",
                     help="relation to address; omitting it resolves to the "
                          "server's default table (and the response carries "
                          "a Deprecation header)")
    req.add_argument("--batch", nargs="+", metavar="SQL", default=None,
                     help="several SQL SELECTs served against one pinned "
                          "epoch via POST /categorize_batch")
    req.add_argument("--deadline-ms", type=float, default=None)
    req.add_argument("--budget", default="full",
                     help="best rung to pay for: full|single_level|showtuples")
    req.add_argument("--record", action="store_true",
                     help="ingest --sql into the workload instead of serving it")
    req.add_argument("--render", action="store_true",
                     help="include the rendered tree in the response")
    req.add_argument("--trace", action="store_true",
                     help="include the decision trace in the response")
    req.add_argument("--health", action="store_true", help="GET /healthz")
    req.add_argument("--metrics", action="store_true", help="GET /metrics")
    req.add_argument("--repeat", type=int, default=1,
                     help="send the request N times over one keep-alive "
                          "connection and print a latency summary (quick "
                          "manual load check)")
    req.set_defaults(handler=_cmd_request)

    lg = subparsers.add_parser(
        "loadgen",
        help="closed-loop load generator against a running `repro serve`",
    )
    lg.add_argument("--url", default="http://127.0.0.1:8765",
                    help="base URL of the service")
    lg.add_argument("--sql", nargs="+", metavar="SQL", default=None,
                    help="query mix cycled across clients (default: built-in "
                         "duplicate-heavy ListProperty mix)")
    lg.add_argument("--table", default=None, metavar="NAME",
                    help="relation every request addresses; omitting it "
                         "exercises the legacy default-table path")
    lg.add_argument("--clients", type=int, default=32,
                    help="concurrent closed-loop clients")
    lg.add_argument("--requests", type=int, default=10,
                    help="requests per client")
    lg.add_argument("--deadline-ms", type=float, default=None,
                    help="deadline forwarded on every request")
    lg.add_argument("--budget", default="full",
                    help="best rung to pay for: full|single_level|showtuples")
    lg.add_argument("--timeout", type=float, default=60.0,
                    help="per-request client timeout in seconds")
    lg.add_argument("--json", dest="as_json", action="store_true",
                    help="print the report as JSON instead of a table")
    lg.set_defaults(handler=_cmd_loadgen)
    return parser


# -- handlers --------------------------------------------------------------


def _backend_options(args) -> dict | None:
    """Translate CLI backend flags into ``Table`` backend options."""
    if getattr(args, "workers", None) is None:
        return None
    if args.backend != "sharded":
        raise ValueError("--workers only applies to --backend sharded")
    return {"workers": args.workers}


def _cmd_generate_data(args) -> int:
    table = generate_homes(rows=args.rows, seed=args.seed)
    write_csv(table, args.out)
    print(f"wrote {len(table)} rows to {args.out}")
    return 0


def _cmd_generate_workload(args) -> int:
    workload = generate_workload(
        WorkloadGeneratorConfig(query_count=args.queries, seed=args.seed)
    )
    workload.save(args.out)
    print(f"wrote {len(workload)} queries to {args.out}")
    return 0


def _cmd_stats(args) -> int:
    schema = load_schema(args.schema)
    workload = Workload.load(args.workload)
    statistics = preprocess_workload(
        workload, schema, PAPER_CONFIG.separation_intervals
    )
    print(
        format_table(
            ["Attribute", "NAttr(A)", "NAttr(A)/N"],
            [
                [name, count, f"{count / statistics.total_queries:.3f}"]
                for name, count in statistics.usage.as_rows()
            ],
            title=f"AttributeUsageCounts (N = {statistics.total_queries})",
        )
    )
    for attribute in schema.categorical_attributes():
        rows = statistics.occurrence_counts(attribute.name).as_rows()[: args.top]
        if not rows:
            continue
        print()
        print(
            format_table(
                ["Value", "occ(v)"],
                rows,
                title=f"OccurrenceCounts: {attribute.name} (top {args.top})",
            )
        )
    return 0


def _cmd_categorize(args) -> int:
    schema = load_schema(args.schema, table=args.table)
    table = read_csv(
        schema, args.data, backend=args.backend,
        backend_options=_backend_options(args),
    )
    workload = Workload.load(args.workload)
    config = CategorizerConfig(
        max_tuples_per_category=args.m,
        label_cost=args.k,
        elimination_threshold=args.x,
        bucket_count=args.buckets,
        separation_intervals=PAPER_CONFIG.separation_intervals,
    )
    statistics = preprocess_workload(workload, schema, config.separation_intervals)

    query = parse_query(args.query)
    rows = query.execute(table)
    print(f"result set: {len(rows)} of {len(table)} tuples")
    categorizer = TECHNIQUES[args.technique](statistics, config)
    tree = categorizer.categorize(rows, query, collect_trace=args.explain)
    print(summarize_tree(tree))
    print()
    print(render_tree(tree, max_depth=args.depth, max_children=args.children))

    model = CostModel(ProbabilityEstimator(statistics), config)
    print()
    print(f"estimated CostAll: {model.tree_cost_all(tree):.1f}")
    print(f"estimated CostOne: {model.tree_cost_one(tree):.1f}")
    print(f"uncategorized scan: {len(rows)}")
    if args.explain and tree.decision_trace is not None:
        print()
        print(tree.decision_trace.render())
    table.close()
    return 0


def _cmd_perf_report(args) -> int:
    schema = load_schema(args.schema)
    config = PAPER_CONFIG.with_overrides(max_tuples_per_category=args.m)
    perf.enable()
    try:
        if args.sample_rate is not None or args.sample_every is not None:
            perf.set_sampling(rate=args.sample_rate, every=args.sample_every)
        table = read_csv(
            schema, args.data, backend=args.backend,
            backend_options=_backend_options(args),
        )
        workload = Workload.load(args.workload)
        statistics = preprocess_workload(workload, schema, config.separation_intervals)
        query = parse_query(args.query)
        rows = query.execute(table)
        categorizer = TECHNIQUES[args.technique](statistics, config)
        tree = categorizer.categorize(rows, query)
        perf.gauge("categorize.result_size", len(rows))
        perf.gauge("categorize.tree_nodes", sum(1 for _ in tree.nodes()))
        if args.format == "prometheus":
            print(perf.export_prometheus(), end="")
        elif args.format == "jsonl":
            print(perf.export_jsonl(), end="")
        elif args.format == "json":
            print(perf.export_json(), end="")
        else:
            print(perf.format_report())
    finally:
        perf.clear_sampling()
        perf.reset()
        perf.disable()
    table.close()
    return 0


def _serve_descriptors(args):
    """Collect the dataset descriptors one ``repro serve`` should open.

    Three sources converge (catalog file, repeated ``--dataset`` flags,
    the legacy ``--data``/``--workload`` pair) and may be combined; the
    legacy pair becomes an ordinary descriptor named after its schema.
    """
    from repro.catalog import (
        DatasetDescriptor,
        load_catalog_file,
        parse_dataset_arg,
    )

    descriptors = []
    default = args.default_table
    if args.catalog is not None:
        from_file, file_default = load_catalog_file(args.catalog)
        descriptors.extend(from_file)
        if default is None:
            default = file_default
    for text in args.dataset or ():
        descriptors.append(parse_dataset_arg(text))
    if (args.data is None) != (args.workload is None):
        raise ValueError("--data and --workload go together")
    if args.data is not None:
        schema = load_schema(args.schema)
        descriptors.append(
            DatasetDescriptor(
                name=schema.name,
                source=args.data,
                workload=args.workload,
                schema=args.schema,
                backend=args.backend,
                workers=args.workers,
                technique=args.technique,
                lenient_csv=args.lenient_csv,
            )
        )
    if not descriptors:
        raise ValueError(
            "serve needs at least one relation: "
            "--data/--workload, --dataset NAME=SPEC, or --catalog TOML"
        )
    return descriptors, default


def _relation_summary(service) -> str:
    """One relation's banner fragment (rows, workload, boot story)."""
    health = service.health()
    durability = health["durability"]
    queries = service.store.pin().statistics.total_queries
    summary = (
        f"{service.name} ({health['table_rows']} rows, "
        f"{queries} workload queries)"
    )
    if durability["journal"]:
        boot = "warm" if durability["warm_start"] else "cold"
        summary += (
            f" [durable: {boot} boot, "
            f"journal seq {durability['journal_last_seq']}, "
            f"replayed {durability['replayed_on_boot']}]"
        )
    return summary


def _cmd_serve(args) -> int:
    from repro import telemetry
    from repro.catalog import open_catalog

    descriptors, default = _serve_descriptors(args)
    # Enabled before boot (not just before the first request) so recovery
    # metrics — journal.replayed, warmstart.fallback, serve.warm_start —
    # are visible on /metrics from the start.
    perf.enable()
    try:
        catalog = open_catalog(
            descriptors,
            default=default,
            state_root=args.warm_start,
            journal_fsync=args.journal_fsync,
            service_options=dict(
                batch_size=args.batch_size,
                cache_capacity=args.cache_size,
                cache_ttl_s=args.cache_ttl,
            ),
        )
    except BaseException:
        perf.disable()
        raise
    pipeline = None
    if args.telemetry_sink is not None:
        sink = telemetry.RotatingJsonlSink(
            args.telemetry_sink,
            max_bytes=args.telemetry_rotate_bytes,
            fsync_policy=args.telemetry_fsync,
        )
        pipeline = telemetry.install(
            telemetry.TelemetryPipeline(sink, sample_rate=args.telemetry_sample)
        )
    summaries = [_relation_summary(service) for service in catalog.services()]
    if len(summaries) == 1:
        banner = f"serving {summaries[0]}"
    else:
        banner = (
            f"serving {len(summaries)} relations "
            f"(default {catalog.default_name}): " + "; ".join(summaries)
        )
    if pipeline is not None:
        banner += (
            f" [telemetry -> {args.telemetry_sink}, "
            f"sample {args.telemetry_sample:g}]"
        )
    endpoints = (
        "endpoints: GET /healthz /metrics, "
        "POST /categorize /categorize_batch /record (table=...)"
    )
    try:
        if args.use_async:
            _serve_async(catalog, args, banner, endpoints)
        else:
            _serve_threading(catalog, args, banner, endpoints)
    finally:
        try:
            catalog.flush()
        except Exception as exc:  # a failed final publish must not mask exit
            print(f"warning: final flush failed: {exc}", file=sys.stderr)
        if args.warm_start is not None:
            # Graceful exit: snapshot each relation's final epoch and move
            # its journal watermark past it, so the next boot replays
            # nothing and a re-replay would be a no-op anyway.
            catalog.persist()
        if pipeline is not None:
            telemetry.uninstall()
            pipeline.close()  # drains the queue tail into the sink
        catalog.close()
        perf.disable()
    return 0


def _serve_threading(catalog, args, banner: str, endpoints: str) -> None:
    import signal
    import threading

    from repro.serving.http import drain, make_server

    server = make_server(catalog, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"{banner} on http://{host}:{port} [threading]")
    print(endpoints)
    terminated = threading.Event()

    def _on_sigterm(signum, frame):  # pragma: no cover - signal delivery
        if terminated.is_set():
            return
        terminated.set()
        # shutdown() blocks until the serve_forever loop exits; calling
        # it from the signal handler (which interrupts that very loop on
        # the main thread) would deadlock, so a helper thread does it.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        server.serve_forever()
        if terminated.is_set():
            print(f"draining (SIGTERM, grace {args.grace:g}s)")
            if not drain(server, grace_s=args.grace):
                print(
                    f"grace period expired with {server.inflight} "
                    "request(s) still in flight",
                    file=sys.stderr,
                )
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()


def _serve_async(catalog, args, banner: str, endpoints: str) -> None:
    import asyncio
    import contextlib
    import signal

    from repro.serving.aserve import AsyncFrontEnd

    async def main() -> None:
        frontend = AsyncFrontEnd(
            catalog, max_inflight=args.max_inflight, max_queue=args.max_queue
        )
        await frontend.start(args.host, args.port)
        host, port = frontend.address
        print(
            f"{banner} on http://{host}:{port} "
            f"[async, max-inflight {args.max_inflight}, "
            f"max-queue {args.max_queue}]"
        )
        print(endpoints)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        except NotImplementedError:  # pragma: no cover - non-Unix loops
            pass
        try:
            stopper = asyncio.ensure_future(stop.wait())
            server_task = asyncio.ensure_future(frontend.serve_forever())
            await asyncio.wait(
                (stopper, server_task), return_when=asyncio.FIRST_COMPLETED
            )
            server_task.cancel()
            stopper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await server_task  # re-raise a real serve_forever failure
            if stop.is_set():
                print(f"draining (SIGTERM, grace {args.grace:g}s)")
                if not await frontend.drain(args.grace):
                    print(
                        "grace period expired with requests still in flight",
                        file=sys.stderr,
                    )
        finally:
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.remove_signal_handler(signal.SIGTERM)
            await frontend.close()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("shutting down")


def _error_line(body: str) -> str:
    """``code: message`` from a wire error envelope; the raw body otherwise."""
    try:
        error = json.loads(body)["error"]
        return f"{error['code']}: {error['message']}"
    except (ValueError, KeyError, TypeError):
        return body.strip()


def _cmd_request(args) -> int:
    import http.client
    import time
    from urllib.parse import quote, urlsplit

    base = args.url.rstrip("/")
    if args.health or args.metrics:
        method, path, body = "GET", "/healthz" if args.health else "/metrics", None
        if args.table is not None:
            path += f"?table={quote(args.table)}"
    elif args.batch:
        payload: dict = {
            "sqls": list(args.batch),
            "deadline_ms": args.deadline_ms,
            "budget": args.budget,
            "render": args.render,
            "trace": args.trace,
        }
        if args.table is not None:
            payload["table"] = args.table
        method, path, body = "POST", "/categorize_batch", json.dumps(payload)
    elif args.sql:
        path = "/record" if args.record else "/categorize"
        payload = {"sql": args.sql}
        if args.table is not None:
            payload["table"] = args.table
        if not args.record:
            payload.update(
                deadline_ms=args.deadline_ms,
                budget=args.budget,
                render=args.render,
                trace=args.trace,
            )
        method, body = "POST", json.dumps(payload)
    else:
        print("error: need --sql, --batch, --health, or --metrics", file=sys.stderr)
        return 2
    if args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 2

    from repro.serving.loadgen import connect_with_retry

    # One keep-alive connection for every repeat: each extra request costs
    # a round trip, not a TCP handshake (the async server is built around
    # exactly this reuse).  The connect retries brief refusals so a client
    # launched next to `repro serve` does not lose the startup race.
    parts = urlsplit(base if "//" in base else f"http://{base}")
    try:
        connection = connect_with_retry(
            parts.hostname or "127.0.0.1", parts.port or 80, timeout_s=30
        )
    except OSError as exc:
        print(f"error: cannot reach {base}: {exc}", file=sys.stderr)
        return 2
    headers = {"Content-Type": "application/json"} if body is not None else {}
    latencies_ms: list[float] = []
    failures = 0
    last_status, last_payload = 0, ""
    try:
        for _ in range(args.repeat):
            started = time.perf_counter()
            try:
                connection.request(method, path, body, headers)
                response = connection.getresponse()
                last_payload = response.read().decode("utf-8")
            except (OSError, http.client.HTTPException) as exc:
                print(f"error: cannot reach {base}: {exc}", file=sys.stderr)
                return 2
            latencies_ms.append((time.perf_counter() - started) * 1000.0)
            last_status = response.status
            if last_status >= 400:
                failures += 1
    finally:
        connection.close()

    if args.repeat == 1:
        if last_status >= 400:
            print(_error_line(last_payload), file=sys.stderr)
            return 2
        print(last_payload, end="")
        return 0

    from repro.serving.loadgen import percentile

    ordered = sorted(latencies_ms)
    print(
        f"{args.repeat} requests to {path} over one keep-alive connection: "
        f"{args.repeat - failures} ok, {failures} failed"
    )
    print(
        f"latency ms: min {ordered[0]:.2f}  p50 "
        f"{percentile(latencies_ms, 0.5):.2f}  p99 "
        f"{percentile(latencies_ms, 0.99):.2f}  max {ordered[-1]:.2f}"
    )
    if last_status >= 400:
        print(f"last error ({last_status}):")
        print(_error_line(last_payload), file=sys.stderr)
    else:
        print(f"last response ({last_status}):")
        print(last_payload, end="")
    return 2 if failures else 0


def _cmd_audit(args) -> int:
    from repro.telemetry.audit import (
        audit_files,
        diff_reports,
        format_diff,
        format_report,
    )

    report = audit_files(args.events, table=args.table)
    diff = None
    if args.diff:
        diff = diff_reports(report, audit_files(args.diff, table=args.table))
    if args.format == "json":
        document = {"report": report}
        if diff is not None:
            document["diff"] = diff
        print(json.dumps(document, indent=2))
    else:
        print(format_report(report))
        if diff is not None:
            print()
            print(format_diff(diff))
    if args.strict and (report["partial"] or report["orphaned_events"]):
        print(
            f"strict: {report['partial']} partial trace(s), "
            f"{report['orphaned_events']} orphaned event(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_loadgen(args) -> int:
    from repro.serving.loadgen import DEFAULT_MIX, run_loadgen

    report = run_loadgen(
        args.url,
        sqls=args.sql or DEFAULT_MIX,
        clients=args.clients,
        requests_per_client=args.requests,
        deadline_ms=args.deadline_ms,
        budget=args.budget,
        timeout_s=args.timeout,
        table=args.table,
    )
    if args.as_json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        statuses = ", ".join(
            f"{status}: {count}"
            for status, count in sorted(report.status_counts.items())
        ) or "none"
        rungs = ", ".join(
            f"{rung}: {count}" for rung, count in sorted(report.rung_counts.items())
        ) or "none"
        error_codes = ", ".join(
            f"{code}: {count}"
            for code, count in sorted(report.error_code_counts.items())
        ) or "none"
        title = f"loadgen: {args.url}"
        if args.table is not None:
            title += f" (table {args.table})"
        print(
            format_table(
                ["metric", "value"],
                [
                    ["clients (closed loop)", report.clients],
                    ["requests sent", report.requests],
                    ["responses", report.responses],
                    ["transport errors", report.errors],
                    ["elapsed s", f"{report.elapsed_s:.3f}"],
                    ["throughput req/s", f"{report.throughput_rps:.1f}"],
                    ["latency p50 ms", f"{report.p50_ms:.2f}"],
                    ["latency p99 ms", f"{report.p99_ms:.2f}"],
                    ["statuses", statuses],
                    ["rungs", rungs],
                    ["error codes", error_codes],
                    ["coalesced responses", report.coalesced],
                    ["shed (503)", report.shed],
                ],
                title=title,
            )
        )
    if report.client_errors:
        for code, message in sorted(report.error_examples.items()):
            print(f"{code}: {message}" if message else code, file=sys.stderr)
    # A response for every request (503s included) is the contract: a
    # transport error means a request went unanswered, and a 4xx means
    # the run itself was misdirected (bad table, bad SQL).  Shed 503s
    # stay an expected answer under overload.
    return (
        1
        if report.errors
        or report.responses < report.requests
        or report.client_errors
        else 0
    )


def load_schema(path: Path | None, table: str | None = None) -> TableSchema:
    """Resolve a schema: JSON file, built-in by ``table`` name, or ListProperty.

    ``table`` picks a built-in schema (ListProperty, Movies) when no file
    is given, and cross-checks the file's table name when one is.
    """
    if path is None:
        if table is not None:
            from repro.catalog.descriptor import BUILTIN_SCHEMAS

            if table not in BUILTIN_SCHEMAS:
                raise ValueError(
                    f"no built-in schema named {table!r}; choose from "
                    f"{sorted(BUILTIN_SCHEMAS)} or pass --schema"
                )
            return BUILTIN_SCHEMAS[table]()
        return list_property_schema()
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    attributes = []
    for spec in payload["attributes"]:
        kind = spec.get("kind")
        attributes.append(
            Attribute(
                spec["name"],
                DataType(spec["type"]),
                AttributeKind(kind) if kind else None,
            )
        )
    schema = TableSchema(payload["name"], tuple(attributes))
    if table is not None and schema.name != table:
        raise ValueError(
            f"--table {table!r} does not match the schema's table "
            f"{schema.name!r}"
        )
    return schema


if __name__ == "__main__":
    raise SystemExit(main())
