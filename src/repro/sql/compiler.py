"""Compile parsed SQL statements into relational-engine queries.

Bridges :mod:`repro.sql` (syntax) and :mod:`repro.relational` (semantics):
each AST condition becomes the corresponding predicate object, BETWEEN
becoming an inclusive range (the paper's ``vmin <= A <= vmax`` form).
"""

from __future__ import annotations

from repro import perf
from repro.relational.expressions import (
    ComparisonPredicate,
    Conjunction,
    InPredicate,
    Predicate,
    RangePredicate,
    TruePredicate,
)
from repro.relational.query import SelectQuery
from repro.sql.ast_nodes import (
    BetweenCondition,
    ComparisonCondition,
    Condition,
    InCondition,
    SelectStatement,
)
from repro.sql.errors import SqlError
from repro.sql.parser import parse


def compile_statement(statement: SelectStatement) -> SelectQuery:
    """Convert a parsed statement into an executable :class:`SelectQuery`."""
    predicates = [compile_condition(c) for c in statement.conditions]
    predicate: Predicate
    if not predicates:
        predicate = TruePredicate()
    elif len(predicates) == 1:
        predicate = predicates[0]
    else:
        predicate = Conjunction(predicates)
    return SelectQuery(
        table_name=statement.table,
        predicate=predicate,
        projection=statement.columns,
    )


def compile_condition(condition: Condition) -> Predicate:
    """Convert one AST condition into a relational predicate.

    Raises:
        SqlError: for literals the target predicate cannot represent (e.g.
            a non-numeric BETWEEN bound) and for condition node types this
            compiler does not know — one error type for the whole pipeline,
            with the offending condition as the snippet.
    """
    if isinstance(condition, InCondition):
        return InPredicate(condition.attribute, condition.values)
    if isinstance(condition, BetweenCondition):
        try:
            low, high = float(condition.low), float(condition.high)
        except (TypeError, ValueError):
            raise SqlError(
                f"BETWEEN bounds on {condition.attribute!r} must be numeric",
                snippet=str(condition),
            ) from None
        return RangePredicate(
            condition.attribute, low, high, high_inclusive=True
        )
    if isinstance(condition, ComparisonCondition):
        return ComparisonPredicate(condition.attribute, condition.op, condition.value)
    raise SqlError(
        f"unknown condition node {type(condition).__name__}",
        snippet=str(condition),
    )


def parse_query(source: str) -> SelectQuery:
    """Parse and compile a SQL string in one step.

    This is the entry point the workload loader uses: each logged query
    string becomes a :class:`SelectQuery` whose normalized conditions feed
    the count tables of Section 4.2.
    """
    perf.count("sql.queries_parsed")
    with perf.span("sql.compile"):
        return compile_statement(parse(source))
