"""Compile parsed SQL statements into relational-engine queries.

Bridges :mod:`repro.sql` (syntax) and :mod:`repro.relational` (semantics):
each AST condition becomes the corresponding predicate object, BETWEEN
becoming an inclusive range (the paper's ``vmin <= A <= vmax`` form).
"""

from __future__ import annotations

from repro import perf
from repro.relational.expressions import (
    ComparisonPredicate,
    Conjunction,
    InPredicate,
    Predicate,
    RangePredicate,
    TruePredicate,
)
from repro.relational.query import SelectQuery
from repro.sql.ast_nodes import (
    BetweenCondition,
    ComparisonCondition,
    Condition,
    InCondition,
    SelectStatement,
)
from repro.sql.parser import parse


def compile_statement(statement: SelectStatement) -> SelectQuery:
    """Convert a parsed statement into an executable :class:`SelectQuery`."""
    predicates = [compile_condition(c) for c in statement.conditions]
    predicate: Predicate
    if not predicates:
        predicate = TruePredicate()
    elif len(predicates) == 1:
        predicate = predicates[0]
    else:
        predicate = Conjunction(predicates)
    return SelectQuery(
        table_name=statement.table,
        predicate=predicate,
        projection=statement.columns,
    )


def compile_condition(condition: Condition) -> Predicate:
    """Convert one AST condition into a relational predicate.

    Raises:
        TypeError: for condition node types this compiler does not know
            (a safeguard against silently dropping future grammar additions).
    """
    if isinstance(condition, InCondition):
        return InPredicate(condition.attribute, condition.values)
    if isinstance(condition, BetweenCondition):
        return RangePredicate(
            condition.attribute,
            float(condition.low),
            float(condition.high),
            high_inclusive=True,
        )
    if isinstance(condition, ComparisonCondition):
        return ComparisonPredicate(condition.attribute, condition.op, condition.value)
    raise TypeError(f"unknown condition node {type(condition).__name__}")


def parse_query(source: str) -> SelectQuery:
    """Parse and compile a SQL string in one step.

    This is the entry point the workload loader uses: each logged query
    string becomes a :class:`SelectQuery` whose normalized conditions feed
    the count tables of Section 4.2.
    """
    perf.count("sql.queries_parsed")
    with perf.span("sql.compile"):
        return compile_statement(parse(source))
