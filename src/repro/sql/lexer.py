"""Tokenizer for the workload SQL dialect."""

from __future__ import annotations

from repro import perf
from repro.sql.errors import SqlError, SqlSyntaxError
from repro.sql.tokens import KEYWORDS, OPERATORS, Token, TokenType

__all__ = ["SqlError", "SqlSyntaxError", "tokenize"]


def tokenize(source: str) -> list[Token]:
    """Tokenize a SQL string into a Token list ending with an EOF token.

    Identifiers may be bare or double-quoted (quoting permits spaces, as in
    neighborhood names like ``"Queen Anne"``).  String literals use single
    quotes with ``''`` escaping.  Numbers may be integers, decimals, or use
    a trailing ``K``/``M`` multiplier as real-estate logs commonly do
    (``250K`` == 250000).

    Raises:
        SqlError: on any character sequence outside the dialect.
    """
    with perf.span("sql.lex"):
        return _tokenize(source)


def _tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch == ",":
            tokens.append(Token(TokenType.COMMA, ",", i))
            i += 1
            continue
        if ch == "(":
            tokens.append(Token(TokenType.LPAREN, "(", i))
            i += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenType.RPAREN, ")", i))
            i += 1
            continue
        if ch == "*":
            tokens.append(Token(TokenType.STAR, "*", i))
            i += 1
            continue
        if ch == "'":
            literal, i = _read_string(source, i)
            tokens.append(Token(TokenType.STRING, literal, i))
            continue
        if ch == '"':
            name, i = _read_quoted_identifier(source, i)
            tokens.append(Token(TokenType.IDENTIFIER, name, i))
            continue
        operator = _match_operator(source, i)
        if operator is not None:
            tokens.append(Token(TokenType.OPERATOR, operator, i))
            i += len(operator)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and source[i + 1].isdigit()):
            number, i = _read_number(source, i)
            tokens.append(Token(TokenType.NUMBER, number, i))
            continue
        if ch.isalpha() or ch == "_":
            word, i = _read_word(source, i)
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, i))
            continue
        raise SqlError(f"unexpected character {ch!r}", i, source)
    tokens.append(Token(TokenType.EOF, None, length))
    return tokens


def _read_string(source: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string literal starting at ``start``."""
    i = start + 1
    pieces: list[str] = []
    while i < len(source):
        ch = source[i]
        if ch == "'":
            if i + 1 < len(source) and source[i + 1] == "'":
                pieces.append("'")
                i += 2
                continue
            return "".join(pieces), i + 1
        pieces.append(ch)
        i += 1
    raise SqlError("unterminated string literal", start, source)


def _read_quoted_identifier(source: str, start: int) -> tuple[str, int]:
    """Read a double-quoted identifier starting at ``start``."""
    end = source.find('"', start + 1)
    if end < 0:
        raise SqlError("unterminated quoted identifier", start, source)
    return source[start + 1 : end], end + 1


def _match_operator(source: str, position: int) -> str | None:
    """Return the operator starting at ``position``, if any (longest match)."""
    for operator in OPERATORS:
        if source.startswith(operator, position):
            return operator
    return None


def _read_number(source: str, start: int) -> tuple[float | int, int]:
    """Read a numeric literal, supporting K/M suffix multipliers."""
    i = start
    seen_dot = False
    while i < len(source) and (source[i].isdigit() or (source[i] == "." and not seen_dot)):
        if source[i] == ".":
            seen_dot = True
        i += 1
    text = source[start:i]
    multiplier = 1
    if i < len(source) and source[i] in "kKmM":
        multiplier = 1_000 if source[i] in "kK" else 1_000_000
        i += 1
    if seen_dot:
        return float(text) * multiplier, i
    return int(text) * multiplier, i


def _read_word(source: str, start: int) -> tuple[str, int]:
    """Read a bare identifier or keyword starting at ``start``."""
    i = start
    while i < len(source) and (source[i].isalnum() or source[i] == "_"):
        i += 1
    return source[start:i], i
