"""SQL dialect for workload logs: lexer, parser, compiler, formatter.

The paper's preprocessor consumes "the log of SQL query strings" (Section
4.2).  This package parses that dialect — conjunctive SELECT statements with
IN / BETWEEN / comparison conditions — and compiles it onto the relational
engine, plus the inverse (formatting queries back to strings) so synthetic
workloads round-trip through the same text representation as real logs.
"""

from repro.sql.ast_nodes import (
    BetweenCondition,
    ComparisonCondition,
    Condition,
    InCondition,
    SelectStatement,
)
from repro.sql.compiler import compile_condition, compile_statement, parse_query
from repro.sql.errors import SqlError, SqlSyntaxError
from repro.sql.formatter import format_literal, format_predicate, format_query
from repro.sql.lexer import tokenize
from repro.sql.parser import parse

__all__ = [
    "BetweenCondition",
    "ComparisonCondition",
    "Condition",
    "InCondition",
    "SelectStatement",
    "SqlError",
    "SqlSyntaxError",
    "compile_condition",
    "compile_statement",
    "format_literal",
    "format_predicate",
    "format_query",
    "parse",
    "parse_query",
    "tokenize",
]
