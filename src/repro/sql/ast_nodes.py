"""Abstract syntax tree for the workload SQL dialect.

The AST mirrors the restricted grammar the workload preprocessor needs:
a select list, a single FROM table, and a conjunction of per-attribute
conditions (IN lists, BETWEEN ranges, comparisons).  Compilation to the
relational engine's predicate objects lives in :mod:`repro.sql.compiler`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


class Condition:
    """Base class for WHERE-clause condition nodes."""

    attribute: str


@dataclass(frozen=True)
class InCondition(Condition):
    """``attribute IN (v1, v2, ...)``."""

    attribute: str
    values: tuple[Any, ...]

    def __str__(self) -> str:
        return f"{self.attribute} IN ({', '.join(map(repr, self.values))})"


@dataclass(frozen=True)
class BetweenCondition(Condition):
    """``attribute BETWEEN low AND high`` (both bounds inclusive)."""

    attribute: str
    low: Any
    high: Any

    def __str__(self) -> str:
        return f"{self.attribute} BETWEEN {self.low!r} AND {self.high!r}"


@dataclass(frozen=True)
class ComparisonCondition(Condition):
    """``attribute op literal`` for op in =, !=, <, <=, >, >=."""

    attribute: str
    op: str
    value: Any

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT statement.

    Attributes:
        columns: projected attribute names, or None for ``SELECT *``.
        table: the FROM table name.
        conditions: conjunctive WHERE conditions in source order.
    """

    columns: tuple[str, ...] | None
    table: str
    conditions: tuple[Condition, ...]

    def condition_attributes(self) -> tuple[str, ...]:
        """Attribute names constrained by the WHERE clause, in source order."""
        seen: list[str] = []
        for condition in self.conditions:
            if condition.attribute not in seen:
                seen.append(condition.attribute)
        return tuple(seen)

    def __str__(self) -> str:
        columns = "*" if self.columns is None else ", ".join(self.columns)
        where = (
            "" if not self.conditions
            else " WHERE " + " AND ".join(str(c) for c in self.conditions)
        )
        return f"SELECT {columns} FROM {self.table}{where}"
