"""Token model for the workload SQL dialect.

The workload logs the paper consumes are plain SQL SELECT strings with
conjunctive WHERE clauses (Section 4.2, footnote 6).  The dialect we accept
covers what such logs contain: identifiers, string/number literals,
comparison operators, ``IN`` lists, ``BETWEEN``, and ``AND``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TokenType(enum.Enum):
    """Lexical categories of the workload SQL dialect."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    COMMA = "comma"
    LPAREN = "lparen"
    RPAREN = "rparen"
    STAR = "star"
    EOF = "eof"


#: Keywords recognized case-insensitively by the lexer.
KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "AND",
        "IN",
        "BETWEEN",
        "NOT",
        "ORDER",
        "BY",
        "ASC",
        "DESC",
        "LIMIT",
    }
)

#: Comparison operators, longest first so the lexer can match greedily.
OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    value: Any
    position: int

    def is_keyword(self, word: str) -> bool:
        """True if this token is the (case-normalized) keyword ``word``."""
        return self.type is TokenType.KEYWORD and self.value == word.upper()

    def __str__(self) -> str:
        if self.type is TokenType.EOF:
            return "<end of input>"
        return repr(str(self.value))
