"""The single SQL error type: every lexer/parser/compiler failure.

Before this module existed the dialect raised heterogeneous exceptions —
:class:`SqlSyntaxError` from the lexer and parser, bare ``ValueError`` /
``TypeError`` from the compiler's literal coercions — which forced every
caller (the workload loader, the serving layer) to guess at what could
escape a parse.  Now everything syntactic or semantic about one SQL
string raises :class:`SqlError`, which always carries the character
position and the offending source snippet so errors can be surfaced to
users ("near ``WHERE price >>``") instead of as bare messages.

``SqlError`` subclasses ``ValueError`` so existing ``except ValueError``
call sites keep working; :data:`SqlSyntaxError` remains as an alias for
backward compatibility.
"""

from __future__ import annotations

#: Characters of source kept on each side of the error position.
SNIPPET_CONTEXT = 20


class SqlError(ValueError):
    """A malformed workload SQL string, with location and snippet.

    Attributes:
        position: character offset of the error in the source string, or
            ``None`` when the failing stage had no token position (e.g.
            literal coercion during compilation).
        snippet: the slice of source text around the error — what a user
            interface would underline.
        source: the full offending SQL string, when available.
    """

    def __init__(
        self,
        message: str,
        position: int | None = None,
        source: str | None = None,
        snippet: str | None = None,
    ) -> None:
        if snippet is None and source is not None:
            anchor = position if position is not None else 0
            snippet = source[
                max(0, anchor - SNIPPET_CONTEXT) : anchor + SNIPPET_CONTEXT
            ]
        located = message
        if position is not None:
            located = f"{located} at position {position}"
        if snippet:
            located = f"{located} (near {snippet!r})"
        super().__init__(located)
        self.position = position
        self.snippet = snippet
        self.source = source


#: Backward-compatible name: the lexer and parser historically raised
#: ``SqlSyntaxError``; it is the same class now.
SqlSyntaxError = SqlError
