"""Recursive-descent parser for the workload SQL dialect.

Grammar (conjunctive SPJ selections, footnote 6 of the paper)::

    statement   := SELECT select_list FROM identifier [WHERE conjunction]
                   [ORDER BY identifier [ASC|DESC]] [LIMIT number]
    select_list := '*' | identifier (',' identifier)*
    conjunction := condition (AND condition)*
    condition   := identifier IN '(' literal (',' literal)* ')'
                 | identifier BETWEEN literal AND literal
                 | identifier op literal
    op          := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
    literal     := number | string

ORDER BY / LIMIT clauses appear in real search logs; they are parsed and
discarded because the paper's statistics use only selection conditions.
"""

from __future__ import annotations

from typing import Any

from repro import perf
from repro.sql.ast_nodes import (
    BetweenCondition,
    ComparisonCondition,
    Condition,
    InCondition,
    SelectStatement,
)
from repro.sql.errors import SqlError
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenType


def parse(source: str) -> SelectStatement:
    """Parse one SQL SELECT string into a :class:`SelectStatement`.

    Raises:
        SqlError: on any deviation from the dialect grammar.
    """
    with perf.span("sql.parse"):
        return _Parser(source).parse_statement()


class _Parser:
    """Single-use recursive-descent parser over a token list."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._tokens = tokenize(source)
        self._position = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._position += 1
        return token

    def _expect_keyword(self, word: str) -> None:
        if not self._current.is_keyword(word):
            self._fail(f"expected {word}")
        self._advance()

    def _expect(self, token_type: TokenType) -> Token:
        if self._current.type is not token_type:
            self._fail(f"expected {token_type.value}")
        return self._advance()

    def _fail(self, message: str) -> None:
        token = self._current
        raise SqlError(f"{message}, found {token}", token.position, self._source)

    # -- grammar productions ---------------------------------------------------

    def parse_statement(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        columns = self._parse_select_list()
        self._expect_keyword("FROM")
        table = str(self._expect(TokenType.IDENTIFIER).value)
        conditions: tuple[Condition, ...] = ()
        if self._current.is_keyword("WHERE"):
            self._advance()
            conditions = self._parse_conjunction()
        self._skip_order_by()
        self._skip_limit()
        if self._current.type is not TokenType.EOF:
            self._fail("unexpected trailing input")
        return SelectStatement(columns=columns, table=table, conditions=conditions)

    def _parse_select_list(self) -> tuple[str, ...] | None:
        if self._current.type is TokenType.STAR:
            self._advance()
            return None
        names = [str(self._expect(TokenType.IDENTIFIER).value)]
        while self._current.type is TokenType.COMMA:
            self._advance()
            names.append(str(self._expect(TokenType.IDENTIFIER).value))
        return tuple(names)

    def _parse_conjunction(self) -> tuple[Condition, ...]:
        conditions = [self._parse_condition()]
        while self._current.is_keyword("AND"):
            self._advance()
            conditions.append(self._parse_condition())
        return tuple(conditions)

    def _parse_condition(self) -> Condition:
        attribute = str(self._expect(TokenType.IDENTIFIER).value)
        token = self._current
        if token.is_keyword("IN"):
            self._advance()
            return self._parse_in_tail(attribute)
        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._parse_literal()
            self._expect_keyword("AND")
            high = self._parse_literal()
            return BetweenCondition(attribute=attribute, low=low, high=high)
        if token.type is TokenType.OPERATOR:
            op = str(self._advance().value)
            if op == "<>":
                op = "!="
            return ComparisonCondition(
                attribute=attribute, op=op, value=self._parse_literal()
            )
        self._fail("expected IN, BETWEEN, or a comparison operator")
        raise AssertionError("unreachable")

    def _parse_in_tail(self, attribute: str) -> InCondition:
        self._expect(TokenType.LPAREN)
        values = [self._parse_literal()]
        while self._current.type is TokenType.COMMA:
            self._advance()
            values.append(self._parse_literal())
        self._expect(TokenType.RPAREN)
        return InCondition(attribute=attribute, values=tuple(values))

    def _parse_literal(self) -> Any:
        token = self._current
        if token.type in (TokenType.NUMBER, TokenType.STRING):
            return self._advance().value
        self._fail("expected a literal")
        raise AssertionError("unreachable")

    # -- discarded clauses -------------------------------------------------------

    def _skip_order_by(self) -> None:
        if not self._current.is_keyword("ORDER"):
            return
        self._advance()
        self._expect_keyword("BY")
        self._expect(TokenType.IDENTIFIER)
        if self._current.is_keyword("ASC") or self._current.is_keyword("DESC"):
            self._advance()

    def _skip_limit(self) -> None:
        if not self._current.is_keyword("LIMIT"):
            return
        self._advance()
        self._expect(TokenType.NUMBER)
