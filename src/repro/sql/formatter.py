"""Render queries back to SQL strings.

The workload generator produces :class:`~repro.relational.query.SelectQuery`
objects but the paper's pipeline consumes *logged SQL strings* ("our
technique only requires the log of SQL query strings as input", Section
4.2).  This formatter closes the loop: generated queries are serialized to
SQL, written to a log file, and re-parsed by :func:`repro.sql.parse_query`
— so the preprocessor genuinely exercises the string pathway end to end.
"""

from __future__ import annotations

import math
from typing import Any

from repro.relational.expressions import (
    ComparisonPredicate,
    Conjunction,
    InPredicate,
    Predicate,
    RangePredicate,
    TruePredicate,
)
from repro.relational.query import SelectQuery


def format_query(query: SelectQuery) -> str:
    """Serialize a query as a SQL string parseable by :mod:`repro.sql`."""
    columns = "*" if query.projection is None else ", ".join(query.projection)
    sql = f"SELECT {columns} FROM {query.table_name}"
    where = format_predicate(query.predicate)
    if where:
        sql += f" WHERE {where}"
    return sql


def format_predicate(predicate: Predicate) -> str:
    """Serialize a predicate as a SQL WHERE-clause body ('' for TRUE)."""
    if isinstance(predicate, TruePredicate):
        return ""
    if isinstance(predicate, Conjunction):
        parts = [format_predicate(p) for p in predicate]
        return " AND ".join(part for part in parts if part)
    if isinstance(predicate, InPredicate):
        values = ", ".join(format_literal(v) for v in sorted(predicate.values, key=repr))
        return f"{predicate.attribute} IN ({values})"
    if isinstance(predicate, RangePredicate):
        return _format_range(predicate)
    if isinstance(predicate, ComparisonPredicate):
        return (
            f"{predicate.attribute} {predicate.op} {format_literal(predicate.value)}"
        )
    raise TypeError(f"cannot format predicate {type(predicate).__name__}")


def format_literal(value: Any) -> str:
    """Serialize a literal: numbers bare, strings single-quoted with escaping."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return str(int(value)) if value.is_integer() else repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def _format_range(predicate: RangePredicate) -> str:
    """Render a range; one-sided ranges become single comparisons."""
    low_finite = not math.isinf(predicate.low)
    high_finite = not math.isinf(predicate.high)
    upper_op = "<=" if predicate.high_inclusive else "<"
    if low_finite and high_finite:
        if predicate.high_inclusive:
            return (
                f"{predicate.attribute} BETWEEN "
                f"{format_literal(predicate.low)} AND {format_literal(predicate.high)}"
            )
        return (
            f"{predicate.attribute} >= {format_literal(predicate.low)} "
            f"AND {predicate.attribute} < {format_literal(predicate.high)}"
        )
    if low_finite:
        return f"{predicate.attribute} >= {format_literal(predicate.low)}"
    if high_finite:
        return f"{predicate.attribute} {upper_op} {format_literal(predicate.high)}"
    return ""
