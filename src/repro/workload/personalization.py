"""Personalized workload statistics (the paper's footnote 4).

"We can get some of this knowledge by observing past behavior of this
particular user (known as 'personalization').  We do not pursue that
direction in this paper."  This module pursues it: a user's own query
history is blended into the global workload before preprocessing, so the
probabilities ``P(C)`` / ``Pw(C)`` — and therefore the generated tree —
tilt toward that user's demonstrated interests.

The blend is a weighted union: each personal query counts as
``personal_weight`` global queries.  Because every count table (NAttr,
occ, splitpoints, range index) is additive over queries, replicating the
personal queries reproduces exact fractional weighting whenever
``personal_weight`` is an integer, with no changes to the count-table
machinery.
"""

from __future__ import annotations

from repro.relational.schema import TableSchema
from repro.workload.log import Workload
from repro.workload.model import WorkloadQuery
from repro.workload.preprocess import WorkloadStatistics, preprocess_workload


def blend_workloads(
    global_workload: Workload,
    personal_history: Workload,
    personal_weight: int = 1,
) -> Workload:
    """Union the global log with a user's history at integer weight.

    ``personal_weight`` expresses how many anonymous users one personal
    query should outweigh; the useful range depends on the global log's
    size (a weight of N/|history|·α gives the history an α share of every
    count).

    Raises:
        ValueError: for non-positive weights.
    """
    if personal_weight < 1:
        raise ValueError(f"personal_weight must be >= 1, got {personal_weight}")
    queries: list[WorkloadQuery] = list(global_workload)
    for query in personal_history:
        queries.extend([query] * personal_weight)
    return Workload(queries)


def personal_share(
    global_workload: Workload, personal_history: Workload, personal_weight: int
) -> float:
    """Fraction of the blended workload contributed by the user's history."""
    personal = len(personal_history) * personal_weight
    total = len(global_workload) + personal
    if total == 0:
        return 0.0
    return personal / total


def personalized_statistics(
    global_workload: Workload,
    personal_history: Workload,
    schema: TableSchema,
    separation_intervals=None,
    personal_weight: int = 1,
) -> WorkloadStatistics:
    """Build count tables from the blended workload in one call.

    A convenience wrapper over :func:`blend_workloads` +
    :func:`repro.workload.preprocess.preprocess_workload`.
    """
    blended = blend_workloads(global_workload, personal_history, personal_weight)
    return preprocess_workload(blended, schema, separation_intervals)


def weight_for_share(
    global_workload: Workload, personal_history: Workload, share: float
) -> int:
    """Smallest integer weight giving the history at least ``share`` of counts.

    Raises:
        ValueError: if the history is empty or the share is not in (0, 1).
    """
    if not 0.0 < share < 1.0:
        raise ValueError(f"share must be in (0, 1), got {share}")
    if len(personal_history) == 0:
        raise ValueError("personal history is empty")
    # share <= h*w / (g + h*w)  <=>  w >= share*g / (h*(1-share))
    needed = share * len(global_workload) / (len(personal_history) * (1.0 - share))
    return max(1, int(needed) + (0 if needed == int(needed) else 1))
