"""Workload substrate: query logs, count tables, preprocessing, generation.

Implements paper Section 4.2's statistics pipeline — "our technique only
requires the log of SQL query strings as input" — plus the synthetic
workload generator standing in for the proprietary MSN logs and the
query-broadening strategies of the simulated study (Section 6.2).
"""

from repro.workload.broadening import (
    STRATEGIES,
    BroadeningStrategy,
    broaden_drop_all_but_location,
    broaden_to_region,
    broaden_widen_price,
)
from repro.workload.counts import (
    AttributeUsageCounts,
    OccurrenceCounts,
    RangeIndex,
    SplitPointRow,
    SplitPointsTable,
)
from repro.workload.generator import (
    DEFAULT_ATTRIBUTE_USAGE,
    WorkloadGeneratorConfig,
    build_paper_scale_workload,
    generate_workload,
)
from repro.workload.log import Workload
from repro.workload.model import WorkloadQuery
from repro.workload.personalization import (
    blend_workloads,
    personal_share,
    personalized_statistics,
    weight_for_share,
)
from repro.workload.preprocess import (
    DEFAULT_SEPARATION_INTERVAL,
    WorkloadStatistics,
    preprocess_workload,
)

__all__ = [
    "AttributeUsageCounts",
    "BroadeningStrategy",
    "DEFAULT_ATTRIBUTE_USAGE",
    "DEFAULT_SEPARATION_INTERVAL",
    "OccurrenceCounts",
    "RangeIndex",
    "STRATEGIES",
    "SplitPointRow",
    "SplitPointsTable",
    "Workload",
    "WorkloadGeneratorConfig",
    "WorkloadQuery",
    "WorkloadStatistics",
    "blend_workloads",
    "broaden_drop_all_but_location",
    "broaden_to_region",
    "broaden_widen_price",
    "build_paper_scale_workload",
    "generate_workload",
    "personal_share",
    "personalized_statistics",
    "preprocess_workload",
    "weight_for_share",
]
