"""Query broadening for the simulated user study (Section 6.2).

The simulated study treats a held-out workload query ``W`` as a *synthetic
exploration* and derives the user query ``Qw`` (for which the tree is
built) by broadening ``W`` so that the tree subsumes the exploration: "we
broaden W by expanding the set of neighborhoods in W to all neighborhoods
in the region ... and removing all other selection conditions".  The paper
notes other broadening strategies gave similar results; two alternatives
are provided for that ablation.
"""

from __future__ import annotations

import math
from typing import Callable, Protocol

from repro.data.geography import ALL_REGIONS, Region, region_of_neighborhood
from repro.relational.expressions import (
    Conjunction,
    InPredicate,
    Predicate,
    RangePredicate,
    TruePredicate,
)
from repro.relational.query import SelectQuery
from repro.workload.model import WorkloadQuery


class BroadeningStrategy(Protocol):
    """A function deriving the user query Qw from a synthetic exploration W."""

    def __call__(self, exploration: WorkloadQuery) -> WorkloadQuery: ...


def broaden_to_region(exploration: WorkloadQuery) -> WorkloadQuery:
    """The paper's strategy: expand neighborhoods to the region, drop the rest.

    If ``W`` has no neighborhood condition, its first region-identifying
    condition (city) is expanded instead; failing that, the broadened query
    covers the most-weighted region — the tree must subsume the exploration
    somehow, and an all-US tree would be a different experiment.
    """
    region = _region_of(exploration)
    predicate = InPredicate("neighborhood", region.neighborhood_names())
    query = SelectQuery(
        table_name=exploration.query.table_name, predicate=predicate
    )
    return WorkloadQuery.from_query(query)


def broaden_widen_price(exploration: WorkloadQuery) -> WorkloadQuery:
    """Alternative: region-expand neighborhoods AND keep a 2x-widened price range.

    Retains more of W's intent, producing smaller result sets — used in the
    broadening-strategy ablation.
    """
    region = _region_of(exploration)
    parts: list[Predicate] = [InPredicate("neighborhood", region.neighborhood_names())]
    bounds = exploration.range_bounds("price")
    if bounds is not None:
        low, high = bounds
        if math.isinf(high):
            high = max(low * 3, 1_000_000.0)
        if math.isinf(low) or low < 0:
            low = 0.0
        center, width = (low + high) / 2, (high - low)
        widened_low = max(0.0, center - width)
        widened_high = center + width
        parts.append(RangePredicate("price", widened_low, widened_high))
    query = SelectQuery(
        table_name=exploration.query.table_name, predicate=Conjunction(parts)
    )
    return WorkloadQuery.from_query(query)


def broaden_drop_all_but_location(exploration: WorkloadQuery) -> WorkloadQuery:
    """Alternative: keep W's location conditions verbatim, drop everything else.

    The narrowest broadening — the exploration drills straight through the
    location level.  Used in the broadening-strategy ablation.
    """
    parts: list[Predicate] = []
    for attribute in ("neighborhood", "city", "state"):
        condition = exploration.conditions.get(attribute)
        if condition is not None:
            parts.append(condition)
    predicate: Predicate = Conjunction(parts) if parts else TruePredicate()
    if not parts:
        return broaden_to_region(exploration)
    query = SelectQuery(
        table_name=exploration.query.table_name, predicate=predicate
    )
    return WorkloadQuery.from_query(query)


#: Strategies by name, for benchmark parameterization.
STRATEGIES: dict[str, Callable[[WorkloadQuery], WorkloadQuery]] = {
    "region": broaden_to_region,
    "widen-price": broaden_widen_price,
    "location-only": broaden_drop_all_but_location,
}


def _region_of(exploration: WorkloadQuery) -> Region:
    """Identify the region a workload query is searching in."""
    hoods = exploration.in_values("neighborhood")
    if hoods:
        return region_of_neighborhood(next(iter(sorted(hoods))))
    cities = exploration.in_values("city")
    if cities:
        wanted = set(cities)
        for region in ALL_REGIONS:
            if wanted & {c.name for c in region.cities}:
                return region
    states = exploration.in_values("state")
    if states:
        wanted = set(states)
        for region in ALL_REGIONS:
            if wanted & {c.state for c in region.cities}:
                return region
    # No location signal at all: fall back to the largest market.
    return max(ALL_REGIONS, key=lambda r: sum(c.weight for c in r.cities))
