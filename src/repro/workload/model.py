"""Workload query model.

A workload is "the log of SQL query strings" users have issued in the past
(Section 4.2).  Each entry, once parsed and normalized, is a set of
per-attribute selection conditions — that is the only information the
probability estimator reads.  :class:`WorkloadQuery` wraps a normalized
:class:`~repro.relational.query.SelectQuery` and exposes exactly that view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.relational.expressions import InPredicate, Predicate, RangePredicate
from repro.relational.query import SelectQuery
from repro.sql.compiler import parse_query
from repro.sql.formatter import format_query


@dataclass(frozen=True)
class WorkloadQuery:
    """One logged query, normalized to per-attribute conditions.

    Attributes:
        query: the underlying (normalized) select query.
        conditions: mapping from attribute name to its canonical In/Range
            predicate — the representation Sections 4.2 and 5.1 operate on.
    """

    query: SelectQuery
    conditions: dict[str, Predicate]

    @classmethod
    def from_query(cls, query: SelectQuery) -> "WorkloadQuery":
        """Build from a SelectQuery, normalizing its predicate.

        Raises:
            ValueError: if the predicate cannot be normalized (contradictory
                or mixed-kind conditions) — such log entries should be
                rejected loudly rather than silently skewing the counts.
        """
        normalized = query.normalized()
        return cls(query=normalized, conditions=normalized.conditions())

    @classmethod
    def from_sql(cls, sql: str) -> "WorkloadQuery":
        """Parse one logged SQL string into a workload query."""
        return cls.from_query(parse_query(sql))

    def to_sql(self) -> str:
        """Serialize back to a SQL string (the log's storage format)."""
        return format_query(self.query)

    @property
    def attributes(self) -> frozenset[str]:
        """Attributes this query has a selection condition on.

        Presence of an attribute here is what increments ``NAttr(A)``.
        """
        return frozenset(self.conditions)

    def constrains(self, attribute: str) -> bool:
        """True if the query has a selection condition on ``attribute``."""
        return attribute in self.conditions

    def in_values(self, attribute: str) -> frozenset[Any] | None:
        """The IN-set on ``attribute``, or None if not an IN condition."""
        condition = self.conditions.get(attribute)
        if isinstance(condition, InPredicate):
            return condition.values
        return None

    def range_bounds(self, attribute: str) -> tuple[float, float] | None:
        """The (low, high) range on ``attribute``, or None if not a range."""
        condition = self.conditions.get(attribute)
        if isinstance(condition, RangePredicate):
            return condition.low, condition.high
        return None

    def __str__(self) -> str:
        return self.to_sql()
