"""Workload collections: load, save, split.

A :class:`Workload` is an ordered collection of :class:`WorkloadQuery`
entries with the file round-trip (one SQL string per line, ``--`` comments
allowed) and the subset/holdout machinery the cross-validated study needs
(Section 6.2: "we remove those queries from the workload and build the
count tables based on the remaining workload").
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.workload.model import WorkloadQuery


class Workload:
    """An ordered, immutable collection of logged queries."""

    def __init__(self, queries: Iterable[WorkloadQuery]) -> None:
        self._queries: tuple[WorkloadQuery, ...] = tuple(queries)

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[WorkloadQuery]:
        return iter(self._queries)

    def __getitem__(self, index: int) -> WorkloadQuery:
        return self._queries[index]

    @classmethod
    def from_sql_strings(cls, statements: Iterable[str]) -> "Workload":
        """Parse an iterable of SQL strings; blank lines are skipped.

        Raises:
            ValueError: identifying the offending statement index, when a
                string fails to parse or normalize.
        """
        queries: list[WorkloadQuery] = []
        for index, sql in enumerate(statements):
            stripped = sql.strip()
            if not stripped or stripped.startswith("--"):
                continue
            try:
                queries.append(WorkloadQuery.from_sql(stripped))
            except ValueError as exc:
                raise ValueError(f"workload entry {index}: {exc}") from exc
        return cls(queries)

    @classmethod
    def load(cls, path: str | Path) -> "Workload":
        """Load a workload file: one SQL statement per line."""
        with Path(path).open("r", encoding="utf-8") as handle:
            return cls.from_sql_strings(handle)

    def save(self, path: str | Path) -> None:
        """Write the workload as one SQL statement per line."""
        with Path(path).open("w", encoding="utf-8") as handle:
            for query in self._queries:
                handle.write(query.to_sql() + "\n")

    def without(self, held_out: Sequence[WorkloadQuery]) -> "Workload":
        """Return a workload excluding the given queries (by identity).

        Identity (not equality) is intentional: real logs contain duplicate
        query strings, and holding out one user's query must not delete
        every identical query from the statistics basis.
        """
        excluded = {id(query) for query in held_out}
        return Workload(q for q in self._queries if id(q) not in excluded)

    def sample(self, count: int, seed: int = 0) -> list[WorkloadQuery]:
        """Draw ``count`` queries without replacement, deterministically."""
        if count > len(self._queries):
            raise ValueError(
                f"cannot sample {count} queries from a workload of {len(self)}"
            )
        rng = random.Random(seed)
        return rng.sample(list(self._queries), count)

    def disjoint_subsets(
        self, subset_count: int, subset_size: int, seed: int = 0
    ) -> list[list[WorkloadQuery]]:
        """Partition a random draw into disjoint subsets (Section 6.2).

        The simulated study uses "8 mutually disjoint subsets of 100
        synthetic explorations each".

        Raises:
            ValueError: if the workload is too small for the requested draw.
        """
        total = subset_count * subset_size
        drawn = self.sample(total, seed=seed)
        return [
            drawn[i * subset_size : (i + 1) * subset_size]
            for i in range(subset_count)
        ]

    def filter(self, predicate) -> "Workload":
        """Return the sub-workload of queries for which ``predicate(q)`` holds."""
        return Workload(q for q in self._queries if predicate(q))

    def __repr__(self) -> str:
        return f"Workload(queries={len(self)})"
