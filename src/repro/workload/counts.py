"""The paper's precomputed count tables (Figures 4a, 4b, 5b).

Three structures are built once from the workload and consulted at query
time, "eliminating the need to access the workload at query time"
(Section 5.1.3):

* :class:`AttributeUsageCounts` — Figure 4(a): ``NAttr(A)``, the number of
  workload queries with a selection condition on attribute ``A``, plus the
  total query count ``N``.  Drives attribute elimination (Section 5.1.1)
  and the SHOWTUPLES probability ``Pw`` (Section 4.2).
* :class:`OccurrenceCounts` — Figure 4(b), one per categorical attribute:
  ``occ(v)``, the number of queries whose IN-clause on ``A`` contains value
  ``v``.  Drives single-value category ordering (Section 5.1.2) and equals
  ``NOverlap(C)`` for a single-value category.
* :class:`SplitPointsTable` — Figure 5(b), one per numeric attribute:
  per-gridpoint ``start_v`` / ``end_v`` counts and the goodness score
  ``SUM(start_v, end_v)`` (Section 5.1.3).

Additionally, :class:`RangeIndex` keeps the sorted range endpoints per
numeric attribute so that ``NOverlap(C)`` for a range label — the number of
query ranges intersecting a bucket — is an O(log n) computation rather than
a workload rescan.
"""

from __future__ import annotations

import bisect
import math
from array import array
from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterable


class AttributeUsageCounts:
    """``NAttr(A)`` per attribute and the workload size ``N`` (Figure 4a)."""

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()
        self._total_queries = 0

    def record_query(self, attributes: Iterable[str]) -> None:
        """Record one query constraining the given attributes."""
        self._total_queries += 1
        for attribute in set(attributes):
            self._counts[attribute] += 1

    def copy(self) -> "AttributeUsageCounts":
        """An independent copy (epoch-snapshot publishing clones tables)."""
        clone = AttributeUsageCounts()
        clone._counts = Counter(self._counts)
        clone._total_queries = self._total_queries
        return clone

    @property
    def total_queries(self) -> int:
        """``N``: the number of queries in the workload."""
        return self._total_queries

    def n_attr(self, attribute: str) -> int:
        """``NAttr(A)``: queries with a selection condition on ``attribute``."""
        return self._counts[attribute]

    def usage_fraction(self, attribute: str) -> float:
        """``NAttr(A) / N`` — the SHOWCAT probability ingredient.

        Returns 0.0 for an empty workload (no evidence of interest).
        """
        if self._total_queries == 0:
            return 0.0
        return self._counts[attribute] / self._total_queries

    def attributes(self) -> list[str]:
        """All attributes seen in any selection condition, most-used first."""
        return [name for name, _ in self._counts.most_common()]

    def as_rows(self) -> list[tuple[str, int]]:
        """Render as (attribute, NAttr) rows, most-used first — Figure 4(a)."""
        return list(self._counts.most_common())


class OccurrenceCounts:
    """``occ(v)`` for one categorical attribute (Figure 4b).

    The table is "indexed on the value to make the retrieval efficient" —
    here a dict, which is exactly that index.
    """

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute
        self._counts: Counter[Any] = Counter()

    def record_values(self, values: Iterable[Any]) -> None:
        """Record one query whose IN-clause on this attribute lists ``values``."""
        for value in set(values):
            self._counts[value] += 1

    def copy(self) -> "OccurrenceCounts":
        """An independent copy (epoch-snapshot publishing clones tables)."""
        clone = OccurrenceCounts(self.attribute)
        clone._counts = Counter(self._counts)
        return clone

    def occ(self, value: Any) -> int:
        """``occ(v)``: queries whose IN-clause contains ``value``."""
        return self._counts[value]

    def order_by_occurrence(self, values: Iterable[Any]) -> list[Any]:
        """Sort ``values`` by decreasing occ(v) (Section 5.1.2).

        Ties are broken by value repr so orderings are deterministic.
        """
        return sorted(values, key=lambda v: (-self._counts[v], repr(v)))

    def as_rows(self) -> list[tuple[Any, int]]:
        """Render as (value, occ) rows, most-occurring first — Figure 4(b)."""
        return sorted(self._counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))


@dataclass(frozen=True)
class SplitPointRow:
    """One row of the SplitPoints table (Figure 5b)."""

    splitpoint: float
    start_count: int
    end_count: int

    @property
    def goodness(self) -> int:
        """``SUM(start_v, end_v)`` — the splitpoint goodness score."""
        return self.start_count + self.end_count


class SplitPointsTable:
    """Per-gridpoint start/end counts for one numeric attribute (Figure 5b).

    Query-range endpoints are snapped to a grid of the attribute's
    *separation interval* (paper: 5000 for price, 100 for square footage,
    5 for year built).  Infinite endpoints (one-sided conditions) do not
    contribute start/end counts — a user with no upper bound expresses no
    preference for any split.

    The goodness queries (:meth:`rows_in_range`, :meth:`best_splitpoints`)
    scan and sort every recorded gridpoint, and the partitioner issues them
    with the same ``(vmin, vmax)`` for every level of every categorization
    of the same query — so their results are memoized per bounds, and every
    :meth:`record_range` (a new log entry) drops the memo.
    """

    def __init__(
        self, attribute: str, separation_interval: float, memoize: bool = True
    ) -> None:
        if separation_interval <= 0:
            raise ValueError(
                f"separation interval for {attribute!r} must be positive, "
                f"got {separation_interval}"
            )
        self.attribute = attribute
        self.separation_interval = separation_interval
        self._starts: Counter[float] = Counter()
        self._ends: Counter[float] = Counter()
        self._memoize = memoize
        # (vmin, vmax) -> goodness-sorted splitpoints; dropped on record_range.
        self._best_memo: dict[tuple[float, float], list[float]] = {}

    def set_memoization(self, enabled: bool) -> None:
        """Enable/disable the goodness-query memo; disabling drops it."""
        self._memoize = enabled
        self._best_memo.clear()

    def copy(self) -> "SplitPointsTable":
        """An independent copy, keeping the warm goodness memo.

        Epoch publishing clones the table before folding the pending
        delta; a delta that touches this attribute then clears the copied
        memo via :meth:`record_range`, while untouched attributes keep
        serving memoized answers in the new epoch (copy-on-write).
        """
        clone = SplitPointsTable(
            self.attribute, self.separation_interval, memoize=self._memoize
        )
        clone._starts = Counter(self._starts)
        clone._ends = Counter(self._ends)
        clone._best_memo = dict(self._best_memo)
        return clone

    def snap(self, value: float) -> float:
        """Snap a value to the nearest gridpoint."""
        interval = self.separation_interval
        return round(value / interval) * interval

    def record_range(self, low: float, high: float) -> None:
        """Record one query range ``low <= A <= high`` on this attribute.

        Invalidates the memoized goodness queries — new start/end counts
        can reorder every ``best_splitpoints`` answer.
        """
        if not math.isinf(low):
            self._starts[self.snap(low)] += 1
        if not math.isinf(high):
            self._ends[self.snap(high)] += 1
        self._best_memo.clear()

    def start_count(self, splitpoint: float) -> int:
        """``start_v``: query ranges starting at this gridpoint."""
        return self._starts[splitpoint]

    def end_count(self, splitpoint: float) -> int:
        """``end_v``: query ranges ending at this gridpoint."""
        return self._ends[splitpoint]

    def goodness(self, splitpoint: float) -> int:
        """``SUM(start_v, end_v)`` for this gridpoint."""
        return self._starts[splitpoint] + self._ends[splitpoint]

    def rows_in_range(self, vmin: float, vmax: float) -> list[SplitPointRow]:
        """All non-zero gridpoints strictly inside ``(vmin, vmax)``.

        Endpoints equal to vmin or vmax are excluded: splitting at the
        boundary of the query range would create an empty bucket.
        """
        points = set(self._starts) | set(self._ends)
        rows = [
            SplitPointRow(p, self._starts[p], self._ends[p])
            for p in points
            if vmin < p < vmax
        ]
        rows.sort(key=lambda row: row.splitpoint)
        return rows

    def best_splitpoints(self, vmin: float, vmax: float) -> list[float]:
        """Gridpoints in (vmin, vmax) by decreasing goodness (Section 5.1.3).

        Ties broken by ascending value for determinism.  The partitioner
        walks this list, skipping "unnecessary" points, until it has
        selected m−1 of them.  Memoized per ``(vmin, vmax)`` until the next
        :meth:`record_range`; callers must not mutate the returned list.
        """
        if self._memoize:
            memoized = self._best_memo.get((vmin, vmax))
            if memoized is not None:
                return memoized
        rows = self.rows_in_range(vmin, vmax)
        rows.sort(key=lambda row: (-row.goodness, row.splitpoint))
        best = [row.splitpoint for row in rows]
        if self._memoize:
            self._best_memo[(vmin, vmax)] = best
        return best

    def grid_points(self, vmin: float, vmax: float) -> list[float]:
        """All gridpoints strictly inside (vmin, vmax), whether or not used.

        The equi-width fallback and the No-Cost baseline need the raw grid.
        """
        interval = self.separation_interval
        first = math.floor(vmin / interval) * interval + interval
        points: list[float] = []
        point = first
        while point < vmax:
            if point > vmin:
                points.append(point)
            point += interval
        return points


class RangeIndex:
    """Sorted endpoint index over all query ranges on one numeric attribute.

    Supports ``NOverlap`` for a bucket label ``a1 <= A < a2`` in O(log n):
    the number of recorded ranges [low, high] intersecting [a1, a2) equals
    ``total − #{high < a1} − #{low >= a2}``.

    Endpoints are packed into ``array('d')`` — at paper scale (176 k
    workload queries) the two endpoint lists per numeric attribute are the
    statistics' largest resident structure, and the packed form is ~3.5×
    smaller than boxed floats while bisecting identically.
    """

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute
        self._lows: array = array("d")
        self._highs: array = array("d")
        self._finalized = False

    def record_range(self, low: float, high: float) -> None:
        """Record one (inclusive) query range.

        Appending after queries have been counted is allowed — the index
        marks itself dirty and re-sorts lazily on the next count — so live
        systems can stream new log entries into existing statistics.
        """
        self._lows.append(low)
        self._highs.append(high)
        self._finalized = False

    def copy(self) -> "RangeIndex":
        """An independent copy (epoch-snapshot publishing clones tables)."""
        clone = RangeIndex(self.attribute)
        clone._lows = array("d", self._lows)
        clone._highs = array("d", self._highs)
        clone._finalized = self._finalized
        return clone

    def finalize(self) -> None:
        """Sort the endpoint lists; called lazily before counting.

        ``array`` has no in-place sort, so each list is rebuilt from its
        sorted values; counting paths only ever see the sorted arrays.
        """
        self._lows = array("d", sorted(self._lows))
        self._highs = array("d", sorted(self._highs))
        self._finalized = True

    @property
    def is_finalized(self) -> bool:
        """False while appended ranges await the lazy re-sort."""
        return self._finalized

    @property
    def total_ranges(self) -> int:
        """Number of recorded ranges (== NAttr of the attribute, range part)."""
        return len(self._lows)

    def count_overlapping(self, low: float, high: float, high_inclusive: bool = False) -> int:
        """Count recorded ranges intersecting ``[low, high)`` (or ``[low, high]``).

        Category labels are half-open (``a1 <= A < a2``); pass
        ``high_inclusive=True`` to test against a closed interval instead.
        """
        if not self._finalized:
            self.finalize()
        total = len(self._lows)
        # Ranges entirely below the bucket: high < low.
        below = bisect.bisect_left(self._highs, low)
        # Ranges entirely above: low > high (closed) or low >= high (half-open).
        if high_inclusive:
            above = total - bisect.bisect_right(self._lows, high)
        else:
            above = total - bisect.bisect_left(self._lows, high)
        return total - below - above
