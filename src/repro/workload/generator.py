"""Persona-based synthetic workload generator.

Stand-in for the paper's proprietary workload of 176,262 real MSN
House&Home searches (Section 6.1).  The estimator consumes only aggregate
statistics — attribute usage fractions ``NAttr(A)/N``, value occurrence
counts ``occ(v)``, and range-endpoint mass at round prices — so the
generator's job is to reproduce that statistical texture:

* attribute popularity is skewed the way Figure 4(a) shows (neighborhood
  and bedrooms most used, year-built least), calibrated so the paper's
  ``x = 0.4`` elimination threshold retains the same six attributes;
* each "user" (query) is a persona: a region of interest, a budget, a
  size need — giving correlated conditions, not independent noise;
* range endpoints cluster on round values (25K price steps, 500-sqft
  steps), creating the splitpoint mass that Section 5.1.3 exploits;
* neighborhood choices follow the region's popularity weights, creating
  the occ(v) skew that drives category ordering in Section 5.1.2.

Queries are emitted as SQL strings and re-parsed, so the full logged-string
pathway is exercised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping

from repro import perf
from repro.data.distributions import PROPERTY_TYPES, weighted_choice
from repro.data.geography import ALL_REGIONS, Region
from repro.workload.log import Workload
from repro.workload.model import WorkloadQuery


#: Probability that a query constrains each attribute.  Calibrated against
#: Figure 4(a)'s relative usage and the Section 5.1.1 observation that
#: x = 0.4 retains exactly {neighborhood, price, bedroomcount, bathcount,
#: propertytype, squarefootage} out of the full attribute set.
DEFAULT_ATTRIBUTE_USAGE: Mapping[str, float] = {
    "neighborhood": 0.93,
    "bedroomcount": 0.62,
    "price": 0.55,
    "bathcount": 0.46,
    "propertytype": 0.44,
    "squarefootage": 0.42,
    "yearbuilt": 0.22,
    "city": 0.12,
    "state": 0.05,
    "zipcode": 0.03,
}


@dataclass(frozen=True)
class WorkloadGeneratorConfig:
    """Tunables for the synthetic workload generator.

    Attributes:
        query_count: number of queries (workload size ``N``).
        seed: PRNG seed; generation is fully deterministic.
        attribute_usage: per-attribute condition probability.
        regions: the markets buyers search in.
        table_name: FROM table of every generated query.
    """

    query_count: int = 20_000
    seed: int = 41
    attribute_usage: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_ATTRIBUTE_USAGE)
    )
    regions: tuple[Region, ...] = ALL_REGIONS
    table_name: str = "ListProperty"


def generate_workload(config: WorkloadGeneratorConfig | None = None) -> Workload:
    """Generate a synthetic workload of SQL search queries.

    Every query has at least one selection condition (an unconstrained
    search would not appear in a search log).  The returned workload is the
    result of formatting each query to SQL and re-parsing it, guaranteeing
    the strings round-trip through :mod:`repro.sql`.
    """
    config = config or WorkloadGeneratorConfig()
    if config.query_count <= 0:
        raise ValueError(f"query_count must be positive, got {config.query_count}")
    with perf.span("workload.generate"):
        rng = random.Random(config.seed)
        statements = [
            _generate_query_sql(rng, config) for _ in range(config.query_count)
        ]
        perf.count("workload.queries_generated", config.query_count)
        return Workload.from_sql_strings(statements)


def _generate_query_sql(rng: random.Random, config: WorkloadGeneratorConfig) -> str:
    """Generate one persona's search as a SQL string."""
    # Search traffic concentrates in big markets, but sub-linearly (small
    # markets are over-searched relative to inventory) — sqrt weighting.
    region = weighted_choice(
        rng,
        list(config.regions),
        [sum(c.weight for c in r.cities) ** 0.5 for r in config.regions],
    )
    conditions: list[str] = []
    usage = config.attribute_usage

    wants = {name: rng.random() < p for name, p in usage.items()}
    if not any(wants.values()):
        wants["neighborhood"] = True  # a log never contains SELECT-all queries

    if wants.get("neighborhood"):
        conditions.append(_neighborhood_condition(rng, region))
    elif wants.get("city"):
        conditions.append(_city_condition(rng, region))
    if wants.get("state"):
        state = region.cities[0].state
        conditions.append(f"state IN ('{state}')")
    if wants.get("zipcode"):
        # Personas rarely search by zipcode; sample a plausible 5-digit one.
        conditions.append(f"zipcode IN ({rng.randint(10_000, 99_999)})")
    if wants.get("price"):
        conditions.append(_price_condition(rng, region))
    if wants.get("bedroomcount"):
        conditions.append(_bedrooms_condition(rng))
    if wants.get("bathcount"):
        conditions.append(_bathrooms_condition(rng))
    if wants.get("squarefootage"):
        conditions.append(_square_footage_condition(rng))
    if wants.get("yearbuilt"):
        conditions.append(_year_built_condition(rng))
    if wants.get("propertytype"):
        conditions.append(_property_type_condition(rng))

    return f"SELECT * FROM {config.table_name} WHERE " + " AND ".join(conditions)


def _neighborhood_condition(rng: random.Random, region: Region) -> str:
    """IN-condition over 1-5 neighborhoods, popularity-weighted.

    Squaring the weights sharpens the popularity skew, producing the
    long-tailed occ(v) distribution of Figure 4(b).
    """
    hoods = list(region.neighborhoods)
    weights = [(h.weight * h.price_factor) ** 2 for h in hoods]
    count = min(rng.choice((1, 1, 2, 2, 3, 4, 5)), len(hoods))
    chosen: list[str] = []
    remaining = list(zip(hoods, weights))
    for _ in range(count):
        names, ws = [h.name for h, _ in remaining], [w for _, w in remaining]
        pick = weighted_choice(rng, names, ws)
        chosen.append(pick)
        remaining = [(h, w) for h, w in remaining if h.name != pick]
    values = ", ".join(f"'{name}'" for name in chosen)
    return f"neighborhood IN ({values})"


def _city_condition(rng: random.Random, region: Region) -> str:
    cities = list(region.cities)
    city = weighted_choice(rng, cities, [c.weight for c in cities])
    return f"city IN ('{city.name}')"


def _price_condition(rng: random.Random, region: Region) -> str:
    """Budget range around the region's market level, on a 25K grid.

    ~20% of buyers state only a ceiling ("under a million"), matching the
    one-sided conditions of the paper's Task 1 and Task 3.
    """
    base = sum(c.base_price * c.weight for c in region.cities) / sum(
        c.weight for c in region.cities
    )
    center = base * rng.uniform(0.55, 1.6)
    # Buyers quote round numbers, but on mixed grids: "450K", "475K",
    # "1.2M", occasionally "190K".  The mixture puts most endpoint mass on
    # 25K/50K multiples with a long tail on the 5K/10K grid.
    step = rng.choice((5_000, 10_000, 10_000, 25_000, 25_000, 25_000, 25_000, 50_000, 50_000))
    if rng.random() < 0.2:
        ceiling = round(center * 1.3 / step) * step
        return f"price <= {max(step, int(ceiling))}"
    width = center * rng.uniform(0.25, 0.7)
    low = max(0, round((center - width / 2) / step) * step)
    high = round((center + width / 2) / step) * step
    if high <= low:
        high = low + step
    return f"price BETWEEN {int(low)} AND {int(high)}"


def _bedrooms_condition(rng: random.Random) -> str:
    low = rng.choice((1, 2, 2, 3, 3, 3, 4, 4, 5))
    if rng.random() < 0.25:
        return f"bedroomcount >= {low}"
    high = low + rng.choice((0, 1, 1))
    return f"bedroomcount BETWEEN {low} AND {high}"


def _bathrooms_condition(rng: random.Random) -> str:
    low = rng.choice((1, 1.5, 2, 2, 2.5, 3))
    return f"bathcount >= {low}"


def _square_footage_condition(rng: random.Random) -> str:
    low = rng.choice((800, 1000, 1200, 1500, 1500, 2000, 2000, 2500, 3000))
    if rng.random() < 0.5:
        return f"squarefootage >= {low}"
    high = low + rng.choice((500, 500, 1000, 1000, 1500, 2000))
    return f"squarefootage BETWEEN {low} AND {high}"


def _year_built_condition(rng: random.Random) -> str:
    low = rng.choice((1940, 1950, 1960, 1970, 1980, 1980, 1990, 1990, 1995, 2000))
    return f"yearbuilt >= {low}"


def _property_type_condition(rng: random.Random) -> str:
    if rng.random() < 0.7:
        # Most type-sensitive buyers want exactly single-family or a condo.
        choice = rng.choice(("Single Family Home", "Single Family Home", "Condo/Townhome"))
        return f"propertytype IN ('{choice}')"
    count = rng.choice((2, 2, 3))
    chosen = rng.sample(PROPERTY_TYPES, count)
    values = ", ".join(f"'{name}'" for name in chosen)
    return f"propertytype IN ({values})"


def build_paper_scale_workload(seed: int = 41, query_count: int = 20_000) -> Workload:
    """Generate the default workload used by the benchmark suite.

    20K queries keeps preprocessing near-instant while leaving the count
    tables statistically dense (the paper used 176K; the estimator only
    consumes ratios, which stabilize long before 20K).
    """
    return generate_workload(
        WorkloadGeneratorConfig(query_count=query_count, seed=seed)
    )
