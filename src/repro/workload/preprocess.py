"""Workload preprocessing: one scan building every count table.

Implements the paper's preprocessing phase (Section 6.1): "we scan the
workload and build the following tables: the AttributeUsageCounts table,
one OccurrenceCounts table for each potential categorizing attribute that
is categorical and one SplitPoints table for each ... numeric [attribute]".

The result, :class:`WorkloadStatistics`, is everything the categorizer
needs at query time — the workload itself is never touched again.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.relational.expressions import InPredicate, RangePredicate
from repro.relational.schema import TableSchema
from repro.workload.model import WorkloadQuery
from repro.workload.counts import (
    AttributeUsageCounts,
    OccurrenceCounts,
    RangeIndex,
    SplitPointsTable,
)
from repro.workload.log import Workload


class WorkloadStatistics:
    """All precomputed workload count tables for one schema.

    Build via :func:`preprocess_workload`.  Exposes the quantities of
    Sections 4.2 and 5.1: ``N``, ``NAttr(A)``, ``occ(v)``, splitpoint
    goodness scores, and range-overlap counts.
    """

    def __init__(
        self,
        schema: TableSchema,
        usage: AttributeUsageCounts,
        occurrences: Mapping[str, OccurrenceCounts],
        splitpoints: Mapping[str, SplitPointsTable],
        range_indexes: Mapping[str, RangeIndex],
    ) -> None:
        self.schema = schema
        self.usage = usage
        self._occurrences = dict(occurrences)
        self._splitpoints = dict(splitpoints)
        self._range_indexes = dict(range_indexes)

    # -- incremental maintenance ---------------------------------------------

    def record_query(self, query: "WorkloadQuery") -> None:
        """Fold one new logged query into every count table.

        Commercial DBMSs "log the queries that execute on the system
        anyway" (Section 4.2) — and they keep arriving.  All count tables
        are additive over queries, so statistics can track a live log
        without periodic full rescans; the numeric range index re-sorts
        lazily on the next overlap count.
        """
        self.usage.record_query(query.attributes)
        for attribute, condition in query.conditions.items():
            if isinstance(condition, InPredicate) and attribute in self._occurrences:
                self._occurrences[attribute].record_values(condition.values)
            elif (
                isinstance(condition, RangePredicate)
                and attribute in self._splitpoints
            ):
                self._splitpoints[attribute].record_range(
                    condition.low, condition.high
                )
                self._range_indexes[attribute].record_range(
                    condition.low, condition.high
                )

    # -- workload-size quantities ------------------------------------------

    @property
    def total_queries(self) -> int:
        """``N``: the number of workload queries scanned."""
        return self.usage.total_queries

    def n_attr(self, attribute: str) -> int:
        """``NAttr(A)`` (Figure 4a)."""
        return self.usage.n_attr(attribute)

    def usage_fraction(self, attribute: str) -> float:
        """``NAttr(A)/N``: the probability a random user constrains ``A``."""
        return self.usage.usage_fraction(attribute)

    # -- per-attribute tables -----------------------------------------------

    def occurrence_counts(self, attribute: str) -> OccurrenceCounts:
        """The OccurrenceCounts table of a categorical attribute (Figure 4b).

        Raises:
            KeyError: for attributes that are not categorical in the schema.
        """
        try:
            return self._occurrences[attribute]
        except KeyError:
            raise KeyError(
                f"no occurrence counts for {attribute!r}; categorical "
                f"attributes: {sorted(self._occurrences)}"
            ) from None

    def splitpoints_table(self, attribute: str) -> SplitPointsTable:
        """The SplitPoints table of a numeric attribute (Figure 5b).

        Raises:
            KeyError: for attributes that are not numeric in the schema.
        """
        try:
            return self._splitpoints[attribute]
        except KeyError:
            raise KeyError(
                f"no splitpoints table for {attribute!r}; numeric "
                f"attributes: {sorted(self._splitpoints)}"
            ) from None

    def range_index(self, attribute: str) -> RangeIndex:
        """The sorted range-endpoint index of a numeric attribute."""
        try:
            return self._range_indexes[attribute]
        except KeyError:
            raise KeyError(
                f"no range index for {attribute!r}; numeric "
                f"attributes: {sorted(self._range_indexes)}"
            ) from None

    # -- NOverlap (Section 4.2) ----------------------------------------------

    def occ(self, attribute: str, value: Any) -> int:
        """``occ(v)`` = NOverlap of the single-value category ``A = v``."""
        return self.occurrence_counts(attribute).occ(value)

    def n_overlap_values(self, attribute: str, values: frozenset | set) -> int:
        """NOverlap of a multi-value categorical label ``A IN B``.

        Counted as queries whose IN-set intersects ``B``.  For single-value
        categories this equals ``occ(v)``; the general form supports
        broadened labels.
        """
        index = self.occurrence_counts(attribute)
        # occ() counts per-value; a query listing two values of B would be
        # double-counted by summing, which over-estimates NOverlap.  The
        # paper only ever needs single-value categorical labels, where the
        # two coincide; for multi-value labels we take the sum as an upper
        # bound, clamped to NAttr.
        total = sum(index.occ(v) for v in values)
        return min(total, self.n_attr(attribute))

    def n_overlap_range(
        self, attribute: str, low: float, high: float, high_inclusive: bool = False
    ) -> int:
        """NOverlap of a numeric label ``low <= A < high`` (Section 4.2)."""
        return self.range_index(attribute).count_overlapping(
            low, high, high_inclusive=high_inclusive
        )


#: Default grid spacing for numeric attributes absent an explicit setting.
DEFAULT_SEPARATION_INTERVAL = 1.0


def preprocess_workload(
    workload: Workload,
    schema: TableSchema,
    separation_intervals: Mapping[str, float] | None = None,
) -> WorkloadStatistics:
    """Scan ``workload`` once and build every count table.

    Args:
        workload: the parsed query log.
        schema: the relation the queries target; attribute kinds decide
            which table each condition feeds.
        separation_intervals: per-attribute splitpoint grid spacing (the
            paper uses 5000/100/5 for price/square footage/year built);
            attributes not listed use :data:`DEFAULT_SEPARATION_INTERVAL`.

    Conditions on attributes missing from the schema are counted in
    ``NAttr`` (they still evidence user interest) but feed no value tables.
    Range conditions on categorical attributes and IN conditions on numeric
    attributes are tolerated: each feeds the table its shape permits.
    """
    intervals = dict(separation_intervals or {})
    usage = AttributeUsageCounts()
    occurrences = {
        attr.name: OccurrenceCounts(attr.name)
        for attr in schema.categorical_attributes()
    }
    splitpoints = {
        attr.name: SplitPointsTable(
            attr.name, intervals.get(attr.name, DEFAULT_SEPARATION_INTERVAL)
        )
        for attr in schema.numeric_attributes()
    }
    range_indexes = {
        attr.name: RangeIndex(attr.name) for attr in schema.numeric_attributes()
    }

    for query in workload:
        usage.record_query(query.attributes)
        for attribute, condition in query.conditions.items():
            if isinstance(condition, InPredicate) and attribute in occurrences:
                occurrences[attribute].record_values(condition.values)
            elif isinstance(condition, RangePredicate) and attribute in splitpoints:
                splitpoints[attribute].record_range(condition.low, condition.high)
                range_indexes[attribute].record_range(condition.low, condition.high)

    for index in range_indexes.values():
        index.finalize()
    return WorkloadStatistics(
        schema=schema,
        usage=usage,
        occurrences=occurrences,
        splitpoints=splitpoints,
        range_indexes=range_indexes,
    )
