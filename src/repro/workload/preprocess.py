"""Workload preprocessing: one scan building every count table.

Implements the paper's preprocessing phase (Section 6.1): "we scan the
workload and build the following tables: the AttributeUsageCounts table,
one OccurrenceCounts table for each potential categorizing attribute that
is categorical and one SplitPoints table for each ... numeric [attribute]".

The result, :class:`WorkloadStatistics`, is everything the categorizer
needs at query time — the workload itself is never touched again.  Both
ingestion paths — the batch scan of :func:`preprocess_workload` and the
incremental :meth:`WorkloadStatistics.record_query` — fold conditions
through the single shared :func:`fold_query_conditions` dispatcher, so the
two cannot drift apart.

Because the same lookups recur across nodes, levels and repeated
``categorize`` calls, the query-time accessors (``usage_fraction``,
``occ``, ``n_overlap_range``) are memoized; :meth:`record_query`
invalidates exactly the entries the new log entry can change (every usage
fraction, since ``N`` is their shared denominator, plus the value tables
of the attributes the query constrains).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro import perf
from repro.relational.expressions import InPredicate, RangePredicate
from repro.relational.schema import TableSchema
from repro.workload.model import WorkloadQuery
from repro.workload.counts import (
    AttributeUsageCounts,
    OccurrenceCounts,
    RangeIndex,
    SplitPointsTable,
)
from repro.workload.log import Workload


def fold_query_conditions(
    query: WorkloadQuery,
    usage: AttributeUsageCounts,
    occurrences: Mapping[str, OccurrenceCounts],
    splitpoints: Mapping[str, SplitPointsTable],
    range_indexes: Mapping[str, RangeIndex],
) -> list[str]:
    """Fold one logged query into the count tables — the single dispatcher.

    Used by both the batch scan (:func:`preprocess_workload`) and the
    incremental path (:meth:`WorkloadStatistics.record_query`); keeping one
    copy of the dispatch rules is what guarantees batch ≡ incremental.

    The rules, per condition shape × attribute kind:

    * IN on a categorical attribute → its OccurrenceCounts table.
    * Range on a numeric attribute → its SplitPoints table + range index.
    * IN on a *numeric* attribute (e.g. ``zipcode IN (98004)`` when zipcode
      is numeric in the schema) → each numeric value becomes the degenerate
      point range ``[v, v]``: it increments start/end counts at ``snap(v)``
      and contributes to ``NOverlap`` of every bucket containing ``v``.
    * Range on a categorical attribute → only ``NAttr`` (no value table can
      represent a range over an unordered domain).
    * Conditions on attributes missing from the schema → only ``NAttr``
      (they still evidence user interest).

    Returns:
        The attributes whose *value tables* changed — the memo-invalidation
        set for the incremental path.
    """
    usage.record_query(query.attributes)
    touched: list[str] = []
    for attribute, condition in query.conditions.items():
        if isinstance(condition, InPredicate):
            if attribute in occurrences:
                occurrences[attribute].record_values(condition.values)
                touched.append(attribute)
            elif attribute in splitpoints:
                fed = False
                for value in condition.values:
                    if isinstance(value, bool) or not isinstance(
                        value, (int, float)
                    ):
                        continue  # non-numeric literal in a numeric IN-set
                    point = float(value)
                    splitpoints[attribute].record_range(point, point)
                    range_indexes[attribute].record_range(point, point)
                    fed = True
                if fed:
                    touched.append(attribute)
        elif isinstance(condition, RangePredicate) and attribute in splitpoints:
            splitpoints[attribute].record_range(condition.low, condition.high)
            range_indexes[attribute].record_range(condition.low, condition.high)
            touched.append(attribute)
    return touched


class WorkloadStatistics:
    """All precomputed workload count tables for one schema.

    Build via :func:`preprocess_workload`.  Exposes the quantities of
    Sections 4.2 and 5.1: ``N``, ``NAttr(A)``, ``occ(v)``, splitpoint
    goodness scores, and range-overlap counts.

    The accessors backing the categorizer's inner loop are memoized (see
    the module docstring); pass ``memoize=False`` — or call
    :meth:`set_memoization` — to measure or serve without the caches.
    """

    def __init__(
        self,
        schema: TableSchema,
        usage: AttributeUsageCounts,
        occurrences: Mapping[str, OccurrenceCounts],
        splitpoints: Mapping[str, SplitPointsTable],
        range_indexes: Mapping[str, RangeIndex],
        memoize: bool = True,
    ) -> None:
        self.schema = schema
        self.usage = usage
        self._occurrences = dict(occurrences)
        self._splitpoints = dict(splitpoints)
        self._range_indexes = dict(range_indexes)
        self._memoize = memoize
        # attribute -> fraction; cleared wholesale on every record_query
        # because N (the shared denominator) changes.
        self._usage_memo: dict[str, float] = {}
        # attribute -> {value -> occ}; dropped per touched attribute.
        self._occ_memo: dict[str, dict[Any, int]] = {}
        # attribute -> {(low, high, high_inclusive) -> NOverlap};
        # dropped per touched attribute.
        self._range_memo: dict[str, dict[tuple[float, float, bool], int]] = {}

    # -- memoization control --------------------------------------------------

    @property
    def memoization_enabled(self) -> bool:
        """True when query-time accessors are served from memo caches."""
        return self._memoize

    def set_memoization(self, enabled: bool) -> None:
        """Enable/disable memoization; disabling drops every cached entry.

        The split-point goodness memo lives on each
        :class:`~repro.workload.counts.SplitPointsTable` and is toggled
        together with the lookup memos here.
        """
        self._memoize = enabled
        self.clear_memos()
        for table in self._splitpoints.values():
            table.set_memoization(enabled)

    def clear_memos(self) -> None:
        """Drop every memoized lookup (the tables themselves are kept)."""
        self._usage_memo.clear()
        self._occ_memo.clear()
        self._range_memo.clear()

    def _invalidate(self, touched: list[str]) -> None:
        """Invalidate exactly what one new logged query can change."""
        # N grew, so every cached NAttr(A)/N is stale.
        self._usage_memo.clear()
        for attribute in touched:
            self._occ_memo.pop(attribute, None)
            self._range_memo.pop(attribute, None)
        perf.count("stats.invalidations")

    # -- snapshot support ------------------------------------------------------

    def copy(self) -> "WorkloadStatistics":
        """An independent copy with warm memo caches (copy-on-write basis).

        The epoch-snapshot store (:mod:`repro.serving.snapshot`) publishes
        a new epoch by copying the current statistics and folding the
        pending delta into the copy, leaving the published epoch untouched
        for pinned readers.  Count tables are deep-copied; the query-time
        memo dicts are copied too, so lookups untouched by the delta stay
        warm in the new epoch while :meth:`record_query` invalidation
        evicts exactly the entries the delta can change.

        The schema is shared (immutable); the usage-fraction memo is not
        carried over because any delta changes ``N``, its denominator.
        """
        clone = WorkloadStatistics(
            schema=self.schema,
            usage=self.usage.copy(),
            occurrences={
                name: table.copy() for name, table in self._occurrences.items()
            },
            splitpoints={
                name: table.copy() for name, table in self._splitpoints.items()
            },
            range_indexes={
                name: index.copy() for name, index in self._range_indexes.items()
            },
            memoize=self._memoize,
        )
        clone._occ_memo = {
            attribute: dict(memo) for attribute, memo in self._occ_memo.items()
        }
        clone._range_memo = {
            attribute: dict(memo) for attribute, memo in self._range_memo.items()
        }
        return clone

    def finalize_indexes(self) -> None:
        """Sort every dirty range index now, not lazily on first read.

        A pinned epoch snapshot must be immutable under concurrent reads;
        the range index normally re-sorts lazily inside the first
        ``count_overlapping`` after an append, which would be a mutation
        racing other readers.  Publishing calls this before the epoch is
        swapped in, so readers only ever see finalized indexes.
        """
        for index in self._range_indexes.values():
            if not index.is_finalized:
                index.finalize()

    # -- incremental maintenance ---------------------------------------------

    def record_query(self, query: WorkloadQuery) -> None:
        """Fold one new logged query into every count table.

        Commercial DBMSs "log the queries that execute on the system
        anyway" (Section 4.2) — and they keep arriving.  All count tables
        are additive over queries, so statistics can track a live log
        without periodic full rescans; the numeric range index re-sorts
        lazily on the next overlap count.  Dispatch is shared with the
        batch path via :func:`fold_query_conditions`, and the memo caches
        are invalidated so no stale probability survives the update.
        """
        touched = fold_query_conditions(
            query,
            self.usage,
            self._occurrences,
            self._splitpoints,
            self._range_indexes,
        )
        self._invalidate(touched)

    # -- workload-size quantities ------------------------------------------

    @property
    def total_queries(self) -> int:
        """``N``: the number of workload queries scanned."""
        return self.usage.total_queries

    def n_attr(self, attribute: str) -> int:
        """``NAttr(A)`` (Figure 4a)."""
        return self.usage.n_attr(attribute)

    def usage_fraction(self, attribute: str) -> float:
        """``NAttr(A)/N``: the probability a random user constrains ``A``."""
        if not self._memoize:
            return self.usage.usage_fraction(attribute)
        fraction = self._usage_memo.get(attribute)
        if fraction is None:
            fraction = self._usage_memo[attribute] = self.usage.usage_fraction(
                attribute
            )
        return fraction

    # -- per-attribute tables -----------------------------------------------

    def occurrence_counts(self, attribute: str) -> OccurrenceCounts:
        """The OccurrenceCounts table of a categorical attribute (Figure 4b).

        Raises:
            KeyError: for attributes that are not categorical in the schema.
        """
        try:
            return self._occurrences[attribute]
        except KeyError:
            raise KeyError(
                f"no occurrence counts for {attribute!r}; categorical "
                f"attributes: {sorted(self._occurrences)}"
            ) from None

    def splitpoints_table(self, attribute: str) -> SplitPointsTable:
        """The SplitPoints table of a numeric attribute (Figure 5b).

        Raises:
            KeyError: for attributes that are not numeric in the schema.
        """
        try:
            return self._splitpoints[attribute]
        except KeyError:
            raise KeyError(
                f"no splitpoints table for {attribute!r}; numeric "
                f"attributes: {sorted(self._splitpoints)}"
            ) from None

    def range_index(self, attribute: str) -> RangeIndex:
        """The sorted range-endpoint index of a numeric attribute."""
        try:
            return self._range_indexes[attribute]
        except KeyError:
            raise KeyError(
                f"no range index for {attribute!r}; numeric "
                f"attributes: {sorted(self._range_indexes)}"
            ) from None

    # -- NOverlap (Section 4.2) ----------------------------------------------

    def occ(self, attribute: str, value: Any) -> int:
        """``occ(v)`` = NOverlap of the single-value category ``A = v``."""
        if not self._memoize:
            return self.occurrence_counts(attribute).occ(value)
        per_attribute = self._occ_memo.get(attribute)
        if per_attribute is None:
            per_attribute = self._occ_memo[attribute] = {}
        occ = per_attribute.get(value)
        if occ is None:
            perf.count("stats.occ.memo_miss")
            occ = per_attribute[value] = self.occurrence_counts(attribute).occ(
                value
            )
        return occ

    def n_overlap_values(self, attribute: str, values: frozenset | set) -> int:
        """NOverlap of a multi-value categorical label ``A IN B``.

        Counted as queries whose IN-set intersects ``B``.  For single-value
        categories this equals ``occ(v)``; the general form supports
        broadened labels.
        """
        # occ() counts per-value; a query listing two values of B would be
        # double-counted by summing, which over-estimates NOverlap.  The
        # paper only ever needs single-value categorical labels, where the
        # two coincide; for multi-value labels we take the sum as an upper
        # bound, clamped to NAttr.
        total = sum(self.occ(attribute, v) for v in values)
        return min(total, self.n_attr(attribute))

    def n_overlap_range(
        self, attribute: str, low: float, high: float, high_inclusive: bool = False
    ) -> int:
        """NOverlap of a numeric label ``low <= A < high`` (Section 4.2)."""
        if not self._memoize:
            return self.range_index(attribute).count_overlapping(
                low, high, high_inclusive=high_inclusive
            )
        per_attribute = self._range_memo.get(attribute)
        if per_attribute is None:
            per_attribute = self._range_memo[attribute] = {}
        key = (low, high, high_inclusive)
        overlap = per_attribute.get(key)
        if overlap is None:
            perf.count("stats.range.memo_miss")
            overlap = per_attribute[key] = self.range_index(
                attribute
            ).count_overlapping(low, high, high_inclusive=high_inclusive)
        else:
            perf.count("stats.range.memo_hit")
        return overlap


#: Default grid spacing for numeric attributes absent an explicit setting.
DEFAULT_SEPARATION_INTERVAL = 1.0


def preprocess_workload(
    workload: Workload,
    schema: TableSchema,
    separation_intervals: Mapping[str, float] | None = None,
    memoize: bool = True,
) -> WorkloadStatistics:
    """Scan ``workload`` once and build every count table.

    Args:
        workload: the parsed query log.
        schema: the relation the queries target; attribute kinds decide
            which table each condition feeds.
        separation_intervals: per-attribute splitpoint grid spacing (the
            paper uses 5000/100/5 for price/square footage/year built);
            attributes not listed use :data:`DEFAULT_SEPARATION_INTERVAL`.
        memoize: enable the query-time lookup memos on the returned
            statistics (and on each SplitPoints table); disable only for
            measurement baselines.

    Condition dispatch is :func:`fold_query_conditions` — see its docstring
    for the exact rules, including IN conditions on numeric attributes
    (degenerate point ranges) and range conditions on categorical
    attributes (``NAttr`` only).
    """
    intervals = dict(separation_intervals or {})
    usage = AttributeUsageCounts()
    occurrences = {
        attr.name: OccurrenceCounts(attr.name)
        for attr in schema.categorical_attributes()
    }
    splitpoints = {
        attr.name: SplitPointsTable(
            attr.name,
            intervals.get(attr.name, DEFAULT_SEPARATION_INTERVAL),
            memoize=memoize,
        )
        for attr in schema.numeric_attributes()
    }
    range_indexes = {
        attr.name: RangeIndex(attr.name) for attr in schema.numeric_attributes()
    }

    with perf.span("workload.preprocess"), perf.timer("workload.preprocess"):
        for query in workload:
            fold_query_conditions(
                query, usage, occurrences, splitpoints, range_indexes
            )
        for index in range_indexes.values():
            index.finalize()
        perf.count("workload.queries_folded", len(workload))
    return WorkloadStatistics(
        schema=schema,
        usage=usage,
        occurrences=occurrences,
        splitpoints=splitpoints,
        range_indexes=range_indexes,
        memoize=memoize,
    )
