"""Metric value types: bounded-memory duration histograms.

Span and timer exits feed a :class:`Histogram` per name, so every
instrumented phase gets a latency *distribution* (p50/p95/p99), not just
a total.  The histogram keeps raw samples up to a limit — quantiles are
**exact** below the limit — then decimates deterministically (keep every
second retained sample, double the stride) so memory stays bounded no
matter how many observations arrive.  Decimation keeps an unbiased
systematic sample of the observation stream, which is the right
trade-off for wall-clock durations: tails stay visible, memory stays
O(limit).
"""

from __future__ import annotations

import math
from typing import Any


class Histogram:
    """A duration distribution with exact-until-bounded quantiles.

    ``count``/``total``/``minimum``/``maximum`` always reflect *every*
    observation; quantiles are computed from the retained sample set
    (exact while ``sample_stride == 1``).
    """

    __slots__ = ("count", "total", "minimum", "maximum", "_samples", "_limit",
                 "_stride", "_since_kept")

    def __init__(self, limit: int = 2048) -> None:
        if limit < 2:
            raise ValueError(f"sample limit must be >= 2, got {limit}")
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._samples: list[float] = []
        self._limit = limit
        self._stride = 1
        self._since_kept = 0

    # -- recording -----------------------------------------------------------

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self._since_kept += 1
        if self._since_kept >= self._stride:
            self._since_kept = 0
            self._samples.append(value)
            if len(self._samples) >= self._limit:
                # Deterministic decimation: halve the retained samples,
                # double the keep-stride.  Stays a systematic 1-in-stride
                # sample of the stream.
                self._samples = self._samples[::2]
                self._stride *= 2

    # -- statistics ----------------------------------------------------------

    @property
    def exact(self) -> bool:
        """True while quantiles are computed over every observation."""
        return self._stride == 1

    @property
    def sample_stride(self) -> int:
        """Current keep-every-Nth stride of the retained sample set."""
        return self._stride

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the retained samples.

        ``q=0`` returns the true minimum and ``q=1`` the true maximum
        (tracked exactly regardless of decimation).

        Raises:
            ValueError: if ``q`` is outside [0, 1] or nothing was observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            raise ValueError("quantile of an empty histogram")
        if q == 0.0:
            return self.minimum
        if q == 1.0:
            return self.maximum
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def summary(self) -> dict[str, Any]:
        """JSON-ready digest: count, sum, min/max/mean, p50/p95/p99."""
        if not self.count:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "exact": self.exact,
        }

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, mean={self.mean:.6f}, "
            f"stride={self._stride})"
        )
