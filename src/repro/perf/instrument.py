"""Zero-dependency instrumentation: counters, gauges, timers, spans.

The serving hot path (``categorize`` and everything under it) needs to be
*measurably* fast, which requires measurement that is cheap enough to leave
compiled in.  This module provides the primitives, all hanging off one
:class:`Instrumentation` registry:

* **counters** — named monotonically increasing integers (cache hits,
  partitionings computed/avoided, cost evaluations).  Counters accept
  **labels** (``count("cache.hit", kind="partition")``), canonicalized to
  a ``name{key=value,...}`` series key with sorted label keys.
* **gauges** — named last-value-wins floats (result-set sizes, tree
  depths), also labelable.
* **timers** — named flat wall-clock accumulators (total seconds + calls),
  for phases where nesting is irrelevant (e.g. workload preprocessing).
* **spans** — *nestable* wall-clock scopes forming a trace tree
  ("categorize" → "categorize.level" → "partition.categorical").  The
  current span is tracked in a :mod:`contextvars` context variable, so
  nesting is correct across generators and threads without any global
  stack.  Repeated spans with the same name under the same parent are
  aggregated (calls + total seconds) rather than appended, keeping the
  tree bounded regardless of input size.
* **duration histograms** — every span and timer exit feeds a per-name
  :class:`~repro.perf.metrics.Histogram`, so each phase reports
  p50/p95/p99 latency, not just totals.

**Sampling** (:meth:`Instrumentation.set_sampling`) keeps tracing
affordable under sustained traffic: the sampler decides once per *root*
span whether the whole trace (spans + their duration observations) is
recorded; nested spans inherit the decision.  Counters, gauges and flat
timers stay always-on.  See :mod:`repro.perf.sampling`.

Everything is **disabled by default**.  Disabled-mode overhead is one
module-global load, one attribute read and one branch per call site — the
perf benchmark (``benchmarks/test_perf_partition.py``) asserts it stays
within 5% of fully uninstrumented code, and bounds sampled-mode overhead
too.  Instrumented modules therefore never guard their calls; they just
call :func:`count` / :func:`span` / :func:`timer` unconditionally.

Typical use::

    from repro import perf

    perf.enable()
    perf.set_sampling(every=10)     # optional: production mode
    categorizer.categorize(rows, query)
    print(perf.format_report())     # text trace + counter table
    data = perf.report()            # JSON-ready dict
    perf.reset()

Exporters (JSON-lines, Prometheus text format) live in
:mod:`repro.perf.export`.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from contextvars import ContextVar
from typing import Any, Iterator

from repro.perf.metrics import Histogram
from repro.perf.sampling import Sampler


def series_key(name: str, labels: dict[str, Any]) -> str:
    """Canonical series key: ``name`` or ``name{k=v,...}``, keys sorted."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


def split_series_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`series_key` (exporters need name and labels apart)."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: dict[str, str] = {}
    for part in inner[:-1].split(","):
        label, _, value = part.partition("=")
        labels[label] = value
    return name, labels


class SpanNode:
    """One aggregated node of the trace tree.

    ``calls`` and ``seconds`` accumulate over every execution of the span
    at this position in the tree; ``children`` maps child span names to
    their aggregated nodes.
    """

    __slots__ = ("name", "calls", "seconds", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.seconds = 0.0
        self.children: dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        """Return (creating if needed) the aggregated child span ``name``."""
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def as_dict(self) -> dict[str, Any]:
        """Render this subtree as a JSON-ready dict."""
        return {
            "name": self.name,
            "calls": self.calls,
            "seconds": self.seconds,
            "children": [
                child.as_dict() for child in self.children.values()
            ],
        }

    def __repr__(self) -> str:
        return (
            f"SpanNode({self.name!r}, calls={self.calls}, "
            f"seconds={self.seconds:.6f}, children={len(self.children)})"
        )


#: Context marker meaning "inside a trace the sampler skipped".
_SUPPRESSED = object()


class _Span:
    """Context manager recording one execution of a named span."""

    __slots__ = (
        "_instrumentation", "_name", "_node", "_token", "_started", "_generation"
    )

    def __init__(self, instrumentation: "Instrumentation", name: str) -> None:
        self._instrumentation = instrumentation
        self._name = name

    def __enter__(self) -> SpanNode:
        inst = self._instrumentation
        parent = inst._current.get()
        if parent is None or parent is _SUPPRESSED:
            parent = inst.spans
        self._node = parent.child(self._name)
        self._token = inst._current.set(self._node)
        self._generation = inst._generation
        self._started = time.perf_counter()
        return self._node

    def __exit__(self, *exc_info: object) -> bool:
        elapsed = time.perf_counter() - self._started
        inst = self._instrumentation
        if inst._generation != self._generation:
            # reset() ran while this span was open: its node belongs to a
            # discarded tree.  Restoring the token would re-parent every
            # later span onto that stale node, so detach instead.
            inst._current.set(None)
            return False
        self._node.calls += 1
        self._node.seconds += elapsed
        inst._current.reset(self._token)
        inst._observe_duration(self._name, elapsed)
        return False


class _SuppressedTrace:
    """Scope for a root span the sampler skipped.

    Marks the context as suppressed so every nested ``span()`` call
    short-circuits to the shared null scope — a skipped trace costs one
    contextvar set/reset total, regardless of how deep it nests.
    """

    __slots__ = ("_instrumentation", "_token", "_generation")

    def __init__(self, instrumentation: "Instrumentation") -> None:
        self._instrumentation = instrumentation

    def __enter__(self) -> None:
        inst = self._instrumentation
        self._token = inst._current.set(_SUPPRESSED)
        self._generation = inst._generation
        return None

    def __exit__(self, *exc_info: object) -> bool:
        inst = self._instrumentation
        if inst._generation != self._generation:
            inst._current.set(None)
        else:
            inst._current.reset(self._token)
        return False


class _Timer:
    """Context manager accumulating into a flat named timer."""

    __slots__ = ("_instrumentation", "_name", "_started")

    def __init__(self, instrumentation: "Instrumentation", name: str) -> None:
        self._instrumentation = instrumentation
        self._name = name

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        elapsed = time.perf_counter() - self._started
        inst = self._instrumentation
        calls, seconds = inst.timers.get(self._name, (0, 0.0))
        inst.timers[self._name] = (calls + 1, seconds + elapsed)
        inst._observe_duration(self._name, elapsed)
        return False


class _NullScope:
    """Shared no-op context manager returned by every disabled call site."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class Instrumentation:
    """A registry of counters, gauges, timers, trace spans and histograms.

    One module-level instance (:data:`ACTIVE`) backs the convenience
    functions; independent instances can be created for isolated
    measurement (tests do this to avoid cross-talk).
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.counters: Counter[str] = Counter()
        self.gauges: dict[str, float] = {}
        #: name -> (calls, total seconds)
        self.timers: dict[str, tuple[int, float]] = {}
        #: span/timer name -> duration Histogram
        self.durations: dict[str, Histogram] = {}
        self.spans = SpanNode("<root>")
        self.sampler = Sampler()
        self._current: ContextVar[Any] = ContextVar(
            "repro_perf_current_span", default=None
        )
        # Bumped by reset(); spans open across a reset detach on exit
        # instead of restoring a context token into the discarded tree.
        self._generation = 0

    # -- lifecycle -----------------------------------------------------------

    def enable(self) -> None:
        """Turn recording on (idempotent)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn recording off; already-recorded data is kept."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded data and detach any in-flight span.

        Clearing the current-span context matters: a span left open across
        ``reset()`` must not re-parent later spans onto a node of the
        discarded tree (its own exit is guarded the same way).
        """
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()
        self.durations.clear()
        self.spans = SpanNode("<root>")
        self.sampler.reset()
        self._generation += 1
        self._current.set(None)

    # -- sampling ------------------------------------------------------------

    def set_sampling(
        self,
        rate: float | None = None,
        every: int | None = None,
        seed: int = 0x5EED,
    ) -> None:
        """Install a span-sampling policy (see :mod:`repro.perf.sampling`).

        ``rate=p`` keeps each root trace with probability p; ``every=n``
        keeps every n-th deterministically.  Counters, gauges and timers
        are unaffected.  Call :meth:`clear_sampling` to return to
        record-everything.
        """
        self.sampler = Sampler(rate=rate, every=every, seed=seed)

    def clear_sampling(self) -> None:
        """Remove any sampling policy (every trace is recorded again)."""
        self.sampler = Sampler()

    # -- recording -----------------------------------------------------------

    def count(self, name: str, amount: int = 1, **labels: Any) -> None:
        """Add ``amount`` to counter ``name`` (no-op while disabled)."""
        if self.enabled:
            self.counters[series_key(name, labels) if labels else name] += amount

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set gauge ``name`` to ``value`` (no-op while disabled)."""
        if self.enabled:
            self.gauges[series_key(name, labels) if labels else name] = value

    def span(self, name: str):
        """Context manager tracing a nestable span (no-op while disabled).

        Under sampling, a root span consults the sampler; nested spans
        inherit their root's keep/skip decision.
        """
        if not self.enabled:
            return _NULL_SCOPE
        current = self._current.get()
        if current is _SUPPRESSED:
            return _NULL_SCOPE
        if current is None and not self.sampler.sample():
            return _SuppressedTrace(self)
        return _Span(self, name)

    def timer(self, name: str):
        """Context manager accumulating a flat timer (no-op while disabled).

        Timers are always-on aggregates: they record even under sampling
        (only span traces are sampled).
        """
        if self.enabled:
            return _Timer(self, name)
        return _NULL_SCOPE

    def _observe_duration(self, name: str, elapsed: float) -> None:
        histogram = self.durations.get(name)
        if histogram is None:
            histogram = self.durations[name] = Histogram()
        histogram.observe(elapsed)

    # -- reporting -----------------------------------------------------------

    def report(self) -> dict[str, Any]:
        """All recorded data as a JSON-ready dict (keys sorted)."""
        return {
            "enabled": self.enabled,
            "sampling": self.sampler.as_dict(),
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "timers": {
                name: {"calls": calls, "seconds": seconds}
                for name, (calls, seconds) in sorted(self.timers.items())
            },
            "durations": {
                name: histogram.summary()
                for name, histogram in sorted(self.durations.items())
            },
            "spans": [child.as_dict() for child in self.spans.children.values()],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The report serialized as JSON."""
        return json.dumps(self.report(), indent=indent)

    def format_report(self) -> str:
        """A human-readable text report: spans, durations, timers, counters.

        Every section is stable-sorted by name, so two runs that record
        the same data render byte-identical reports regardless of
        insertion order.
        """
        lines: list[str] = ["== perf report =="]
        if self.sampler.mode != "always":
            info = self.sampler.as_dict()
            detail = (
                f"rate={info['rate']}" if "rate" in info else f"every={info['every']}"
            )
            lines.append(
                f"-- sampling: {info['mode']} ({detail}), "
                f"{info['sampled']} sampled / {info['skipped']} skipped --"
            )
        if self.spans.children:
            lines.append("-- spans (total seconds / calls) --")
            for _, child in sorted(self.spans.children.items()):
                lines.extend(self._format_span(child, depth=0))
        if self.durations:
            lines.append("-- durations (p50 / p95 / p99 seconds) --")
            for name, histogram in sorted(self.durations.items()):
                summary = histogram.summary()
                lines.append(
                    f"  {name}: {summary['p50']:.6f} / {summary['p95']:.6f} / "
                    f"{summary['p99']:.6f} ({summary['count']} samples)"
                )
        if self.timers:
            lines.append("-- timers --")
            for name, (calls, seconds) in sorted(self.timers.items()):
                lines.append(f"  {name}: {seconds:.6f}s / {calls} calls")
        if self.counters:
            lines.append("-- counters --")
            for name, value in sorted(self.counters.items()):
                lines.append(f"  {name}: {value}")
        if self.gauges:
            lines.append("-- gauges --")
            for name, value in sorted(self.gauges.items()):
                lines.append(f"  {name}: {value:g}")
        if len(lines) == 1:
            lines.append("(nothing recorded)")
        return "\n".join(lines)

    @staticmethod
    def _format_span(node: SpanNode, depth: int) -> Iterator[str]:
        yield f"  {'  ' * depth}{node.name}: {node.seconds:.6f}s / {node.calls} calls"
        for _, child in sorted(node.children.items()):
            yield from Instrumentation._format_span(child, depth + 1)


#: The process-wide default registry used by the module-level functions.
ACTIVE = Instrumentation()


def get() -> Instrumentation:
    """The active registry (for direct inspection of counters/spans)."""
    return ACTIVE


def enable() -> None:
    """Enable the active registry."""
    ACTIVE.enable()


def disable() -> None:
    """Disable the active registry."""
    ACTIVE.disable()


def reset() -> None:
    """Reset the active registry."""
    ACTIVE.reset()


def enabled() -> bool:
    """True when the active registry is recording."""
    return ACTIVE.enabled


def set_sampling(
    rate: float | None = None, every: int | None = None, seed: int = 0x5EED
) -> None:
    """Install a span-sampling policy on the active registry."""
    ACTIVE.set_sampling(rate=rate, every=every, seed=seed)


def clear_sampling() -> None:
    """Remove the active registry's sampling policy."""
    ACTIVE.clear_sampling()


def count(name: str, amount: int = 1, **labels: Any) -> None:
    """Increment a counter on the active registry (no-op while disabled)."""
    if ACTIVE.enabled:
        ACTIVE.count(name, amount, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge on the active registry (no-op while disabled)."""
    if ACTIVE.enabled:
        ACTIVE.gauge(name, value, **labels)


def span(name: str):
    """Trace a span on the active registry (no-op while disabled)."""
    if ACTIVE.enabled:
        return ACTIVE.span(name)
    return _NULL_SCOPE


def timer(name: str):
    """Time a flat phase on the active registry (no-op while disabled)."""
    if ACTIVE.enabled:
        return _Timer(ACTIVE, name)
    return _NULL_SCOPE


def report() -> dict[str, Any]:
    """The active registry's JSON-ready report."""
    return ACTIVE.report()


def format_report() -> str:
    """The active registry's text report."""
    return ACTIVE.format_report()
