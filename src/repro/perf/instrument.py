"""Zero-dependency instrumentation: counters, timers, and trace spans.

The serving hot path (``categorize`` and everything under it) needs to be
*measurably* fast, which requires measurement that is cheap enough to leave
compiled in.  This module provides three primitives, all hanging off one
:class:`Instrumentation` registry:

* **counters** — named monotonically increasing integers (cache hits,
  partitionings computed/avoided, cost evaluations).
* **timers** — named flat wall-clock accumulators (total seconds + calls),
  for phases where nesting is irrelevant (e.g. workload preprocessing).
* **spans** — *nestable* wall-clock scopes forming a trace tree
  ("categorize" → "categorize.level" → "partition.categorical").  The
  current span is tracked in a :mod:`contextvars` context variable, so
  nesting is correct across generators and threads without any global
  stack.  Repeated spans with the same name under the same parent are
  aggregated (calls + total seconds) rather than appended, keeping the
  tree bounded regardless of input size.

Everything is **disabled by default**.  Disabled-mode overhead is one
module-global load, one attribute read and one branch per call site — the
perf benchmark (``benchmarks/test_perf_partition.py``) asserts it stays
within 5% of fully uninstrumented code.  Instrumented modules therefore
never guard their calls; they just call :func:`count` / :func:`span` /
:func:`timer` unconditionally.

Typical use::

    from repro import perf

    perf.enable()
    categorizer.categorize(rows, query)
    print(perf.format_report())     # text trace + counter table
    data = perf.report()            # JSON-ready dict
    perf.reset()
"""

from __future__ import annotations

import json
import time
from collections import Counter
from contextvars import ContextVar
from typing import Any, Iterator


class SpanNode:
    """One aggregated node of the trace tree.

    ``calls`` and ``seconds`` accumulate over every execution of the span
    at this position in the tree; ``children`` maps child span names to
    their aggregated nodes.
    """

    __slots__ = ("name", "calls", "seconds", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.seconds = 0.0
        self.children: dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        """Return (creating if needed) the aggregated child span ``name``."""
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def as_dict(self) -> dict[str, Any]:
        """Render this subtree as a JSON-ready dict."""
        return {
            "name": self.name,
            "calls": self.calls,
            "seconds": self.seconds,
            "children": [
                child.as_dict() for child in self.children.values()
            ],
        }

    def __repr__(self) -> str:
        return (
            f"SpanNode({self.name!r}, calls={self.calls}, "
            f"seconds={self.seconds:.6f}, children={len(self.children)})"
        )


class _Span:
    """Context manager recording one execution of a named span."""

    __slots__ = ("_instrumentation", "_name", "_node", "_token", "_started")

    def __init__(self, instrumentation: "Instrumentation", name: str) -> None:
        self._instrumentation = instrumentation
        self._name = name

    def __enter__(self) -> SpanNode:
        inst = self._instrumentation
        parent = inst._current.get() or inst.spans
        self._node = parent.child(self._name)
        self._token = inst._current.set(self._node)
        self._started = time.perf_counter()
        return self._node

    def __exit__(self, *exc_info: object) -> bool:
        elapsed = time.perf_counter() - self._started
        self._node.calls += 1
        self._node.seconds += elapsed
        self._instrumentation._current.reset(self._token)
        return False


class _Timer:
    """Context manager accumulating into a flat named timer."""

    __slots__ = ("_instrumentation", "_name", "_started")

    def __init__(self, instrumentation: "Instrumentation", name: str) -> None:
        self._instrumentation = instrumentation
        self._name = name

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        elapsed = time.perf_counter() - self._started
        timers = self._instrumentation.timers
        calls, seconds = timers.get(self._name, (0, 0.0))
        timers[self._name] = (calls + 1, seconds + elapsed)
        return False


class _NullScope:
    """Shared no-op context manager returned by every disabled call site."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class Instrumentation:
    """A registry of counters, timers and trace spans.

    One module-level instance (:data:`ACTIVE`) backs the convenience
    functions; independent instances can be created for isolated
    measurement (tests do this to avoid cross-talk).
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.counters: Counter[str] = Counter()
        #: name -> (calls, total seconds)
        self.timers: dict[str, tuple[int, float]] = {}
        self.spans = SpanNode("<root>")
        self._current: ContextVar[SpanNode | None] = ContextVar(
            "repro_perf_current_span", default=None
        )

    # -- lifecycle -----------------------------------------------------------

    def enable(self) -> None:
        """Turn recording on (idempotent)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn recording off; already-recorded data is kept."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded counters, timers and spans."""
        self.counters.clear()
        self.timers.clear()
        self.spans = SpanNode("<root>")

    # -- recording -----------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (no-op while disabled)."""
        if self.enabled:
            self.counters[name] += amount

    def span(self, name: str):
        """Context manager tracing a nestable span (no-op while disabled)."""
        if self.enabled:
            return _Span(self, name)
        return _NULL_SCOPE

    def timer(self, name: str):
        """Context manager accumulating a flat timer (no-op while disabled)."""
        if self.enabled:
            return _Timer(self, name)
        return _NULL_SCOPE

    # -- reporting -----------------------------------------------------------

    def report(self) -> dict[str, Any]:
        """All recorded data as a JSON-ready dict."""
        return {
            "enabled": self.enabled,
            "counters": dict(sorted(self.counters.items())),
            "timers": {
                name: {"calls": calls, "seconds": seconds}
                for name, (calls, seconds) in sorted(self.timers.items())
            },
            "spans": [child.as_dict() for child in self.spans.children.values()],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The report serialized as JSON."""
        return json.dumps(self.report(), indent=indent)

    def format_report(self) -> str:
        """A human-readable text report: span tree, timers, counters."""
        lines: list[str] = ["== perf report =="]
        if self.spans.children:
            lines.append("-- spans (total seconds / calls) --")
            for child in self.spans.children.values():
                lines.extend(self._format_span(child, depth=0))
        if self.timers:
            lines.append("-- timers --")
            for name, (calls, seconds) in sorted(self.timers.items()):
                lines.append(f"  {name}: {seconds:.6f}s / {calls} calls")
        if self.counters:
            lines.append("-- counters --")
            for name, value in sorted(self.counters.items()):
                lines.append(f"  {name}: {value}")
        if len(lines) == 1:
            lines.append("(nothing recorded)")
        return "\n".join(lines)

    @staticmethod
    def _format_span(node: SpanNode, depth: int) -> Iterator[str]:
        yield f"  {'  ' * depth}{node.name}: {node.seconds:.6f}s / {node.calls} calls"
        for child in node.children.values():
            yield from Instrumentation._format_span(child, depth + 1)


#: The process-wide default registry used by the module-level functions.
ACTIVE = Instrumentation()


def get() -> Instrumentation:
    """The active registry (for direct inspection of counters/spans)."""
    return ACTIVE


def enable() -> None:
    """Enable the active registry."""
    ACTIVE.enable()


def disable() -> None:
    """Disable the active registry."""
    ACTIVE.disable()


def reset() -> None:
    """Reset the active registry."""
    ACTIVE.reset()


def enabled() -> bool:
    """True when the active registry is recording."""
    return ACTIVE.enabled


def count(name: str, amount: int = 1) -> None:
    """Increment a counter on the active registry (no-op while disabled)."""
    if ACTIVE.enabled:
        ACTIVE.counters[name] += amount


def span(name: str):
    """Trace a span on the active registry (no-op while disabled)."""
    if ACTIVE.enabled:
        return _Span(ACTIVE, name)
    return _NULL_SCOPE


def timer(name: str):
    """Time a flat phase on the active registry (no-op while disabled)."""
    if ACTIVE.enabled:
        return _Timer(ACTIVE, name)
    return _NULL_SCOPE


def report() -> dict[str, Any]:
    """The active registry's JSON-ready report."""
    return ACTIVE.report()


def format_report() -> str:
    """The active registry's text report."""
    return ACTIVE.format_report()
