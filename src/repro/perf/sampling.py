"""Trace sampling: keep instrumentation on under production traffic.

Full span tracing costs a few context-variable operations per scope,
which is fine for debugging but adds up on a serving hot path.  A
:class:`Sampler` decides, once per *root* span, whether that whole trace
is recorded; nested spans inherit the decision, so sampled traces are
always structurally complete (never a child without its parent).
Counters, gauges and flat timers are exempt — they are cheap aggregates
and stay always-on, which is the "always-on counters / sampled spans"
production mode.

Two sampling policies:

* **every-Nth** (``Sampler(every=n)``) — deterministic, records the 1st,
  (n+1)th, ... root span.  Best default: zero randomness, stable tests.
* **rate-based** (``Sampler(rate=p)``) — records each root span with
  probability ``p`` from a seeded PRNG.  Degenerate values short-circuit:
  ``rate=0`` records nothing, ``rate=1`` (like ``every=1``) records
  everything, identically to an unsampled registry.
"""

from __future__ import annotations

import random


class Sampler:
    """Per-root-trace keep/skip decisions, with kept/skipped accounting.

    The default sampler (no arguments) keeps everything — sampling is
    strictly opt-in.  ``sampled``/``skipped`` count the decisions made,
    so exporters can report the effective sampling ratio alongside the
    (scaled-down) span totals.
    """

    __slots__ = ("rate", "every", "sampled", "skipped", "_seed", "_rng", "_tick")

    def __init__(
        self,
        rate: float | None = None,
        every: int | None = None,
        seed: int = 0x5EED,
    ) -> None:
        if rate is not None and every is not None:
            raise ValueError("pass either rate= or every=, not both")
        if rate is not None and not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate must be in [0, 1], got {rate}")
        if every is not None and every < 1:
            raise ValueError(f"sampling period must be >= 1, got {every}")
        self.rate = rate
        self.every = every
        self.sampled = 0
        self.skipped = 0
        self._seed = seed
        self._rng = random.Random(seed)
        self._tick = 0

    @property
    def mode(self) -> str:
        """``"always"``, ``"rate"`` or ``"every"``."""
        if self.rate is not None:
            return "rate"
        if self.every is not None and self.every > 1:
            return "every"
        return "always"

    def sample(self) -> bool:
        """Decide one root trace; updates the sampled/skipped counts."""
        if self.rate is not None:
            if self.rate >= 1.0:
                keep = True
            elif self.rate <= 0.0:
                keep = False
            else:
                keep = self._rng.random() < self.rate
        elif self.every is not None and self.every > 1:
            keep = self._tick % self.every == 0
            self._tick += 1
        else:
            keep = True
        if keep:
            self.sampled += 1
        else:
            self.skipped += 1
        return keep

    def reset(self) -> None:
        """Clear the decision counts and restart the deterministic stream."""
        self.sampled = 0
        self.skipped = 0
        self._tick = 0
        self._rng = random.Random(self._seed)

    def as_dict(self) -> dict:
        """JSON-ready description of the policy and its decision counts."""
        info: dict = {
            "mode": self.mode,
            "sampled": self.sampled,
            "skipped": self.skipped,
        }
        if self.rate is not None:
            info["rate"] = self.rate
        if self.every is not None:
            info["every"] = self.every
        return info

    def __repr__(self) -> str:
        return (
            f"Sampler(mode={self.mode!r}, sampled={self.sampled}, "
            f"skipped={self.skipped})"
        )
