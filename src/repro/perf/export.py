"""Metric exporters: JSON-lines events and Prometheus text exposition.

Two wire formats over one :class:`~repro.perf.instrument.Instrumentation`
snapshot:

* :func:`export_jsonl` — one JSON object per line, one line per series
  (counter / gauge / timer / duration histogram / span), preceded by a
  ``meta`` line carrying the sampling policy.  Meant for log shipping:
  append the lines to a file and any JSON-lines consumer can aggregate.
* :func:`export_prometheus` — the Prometheus text exposition format
  (``# TYPE`` declarations plus ``name{labels} value`` samples), ready to
  serve from a ``/metrics`` endpoint or push through a textfile collector.
  Metric names are sanitized to ``[a-zA-Z_][a-zA-Z0-9_]*`` and prefixed
  ``repro_``; duration histograms export as summaries with ``quantile``
  labels.

Both are pure functions of the registry — exporting never mutates or
resets recorded data, so repeated scrapes are safe.
"""

from __future__ import annotations

import json
import re
from typing import Any, Iterator

from repro.perf.instrument import (
    ACTIVE,
    Instrumentation,
    SpanNode,
    split_series_key,
)

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize(name: str) -> str:
    """Mangle a dotted series name into a legal Prometheus identifier."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = f"_{cleaned}"
    return cleaned


def _escape_label_value(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labels: dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize(key)}="{_escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return f"{{{inner}}}"


def _walk_spans(node: SpanNode, prefix: str) -> Iterator[tuple[str, SpanNode]]:
    path = f"{prefix}/{node.name}" if prefix else node.name
    yield path, node
    for _, child in sorted(node.children.items()):
        yield from _walk_spans(child, path)


def _span_rows(inst: Instrumentation) -> list[tuple[str, SpanNode]]:
    rows: list[tuple[str, SpanNode]] = []
    for _, child in sorted(inst.spans.children.items()):
        rows.extend(_walk_spans(child, ""))
    return rows


# -- JSON lines ------------------------------------------------------------


def export_jsonl(inst: Instrumentation | None = None) -> str:
    """Serialize the registry as JSON-lines (one event object per line)."""
    inst = ACTIVE if inst is None else inst
    lines: list[str] = [
        json.dumps({"type": "meta", "sampling": inst.sampler.as_dict()})
    ]
    for key, value in sorted(inst.counters.items()):
        name, labels = split_series_key(key)
        lines.append(
            json.dumps(
                {"type": "counter", "name": name, "labels": labels, "value": value}
            )
        )
    for key, value in sorted(inst.gauges.items()):
        name, labels = split_series_key(key)
        lines.append(
            json.dumps(
                {"type": "gauge", "name": name, "labels": labels, "value": value}
            )
        )
    for name, (calls, seconds) in sorted(inst.timers.items()):
        lines.append(
            json.dumps(
                {"type": "timer", "name": name, "calls": calls, "seconds": seconds}
            )
        )
    for name, histogram in sorted(inst.durations.items()):
        lines.append(
            json.dumps(
                {"type": "histogram", "name": name, **histogram.summary()}
            )
        )
    for path, node in _span_rows(inst):
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "path": path,
                    "calls": node.calls,
                    "seconds": node.seconds,
                }
            )
        )
    return "\n".join(lines) + "\n"


def registry_snapshot(inst: Instrumentation | None = None) -> dict[str, Any]:
    """The whole registry as one JSON-ready object (``--format json``).

    Same traversal as :func:`export_jsonl`, shaped as a single document
    instead of a line stream — for tools that want ``json.load`` rather
    than a JSONL reader.
    """
    inst = ACTIVE if inst is None else inst
    counters = []
    for key, value in sorted(inst.counters.items()):
        name, labels = split_series_key(key)
        counters.append({"name": name, "labels": labels, "value": value})
    gauges = []
    for key, value in sorted(inst.gauges.items()):
        name, labels = split_series_key(key)
        gauges.append({"name": name, "labels": labels, "value": value})
    return {
        "sampling": inst.sampler.as_dict(),
        "counters": counters,
        "gauges": gauges,
        "timers": [
            {"name": name, "calls": calls, "seconds": seconds}
            for name, (calls, seconds) in sorted(inst.timers.items())
        ],
        "histograms": [
            {"name": name, **histogram.summary()}
            for name, histogram in sorted(inst.durations.items())
        ],
        "spans": [
            {"path": path, "calls": node.calls, "seconds": node.seconds}
            for path, node in _span_rows(inst)
        ],
    }


def export_json(inst: Instrumentation | None = None) -> str:
    """Serialize :func:`registry_snapshot` as pretty-printed JSON."""
    return json.dumps(registry_snapshot(inst), indent=2) + "\n"


# -- Prometheus text format ------------------------------------------------


def export_prometheus(inst: Instrumentation | None = None) -> str:
    """Serialize the registry in the Prometheus text exposition format."""
    inst = ACTIVE if inst is None else inst
    lines: list[str] = []

    # Counters: group series by base name so each gets one TYPE line.
    grouped: dict[str, list[tuple[dict[str, Any], int]]] = {}
    for key, value in sorted(inst.counters.items()):
        name, labels = split_series_key(key)
        grouped.setdefault(name, []).append((labels, value))
    for name, series in grouped.items():
        metric = f"repro_{_sanitize(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        for labels, value in series:
            lines.append(f"{metric}{_format_labels(labels)} {value}")

    grouped_gauges: dict[str, list[tuple[dict[str, Any], float]]] = {}
    for key, value in sorted(inst.gauges.items()):
        name, labels = split_series_key(key)
        grouped_gauges.setdefault(name, []).append((labels, value))
    # serve.cache_hit_ratio is *derived at scrape time* from the result
    # cache's hit/miss counters — a ratio is a gauge, and materializing it
    # per-request would just be a slower way to compute hits/(hits+misses).
    hits = sum(
        value
        for key, value in inst.counters.items()
        if split_series_key(key)[0] == "service.cache_hits"
    )
    misses = sum(
        value
        for key, value in inst.counters.items()
        if split_series_key(key)[0] == "service.cache_misses"
    )
    if hits + misses:
        grouped_gauges.setdefault("serve.cache_hit_ratio", []).append(
            ({}, hits / (hits + misses))
        )
    for name, gauge_series in grouped_gauges.items():
        metric = f"repro_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} gauge")
        for labels, value in gauge_series:
            lines.append(f"{metric}{_format_labels(labels)} {_format_value(value)}")

    if inst.timers:
        lines.append("# TYPE repro_timer_seconds_total counter")
        for name, (_, seconds) in sorted(inst.timers.items()):
            labels = _format_labels({"name": name})
            lines.append(f"repro_timer_seconds_total{labels} {_format_value(seconds)}")
        lines.append("# TYPE repro_timer_calls_total counter")
        for name, (calls, _) in sorted(inst.timers.items()):
            labels = _format_labels({"name": name})
            lines.append(f"repro_timer_calls_total{labels} {calls}")

    if inst.durations:
        lines.append("# TYPE repro_duration_seconds summary")
        for name, histogram in sorted(inst.durations.items()):
            summary = histogram.summary()
            if not summary["count"]:
                continue
            for quantile in ("0.5", "0.95", "0.99"):
                labels = _format_labels({"name": name, "quantile": quantile})
                value = histogram.quantile(float(quantile))
                lines.append(f"repro_duration_seconds{labels} {_format_value(value)}")
            labels = _format_labels({"name": name})
            lines.append(
                f"repro_duration_seconds_sum{labels} {_format_value(summary['sum'])}"
            )
            lines.append(f"repro_duration_seconds_count{labels} {summary['count']}")

    span_rows = _span_rows(inst)
    if span_rows:
        lines.append("# TYPE repro_span_seconds_total counter")
        for path, node in span_rows:
            labels = _format_labels({"path": path})
            lines.append(
                f"repro_span_seconds_total{labels} {_format_value(node.seconds)}"
            )
        lines.append("# TYPE repro_span_calls_total counter")
        for path, node in span_rows:
            labels = _format_labels({"path": path})
            lines.append(f"repro_span_calls_total{labels} {node.calls}")

    sampling = inst.sampler.as_dict()
    lines.append("# TYPE repro_sampling_decisions_total counter")
    for outcome in ("sampled", "skipped"):
        labels = _format_labels({"outcome": outcome})
        lines.append(f"repro_sampling_decisions_total{labels} {sampling[outcome]}")

    return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    """Render a sample value (Prometheus accepts any float literal)."""
    return repr(float(value))
