"""Instrumentation for the serving hot path (counters, timers, spans).

Import the package and call the module-level functions::

    from repro import perf

    perf.enable()
    ...               # instrumented code runs
    print(perf.format_report())

See :mod:`repro.perf.instrument` for the full API and the design notes
(contextvar-based span nesting, disabled-mode overhead budget).
"""

from repro.perf.instrument import (
    ACTIVE,
    Instrumentation,
    SpanNode,
    count,
    disable,
    enable,
    enabled,
    format_report,
    get,
    report,
    reset,
    span,
    timer,
)

__all__ = [
    "ACTIVE",
    "Instrumentation",
    "SpanNode",
    "count",
    "disable",
    "enable",
    "enabled",
    "format_report",
    "get",
    "report",
    "reset",
    "span",
    "timer",
]
