"""Observability for the serving hot path.

Counters, gauges, flat timers, nestable trace spans, per-phase duration
histograms (p50/p95/p99), trace sampling for production, and exporters
(JSON-lines, Prometheus text format).  Import the package and call the
module-level functions::

    from repro import perf

    perf.enable()
    perf.set_sampling(every=10)   # optional: production sampling
    ...                           # instrumented code runs
    print(perf.format_report())
    print(perf.export_prometheus())

See :mod:`repro.perf.instrument` for the full API and the design notes
(contextvar-based span nesting, root-level trace sampling, disabled-mode
overhead budget), :mod:`repro.perf.export` for the wire formats, and
``docs/observability.md`` for the user guide.
"""

from repro.perf.export import (
    export_json,
    export_jsonl,
    export_prometheus,
    registry_snapshot,
)
from repro.perf.instrument import (
    ACTIVE,
    Instrumentation,
    SpanNode,
    clear_sampling,
    count,
    disable,
    enable,
    enabled,
    format_report,
    gauge,
    get,
    report,
    reset,
    series_key,
    set_sampling,
    span,
    split_series_key,
    timer,
)
from repro.perf.metrics import Histogram
from repro.perf.sampling import Sampler

__all__ = [
    "ACTIVE",
    "Histogram",
    "Instrumentation",
    "Sampler",
    "SpanNode",
    "clear_sampling",
    "count",
    "disable",
    "enable",
    "enabled",
    "export_json",
    "export_jsonl",
    "export_prometheus",
    "registry_snapshot",
    "format_report",
    "gauge",
    "get",
    "report",
    "reset",
    "series_key",
    "set_sampling",
    "span",
    "split_series_key",
    "timer",
]
