"""ASCII charts: scatter plots and bar charts for study outputs.

The benchmark harness prints the paper's figures as tables; these helpers
add terminal-friendly visual forms — a scatter for Figure 7, horizontal
bars for the per-task comparisons — so a bench log can be eyeballed the
way the paper's figures are.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def scatter_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render an ASCII scatter of (x, y) points with axis extents.

    Points are binned onto a width x height character grid; cells with
    multiple points render density (``.`` ``o`` ``@``).

    Raises:
        ValueError: on mismatched or empty inputs.
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if not xs:
        raise ValueError("nothing to plot")
    x_max = max(max(xs), 1e-12)
    y_max = max(max(ys), 1e-12)
    grid = [[0] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        column = min(width - 1, int(x / x_max * (width - 1)))
        row = min(height - 1, int(y / y_max * (height - 1)))
        grid[height - 1 - row][column] += 1

    def glyph(count: int) -> str:
        if count == 0:
            return " "
        if count == 1:
            return "."
        if count <= 3:
            return "o"
        return "@"

    lines = [f"{y_label} (max {y_max:g})"]
    for row in grid:
        lines.append("|" + "".join(glyph(c) for c in row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} (max {x_max:g})")
    return "\n".join(lines)


def bar_chart(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[str],
    width: int = 40,
    value_format: str = "{:.1f}",
) -> str:
    """Render grouped horizontal bars: one group per x label, one bar per series.

    NaN values render as an empty bar annotated ``-`` (the paper's missing
    Task 1/Attr-Cost cell renders this way).
    """
    finite = [
        v for values in series.values() for v in values if not math.isnan(v)
    ]
    maximum = max(finite, default=1.0) or 1.0
    name_width = max((len(name) for name in series), default=0)
    lines: list[str] = []
    for i, x_label in enumerate(x_labels):
        lines.append(f"{x_label}:")
        for name, values in series.items():
            value = values[i] if i < len(values) else math.nan
            if math.isnan(value):
                bar, rendered = "", "-"
            else:
                bar = "#" * max(1, int(value / maximum * width)) if value > 0 else ""
                rendered = value_format.format(value)
            lines.append(f"  {name.ljust(name_width)} {bar} {rendered}")
    return "\n".join(lines)
