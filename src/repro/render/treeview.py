"""ASCII treeview rendering of category trees (the Figure 1 view).

The paper's user study rendered trees "using a treeview control ... via
the web browser"; this module is the terminal equivalent, used by the
examples and handy when debugging partitionings.  Optionally annotates
each node with its tuple count and its estimated P / CostAll.
"""

from __future__ import annotations

from repro.core.cost import CostModel
from repro.core.tree import CategoryNode, CategoryTree


def render_tree(
    tree: CategoryTree,
    max_depth: int | None = None,
    max_children: int | None = None,
    cost_model: CostModel | None = None,
) -> str:
    """Render a category tree as indented ASCII.

    Args:
        tree: the tree to render.
        max_depth: deepest level to show (None = all).
        max_children: per node, show at most this many children followed by
            an ellipsis line (None = all).
        cost_model: when given, each node is annotated with P(C) and
            CostAll(C).
    """
    annotations = cost_model.annotate(tree) if cost_model is not None else None
    lines: list[str] = []
    _render_node(tree.root, "", True, lines, max_depth, max_children, annotations)
    return "\n".join(lines)


def _render_node(
    node: CategoryNode,
    prefix: str,
    is_last: bool,
    lines: list[str],
    max_depth: int | None,
    max_children: int | None,
    annotations: dict | None,
) -> None:
    connector = "" if node.is_root else ("`-- " if is_last else "|-- ")
    text = f"{node.display()} [{node.tuple_count}]"
    if annotations is not None:
        costs = annotations[id(node)]
        text += (
            f" (P={costs.exploration_probability:.2f}, "
            f"CostAll={costs.cost_all:.1f})"
        )
    lines.append(prefix + connector + text)
    if max_depth is not None and node.level >= max_depth:
        if node.children:
            child_prefix = prefix + ("" if node.is_root else ("    " if is_last else "|   "))
            lines.append(child_prefix + f"... ({len(node.children)} subcategories)")
        return
    children = node.children
    shown = children if max_children is None else children[:max_children]
    child_prefix = prefix + ("" if node.is_root else ("    " if is_last else "|   "))
    for i, child in enumerate(shown):
        last = i == len(shown) - 1 and len(shown) == len(children)
        _render_node(
            child, child_prefix, last, lines, max_depth, max_children, annotations
        )
    if len(shown) < len(children):
        lines.append(child_prefix + f"`-- ... ({len(children) - len(shown)} more)")


def summarize_tree(tree: CategoryTree) -> str:
    """One-paragraph structural summary: technique, levels, sizes."""
    attributes = tree.level_attributes()
    leaf_sizes = [leaf.tuple_count for leaf in tree.leaves()]
    biggest = max(leaf_sizes, default=0)
    return (
        f"technique={tree.technique} result_size={tree.result_size} "
        f"categories={tree.category_count()} depth={tree.depth()} "
        f"level_attributes={attributes} max_leaf={biggest}"
    )
