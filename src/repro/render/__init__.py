"""Rendering: ASCII treeview and chart helpers."""

from repro.render.figures import bar_chart, scatter_plot
from repro.render.treeview import render_tree, summarize_tree

__all__ = ["bar_chart", "render_tree", "scatter_plot", "summarize_tree"]
