"""Per-attribute statistics over tables and row sets.

The categorizer needs only a small statistical surface from its substrate:
distinct-value inventories for categorical attributes, numeric extents for
range partitioning, and value-frequency counts for diagnostics.  Computing
these once per (row set, attribute) pair and caching them keeps the
level-by-level algorithm's inner loop cheap.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any

from repro.relational.table import RowSet, Table


@dataclass(frozen=True)
class NumericStats:
    """Summary statistics of a numeric attribute over some row set."""

    attribute: str
    count: int
    null_count: int
    minimum: float
    maximum: float
    mean: float

    @property
    def extent(self) -> float:
        """Return ``maximum - minimum``."""
        return self.maximum - self.minimum


@dataclass(frozen=True)
class CategoricalStats:
    """Summary statistics of a categorical attribute over some row set."""

    attribute: str
    count: int
    null_count: int
    frequencies: tuple[tuple[Any, int], ...]

    @property
    def distinct_count(self) -> int:
        """Number of distinct non-NULL values."""
        return len(self.frequencies)

    def most_common(self, n: int | None = None) -> tuple[tuple[Any, int], ...]:
        """Return the ``n`` most frequent (value, count) pairs."""
        if n is None:
            return self.frequencies
        return self.frequencies[:n]


def numeric_stats(rows: RowSet | Table, attribute: str) -> NumericStats | None:
    """Compute :class:`NumericStats` for ``attribute`` over ``rows``.

    Returns None when every value is NULL (or the row set is empty), which
    callers treat as "this attribute cannot partition this node".
    """
    view = rows.all_rows() if isinstance(rows, Table) else rows
    values = [v for v in view.values(attribute) if v is not None]
    null_count = len(view) - len(values)
    if not values:
        return None
    return NumericStats(
        attribute=attribute,
        count=len(values),
        null_count=null_count,
        minimum=float(min(values)),
        maximum=float(max(values)),
        mean=sum(values) / len(values),
    )


def categorical_stats(rows: RowSet | Table, attribute: str) -> CategoricalStats:
    """Compute :class:`CategoricalStats` for ``attribute`` over ``rows``.

    Frequencies are ordered most-common first, ties broken by value repr for
    determinism (the partitioner re-orders by workload occurrence counts
    anyway; determinism here keeps tests stable).
    """
    view = rows.all_rows() if isinstance(rows, Table) else rows
    # Counter(iterable) counts at C speed; NULLs are counted like any other
    # key and then split out, which beats a Python-level loop per value.
    counter: Counter[Any] = Counter(view.values(attribute))
    null_count = counter.pop(None, 0)
    ordered = tuple(
        sorted(counter.items(), key=lambda item: (-item[1], repr(item[0])))
    )
    return CategoricalStats(
        attribute=attribute,
        count=sum(counter.values()),
        null_count=null_count,
        frequencies=ordered,
    )


def value_counts(rows: RowSet | Table, attribute: str) -> dict[Any, int]:
    """Return a plain {value: count} dict of non-NULL values."""
    return dict(categorical_stats(rows, attribute).frequencies)
