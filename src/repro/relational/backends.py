"""Storage backends for :class:`~repro.relational.table.Table`.

A backend owns the physical column representation; the ``Table`` keeps the
schema, coercion, and the ``RowSet`` algebra, and delegates storage through
the :class:`StorageBackend` protocol.  Three implementations ship (the
third lives in :mod:`repro.relational.sharded`):

* :class:`RowStore` (``backend="rows"``) — one plain Python list per
  attribute.  Values are stored as the objects coercion produced, which is
  the fastest layout for small tables and the most forgiving one (any
  coercible value fits, including arbitrary-precision ints).
* :class:`ColumnStore` (``backend="columnar"``) — packed typed columns:
  ``array('q')`` / ``array('d')`` for INT / FLOAT attributes (8 bytes per
  value instead of a ~28+-byte boxed object) and dictionary-encoded
  TEXT / BOOL columns (an ``array('i')`` of integer codes plus one shared
  decode list).  NULLs are a side structure: a small set of null positions
  for numeric columns, the reserved code ``-1`` for dictionary columns.
* :class:`~repro.relational.sharded.ShardedBackend` (``backend="sharded"``)
  — the ``ColumnStore`` layout partitioned into per-shard shared-memory
  segments, with ``select_indices`` / ``bucket_numeric`` /
  ``build_groupby`` parallelized across a persistent worker pool.  Same
  semantics, more cores; see that module and ``docs/storage.md``.

The columnar payoff is **column-at-a-time selection**: instead of asking
``predicate.matches(row)`` once per row (a Python call plus a dict-protocol
lookup each), :meth:`ColumnStore.select_indices` evaluates one conjunct
over the whole candidate index list as a single list comprehension against
the packed array — IN-sets become integer-code membership tests, ranges
become chained float compares.  Conjuncts are applied in order, each
narrowing the candidate list, which preserves the row-at-a-time engine's
left-to-right short-circuit semantics exactly.  Any conjunct the backend
cannot vectorize (e.g. a range over a TEXT column, which must raise
``TypeError`` exactly like the row path) is handed back to the caller as a
*leftover* predicate to evaluate row-at-a-time over the already-narrowed
candidates — so the fast path never changes semantics, it only changes
speed.

Dictionary encoding assumes moderate-cardinality columns (the paper's
categorical attributes: city, neighborhood, property type).  A TEXT column
with millions of distinct values still works but degrades to one dict
entry per value; the row backend is the better choice there — see
``docs/storage.md`` for the decision table.

Limits: ``ColumnStore`` packs INT values into 64-bit storage, so ints
outside ``[-2**63, 2**63)`` raise ``OverflowError`` on insert; the row
backend accepts them.
"""

from __future__ import annotations

import bisect
import math
from array import array
from typing import Any, Iterator, Mapping, Protocol, Sequence

from repro.relational.expressions import (
    ComparisonPredicate,
    Conjunction,
    InPredicate,
    IsNullPredicate,
    Predicate,
    RangePredicate,
    TruePredicate,
    comparison_operator,
)
from repro.relational.schema import TableSchema
from repro.relational.snapio import (
    Container,
    SnapshotMismatch,
    base_manifest,
    write_container,
)
from repro.relational.types import DataType

#: Backend registry: name -> constructor taking the schema.
BACKEND_NAMES = ("rows", "columnar", "sharded")


class StorageBackend(Protocol):
    """The physical storage contract ``Table`` delegates to.

    All values crossing this interface are already schema-coerced; backends
    never validate, they only pack.  Row positions are dense ``0..n-1`` in
    insertion order and never change (the engine is append-only).
    """

    #: Short name used in ``backend=`` parameters and serving cache keys.
    name: str

    def column(self, name: str) -> Sequence[Any]:
        """The full column as a sequence of logical values (NULL -> None)."""
        ...

    def append_row(self, values: Sequence[Any]) -> None:
        """Append one coerced tuple, given in schema attribute order.

        Must be atomic: a failure (e.g. int64 overflow) leaves no column
        torn.
        """
        ...

    def load_columns(self, columns: Mapping[str, Sequence[Any]]) -> None:
        """Bulk-append one coerced sequence per attribute (equal lengths)."""
        ...

    def gather(self, name: str, indices: Sequence[int]) -> list[Any]:
        """The column's logical values at ``indices``, in that order."""
        ...

    def build_groupby(self, name: str) -> dict[Any, tuple[int, ...]]:
        """value -> ascending row positions, NULLs under the ``None`` key."""
        ...

    def select_indices(
        self, predicate: Predicate, indices: Sequence[int]
    ) -> tuple[Sequence[int], Predicate | None] | None:
        """Filter ``indices`` by ``predicate``, column-at-a-time.

        Returns ``None`` when this backend has no fast path at all (the
        caller evaluates the predicate row-at-a-time), or a pair
        ``(narrowed, leftover)`` where ``leftover`` is the suffix of
        conjuncts the backend could not vectorize (``None`` when fully
        evaluated).  The caller must apply ``leftover`` row-at-a-time over
        ``narrowed`` to finish the selection.
        """
        ...

    def bucket_numeric(
        self, name: str, indices: Sequence[int], boundaries: Sequence[float]
    ) -> tuple[list[list[int]], int] | None:
        """Bucket ``indices`` by ascending ``boundaries`` over one column.

        Bucket ``k`` holds rows with ``boundaries[k] <= value <
        boundaries[k+1]`` (the last bucket closes at ``boundaries[-1]``);
        NULLs, non-finite values (NaN / ±inf), and out-of-range values are
        dropped and counted.  Returns the per-bucket index lists plus the
        dropped count, or ``None`` when this backend has no fast path (the
        caller falls back to gather-and-classify, which must apply the
        same drop rules).
        """
        ...


def make_backend(name: str, schema: TableSchema, **options: Any) -> Any:
    """Instantiate the backend called ``name`` for ``schema``.

    ``options`` are backend-specific constructor keywords — the sharded
    backend takes ``workers`` / ``min_parallel_rows`` / ``executor``; the
    in-process backends take none (passing any is a ``TypeError``, not a
    silent ignore, so a typo'd option cannot change which pool you get).
    """
    if name == "sharded":
        # Imported lazily: the sharded module depends on this one, and the
        # two in-process backends must not pay its multiprocessing imports.
        from repro.relational.sharded import ShardedBackend

        return ShardedBackend(schema, **options)
    if name in ("rows", "columnar"):
        if options:
            raise TypeError(
                f"backend {name!r} takes no options, got {sorted(options)}"
            )
        return RowStore(schema) if name == "rows" else ColumnStore(schema)
    raise ValueError(
        f"unknown storage backend {name!r}; choose from {BACKEND_NAMES}"
    )


# ---------------------------------------------------------------------------
# Row backend: one Python list per attribute (the original layout).
# ---------------------------------------------------------------------------


class RowStore:
    """List-per-column storage; no vectorized paths, maximal generality."""

    name = "rows"

    def __init__(self, schema: TableSchema) -> None:
        self._columns: dict[str, list[Any]] = {name: [] for name in schema.names()}
        self._ordered: list[list[Any]] = [self._columns[n] for n in schema.names()]

    def column(self, name: str) -> list[Any]:
        return self._columns[name]

    def append_row(self, values: Sequence[Any]) -> None:
        for column, value in zip(self._ordered, values):
            column.append(value)

    def load_columns(self, columns: Mapping[str, Sequence[Any]]) -> None:
        for name, column in self._columns.items():
            column.extend(columns[name])

    def gather(self, name: str, indices: Sequence[int]) -> list[Any]:
        column = self._columns[name]
        return [column[i] for i in indices]

    def build_groupby(self, name: str) -> dict[Any, tuple[int, ...]]:
        buckets: dict[Any, list[int]] = {}
        for position, value in enumerate(self._columns[name]):
            buckets.setdefault(value, []).append(position)
        return {value: tuple(ids) for value, ids in buckets.items()}

    def select_indices(
        self, predicate: Predicate, indices: Sequence[int]
    ) -> tuple[Sequence[int], Predicate | None] | None:
        return None  # no fast path: evaluate row-at-a-time

    def bucket_numeric(
        self, name: str, indices: Sequence[int], boundaries: Sequence[float]
    ) -> tuple[list[list[int]], int] | None:
        return None  # no fast path: gather and classify per value


# ---------------------------------------------------------------------------
# Columnar backend: packed typed columns + dictionary encoding.
# ---------------------------------------------------------------------------


class NumericColumn:
    """A packed numeric column: an ``array`` plus a set of NULL positions.

    The array holds ``0`` at NULL positions (a sentinel that keeps the
    array dense); the ``nulls`` set is authoritative.  Most columns have no
    NULLs, and every read path branches on ``nulls`` being empty so the
    common case pays nothing for the side structure.
    """

    __slots__ = ("_data", "_nulls")

    typecode = "d"

    def __init__(self) -> None:
        self._data: array = array(self.typecode)
        self._nulls: set[int] = set()

    # -- writes ------------------------------------------------------------

    def append(self, value: Any) -> None:
        if value is None:
            self._nulls.add(len(self._data))
            self._data.append(0)
        else:
            self._data.append(value)

    def extend(self, values: Sequence[Any]) -> None:
        data = self._data
        base = len(data)
        try:
            data.extend(values)
        except (TypeError, OverflowError):
            # A None (or an unpackable value) somewhere in the batch:
            # undo the partial extend and take the per-value path.
            del data[base:]
            for value in values:
                self.append(value)

    def pop(self) -> None:
        """Remove the last value (append_row atomicity rollback)."""
        self._data.pop()
        self._nulls.discard(len(self._data))

    # -- reads -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, position: int) -> Any:
        if position < 0:
            position += len(self._data)
        if position in self._nulls:
            return None
        return self._data[position]

    def __iter__(self) -> Iterator[Any]:
        if not self._nulls:
            return iter(self._data)
        nulls = self._nulls
        return (
            None if i in nulls else v for i, v in enumerate(self._data)
        )

    def gather(self, indices: Sequence[int]) -> list[Any]:
        data = self._data
        if not self._nulls:
            return [data[i] for i in indices]
        nulls = self._nulls
        return [None if i in nulls else data[i] for i in indices]


class IntColumn(NumericColumn):
    """64-bit signed integer column."""

    __slots__ = ()
    typecode = "q"


class FloatColumn(NumericColumn):
    """IEEE double column."""

    __slots__ = ()
    typecode = "d"


class DictColumn:
    """A dictionary-encoded column for TEXT / BOOL attributes.

    Values are interned once into ``decode`` (code -> value) / ``encode``
    (value -> code); the column itself is an ``array('i')`` of codes with
    ``-1`` reserved for NULL.  Equality-style predicates (IN, ``=``)
    evaluate as integer membership over the code array without touching
    the strings at all; ordering comparisons precompute the matching code
    set over the (small) dictionary.
    """

    __slots__ = ("_codes", "_decode", "_encode")

    NULL_CODE = -1

    def __init__(self) -> None:
        self._codes: array = array("i")
        self._decode: list[Any] = []
        self._encode: dict[Any, int] = {}

    # -- writes ------------------------------------------------------------

    def append(self, value: Any) -> None:
        if value is None:
            self._codes.append(self.NULL_CODE)
            return
        code = self._encode.get(value)
        if code is None:
            code = self._encode[value] = len(self._decode)
            self._decode.append(value)
        self._codes.append(code)

    def extend(self, values: Sequence[Any]) -> None:
        for value in values:
            self.append(value)

    def pop(self) -> None:
        """Remove the last value (the dictionary entry, if new, is kept)."""
        self._codes.pop()

    # -- reads -------------------------------------------------------------

    @property
    def cardinality(self) -> int:
        """Number of distinct non-NULL values ever stored."""
        return len(self._decode)

    def code_of(self, value: Any) -> int | None:
        """The code for ``value``, or None if it never occurs."""
        return self._encode.get(value)

    def __len__(self) -> int:
        return len(self._codes)

    def __getitem__(self, position: int) -> Any:
        code = self._codes[position]
        if code < 0:
            return None
        return self._decode[code]

    def __iter__(self) -> Iterator[Any]:
        decode = self._decode
        return (decode[c] if c >= 0 else None for c in self._codes)

    def gather(self, indices: Sequence[int]) -> list[Any]:
        codes = self._codes
        decode = self._decode
        return [
            decode[c] if (c := codes[i]) >= 0 else None for i in indices
        ]


def schema_fingerprint(schema: TableSchema) -> list[list[str]]:
    """JSON-stable identity of a schema: ``[name, type, kind]`` per attribute.

    Stored inside every warm-start snapshot and compared on load — a
    snapshot written for a different relation (or a relation whose
    declaration changed since) must fall back to cold start, not be
    reinterpreted.
    """
    return [
        [attribute.name, attribute.data_type.value, attribute.kind.value]
        for attribute in schema
    ]


def _make_column(data_type: DataType) -> NumericColumn | DictColumn:
    if data_type is DataType.INT:
        return IntColumn()
    if data_type is DataType.FLOAT:
        return FloatColumn()
    return DictColumn()  # TEXT and BOOL dictionary-encode


class ColumnStore:
    """Typed-array storage with column-at-a-time selection."""

    name = "columnar"

    def __init__(self, schema: TableSchema) -> None:
        self._columns: dict[str, NumericColumn | DictColumn] = {
            attribute.name: _make_column(attribute.data_type)
            for attribute in schema
        }
        self._ordered = [self._columns[n] for n in schema.names()]

    def column(self, name: str) -> NumericColumn | DictColumn:
        return self._columns[name]

    def append_row(self, values: Sequence[Any]) -> None:
        appended = 0
        try:
            for column, value in zip(self._ordered, values):
                column.append(value)
                appended += 1
        except Exception:
            # Keep the torn-row guarantee Table.insert promises: undo the
            # columns already written before re-raising (int64 overflow is
            # the one failure coercion does not catch first).
            for column in self._ordered[:appended]:
                column.pop()
            raise

    def load_columns(self, columns: Mapping[str, Sequence[Any]]) -> None:
        for name, column in self._columns.items():
            column.extend(columns[name])

    def gather(self, name: str, indices: Sequence[int]) -> list[Any]:
        return self._columns[name].gather(indices)

    def build_groupby(self, name: str) -> dict[Any, tuple[int, ...]]:
        column = self._columns[name]
        if isinstance(column, DictColumn):
            # Bucket by integer code (list indexing, no hashing), then
            # decode once per distinct value.
            postings: list[list[int]] = [[] for _ in range(column.cardinality)]
            nulls: list[int] = []
            for position, code in enumerate(column._codes):
                if code >= 0:
                    postings[code].append(position)
                else:
                    nulls.append(position)
            decode = column._decode
            index = {
                decode[code]: tuple(ids)
                for code, ids in enumerate(postings)
                if ids
            }
            if nulls:
                index[None] = tuple(nulls)
            return index
        buckets: dict[Any, list[int]] = {}
        for position, value in enumerate(column):
            buckets.setdefault(value, []).append(position)
        return {value: tuple(ids) for value, ids in buckets.items()}

    # -- warm-start persistence --------------------------------------------

    #: Bump when the block layout below changes: older snapshots then
    #: fail stop (``reason="version"``) instead of being misread.
    FORMAT_VERSION = 1

    def dump(
        self,
        schema: TableSchema,
        path: Any,
        rename_hook: Any = None,
    ) -> None:
        """Serialize the typed arrays + dictionaries to one snapshot file.

        The on-disk form is a :mod:`repro.relational.snapio` container:
        raw ``array.tobytes()`` payloads per column (numeric data, null
        positions, dictionary codes) plus a JSON manifest carrying the
        schema fingerprint, row count, and each dictionary's decode list.
        Loading is therefore a handful of ``frombytes`` memcpys — the
        whole point of warm start is to skip per-value coercion.
        """
        rows = len(self._ordered[0]) if self._ordered else 0
        manifest = base_manifest("columnstore", self.FORMAT_VERSION)
        manifest["table"] = schema.name
        manifest["schema"] = schema_fingerprint(schema)
        manifest["rows"] = rows
        columns: list[dict[str, Any]] = []
        blocks: list[tuple[str, bytes]] = []
        for name in schema.names():
            column = self._columns[name]
            if isinstance(column, DictColumn):
                columns.append(
                    {"name": name, "layout": "dict", "decode": column._decode}
                )
                blocks.append((f"col:{name}", column._codes.tobytes()))
            else:
                entry = {"name": name, "layout": "num",
                         "typecode": column.typecode}
                blocks.append((f"col:{name}", column._data.tobytes()))
                if column._nulls:
                    entry["nulls"] = True
                    blocks.append(
                        (f"nulls:{name}",
                         array("q", sorted(column._nulls)).tobytes())
                    )
                columns.append(entry)
        manifest["columns"] = columns
        write_container(path, manifest, blocks, rename_hook=rename_hook)

    @classmethod
    def load(cls, schema: TableSchema, path: Any) -> tuple["ColumnStore", int]:
        """Rebuild a store from :meth:`dump` output; return (store, rows).

        Every CRC is verified by the container open and the manifest's
        schema fingerprint must match ``schema`` exactly — any mismatch
        raises :class:`~repro.relational.snapio.SnapshotMismatch`, which
        the serving layer turns into a counted cold-start fallback
        (never serve corrupt state).
        """
        with Container(path) as container:
            manifest = container.manifest
            if manifest.get("kind") != "columnstore":
                raise SnapshotMismatch(
                    f"{path}: not a columnstore snapshot "
                    f"(kind={manifest.get('kind')!r})",
                    reason="format",
                )
            if manifest.get("version") != cls.FORMAT_VERSION:
                raise SnapshotMismatch(
                    f"{path}: columnstore format version "
                    f"{manifest.get('version')} (this build reads "
                    f"{cls.FORMAT_VERSION})",
                    reason="version",
                )
            if manifest.get("schema") != schema_fingerprint(schema):
                raise SnapshotMismatch(
                    f"{path}: snapshot schema does not match "
                    f"{schema.name!r}",
                    reason="schema",
                )
            rows = manifest.get("rows")
            if not isinstance(rows, int) or rows < 0:
                raise SnapshotMismatch(
                    f"{path}: bad row count {rows!r}", reason="format"
                )
            store = cls(schema)
            entries = {
                entry.get("name"): entry
                for entry in manifest.get("columns", [])
            }
            for name in schema.names():
                entry = entries.get(name)
                if entry is None:
                    raise SnapshotMismatch(
                        f"{path}: column {name!r} missing", reason="schema"
                    )
                column = store._columns[name]
                block = container.block(f"col:{name}")
                if entry.get("layout") == "dict":
                    if not isinstance(column, DictColumn):
                        raise SnapshotMismatch(
                            f"{path}: column {name!r} layout mismatch",
                            reason="schema",
                        )
                    column._codes.frombytes(block)
                    column._decode = list(entry.get("decode", []))
                    column._encode = {
                        value: code
                        for code, value in enumerate(column._decode)
                    }
                    if any(
                        code >= len(column._decode)
                        for code in column._codes
                    ):
                        raise SnapshotMismatch(
                            f"{path}: column {name!r} has codes outside "
                            "its dictionary",
                            reason="format",
                        )
                elif entry.get("layout") == "num":
                    if (
                        not isinstance(column, NumericColumn)
                        or entry.get("typecode") != column.typecode
                    ):
                        raise SnapshotMismatch(
                            f"{path}: column {name!r} layout mismatch",
                            reason="schema",
                        )
                    column._data.frombytes(block)
                    if entry.get("nulls"):
                        positions = array("q")
                        positions.frombytes(container.block(f"nulls:{name}"))
                        column._nulls = set(positions)
                else:
                    raise SnapshotMismatch(
                        f"{path}: column {name!r} has unknown layout "
                        f"{entry.get('layout')!r}",
                        reason="format",
                    )
                if len(column) != rows:
                    raise SnapshotMismatch(
                        f"{path}: column {name!r} holds {len(column)} "
                        f"values, manifest says {rows}",
                        reason="format",
                    )
            return store, rows

    # -- column-at-a-time selection ----------------------------------------

    def select_indices(
        self, predicate: Predicate, indices: Sequence[int]
    ) -> tuple[Sequence[int], Predicate | None] | None:
        parts = (
            predicate.parts
            if isinstance(predicate, Conjunction)
            else (predicate,)
        )
        current: Sequence[int] = indices
        for position, part in enumerate(parts):
            if not len(current):
                return current, None
            filtered = self._filter_one(part, current)
            if filtered is None:
                # Hand the un-vectorizable suffix back, preserving the
                # row engine's left-to-right evaluation order (and thus
                # which rows ever see a type-error-raising conjunct).
                remaining = parts[position:]
                leftover = (
                    remaining[0]
                    if len(remaining) == 1
                    else Conjunction(remaining)
                )
                return current, leftover
            current = filtered
        return current, None

    def can_vectorize(self, predicate: Predicate) -> bool:
        """True iff :meth:`_filter_one` would fully evaluate ``predicate``.

        A decision procedure for the filter kernels, used by the sharded
        backend to *plan* the dispatchable conjunct prefix in the parent
        process — dictionaries are table-global, so the plan made here
        holds on every shard.  Must mirror ``_filter_one``'s ``None``
        conditions exactly; ``tests/relational/test_sharded.py`` checks
        the two against each other.
        """
        if isinstance(predicate, TruePredicate):
            return True
        if isinstance(predicate, (InPredicate, IsNullPredicate)):
            return predicate.attribute in self._columns
        if isinstance(predicate, RangePredicate):
            return isinstance(
                self._columns.get(predicate.attribute), NumericColumn
            )
        if isinstance(predicate, ComparisonPredicate):
            column = self._columns.get(predicate.attribute)
            if column is None:
                return False
            if isinstance(column, DictColumn):
                # Same probe _filter_comparison runs: the comparison must
                # order against every dictionary entry without TypeError.
                op = comparison_operator(predicate.op)
                try:
                    for stored in column._decode:
                        op(stored, predicate.value)
                except TypeError:
                    return False
                return True
            return predicate.op in ("=", "!=") or isinstance(
                predicate.value, (int, float)
            )
        return False

    def _filter_one(
        self, predicate: Predicate, indices: Sequence[int]
    ) -> list[int] | None:
        """Apply one conjunct over ``indices``; None when unsupported."""
        if isinstance(predicate, TruePredicate):
            return list(indices)
        if isinstance(predicate, InPredicate):
            return self._filter_in(predicate, indices)
        if isinstance(predicate, RangePredicate):
            return self._filter_range(predicate, indices)
        if isinstance(predicate, ComparisonPredicate):
            return self._filter_comparison(predicate, indices)
        if isinstance(predicate, IsNullPredicate):
            return self._filter_is_null(predicate, indices)
        return None

    def _filter_in(
        self, predicate: InPredicate, indices: Sequence[int]
    ) -> list[int] | None:
        column = self._columns.get(predicate.attribute)
        if column is None:
            return None
        if isinstance(column, DictColumn):
            wanted: set[int] = set()
            for value in predicate.values:
                if value is None:
                    # Row-at-a-time, NULL IN (... NULL ...) matches: the
                    # Mapping.get value None is a member of the IN-set.
                    wanted.add(DictColumn.NULL_CODE)
                    continue
                try:
                    code = column._encode.get(value)
                except TypeError:  # unhashable never stored; never matches
                    code = None
                if code is not None:
                    wanted.add(code)
            if not wanted:
                return []
            codes = column._codes
            return [i for i in indices if codes[i] in wanted]
        values = predicate.values
        data = column._data
        nulls = column._nulls
        if not nulls:
            return [i for i in indices if data[i] in values]
        null_matches = None in values
        return [
            i
            for i in indices
            if (null_matches if i in nulls else data[i] in values)
        ]

    def _filter_range(
        self, predicate: RangePredicate, indices: Sequence[int]
    ) -> list[int] | None:
        column = self._columns.get(predicate.attribute)
        if not isinstance(column, NumericColumn):
            # TEXT/BOOL ranges keep the row path's semantics (a str vs
            # float compare raises TypeError there; BOOL compares as int).
            return None
        low, high = predicate.low, predicate.high
        data = column._data
        nulls = column._nulls
        if predicate.high_inclusive:
            if not nulls:
                return [i for i in indices if low <= data[i] <= high]
            return [
                i
                for i in indices
                if i not in nulls and low <= data[i] <= high
            ]
        if not nulls:
            return [i for i in indices if low <= data[i] < high]
        return [
            i for i in indices if i not in nulls and low <= data[i] < high
        ]

    def _filter_comparison(
        self, predicate: ComparisonPredicate, indices: Sequence[int]
    ) -> list[int] | None:
        column = self._columns.get(predicate.attribute)
        if column is None:
            return None
        op = comparison_operator(predicate.op)
        value = predicate.value
        if isinstance(column, DictColumn):
            try:
                # Evaluate once per dictionary entry, not once per row.
                wanted = {
                    code
                    for code, stored in enumerate(column._decode)
                    if op(stored, value)
                }
            except TypeError:
                # The dictionary holds a value this comparison cannot
                # order.  The row path only raises if such a row is
                # actually visited — fall back so errors surface (or
                # don't) exactly as before.
                return None
            codes = column._codes
            return [i for i in indices if codes[i] in wanted]
        if predicate.op not in ("=", "!=") and not isinstance(
            value, (int, float)
        ):
            return None  # ordering against a non-number raises row-side
        data = column._data
        nulls = column._nulls
        if not nulls:
            return [i for i in indices if op(data[i], value)]
        return [i for i in indices if i not in nulls and op(data[i], value)]

    def bucket_numeric(
        self, name: str, indices: Sequence[int], boundaries: Sequence[float]
    ) -> tuple[list[list[int]], int] | None:
        column = self._columns.get(name)
        if not isinstance(column, NumericColumn):
            return None
        data = column._data
        nulls = column._nulls
        low, high = boundaries[0], boundaries[-1]
        last = len(boundaries) - 2
        buckets: list[list[int]] = [[] for _ in range(last + 1)]
        dropped = 0
        bisect_right = bisect.bisect_right
        if not all(map(math.isfinite, boundaries)):
            # Non-finite boundaries would let NaN/±inf values through the
            # range guard and into bisect (whose order is undefined for
            # them): guard per value.  With finite boundaries — every real
            # workload — the ``low <= value <= high`` guard below already
            # drops non-finite values at zero extra cost, so this slow
            # path only exists to keep the drop-and-count contract
            # identical whatever the boundaries.
            isfinite = math.isfinite
            for i in indices:
                if nulls and i in nulls:
                    dropped += 1
                    continue
                value = data[i]
                if isfinite(value) and low <= value <= high:
                    buckets[bisect_right(boundaries, value, 0, last + 1) - 1].append(i)
                else:
                    dropped += 1
            return buckets, dropped
        # Capping bisect's hi at ``last + 1`` folds value == boundaries[-1]
        # into the final (closed) bucket without a per-row min().
        if not nulls:
            for i in indices:
                value = data[i]
                if low <= value <= high:
                    buckets[bisect_right(boundaries, value, 0, last + 1) - 1].append(i)
                else:
                    dropped += 1
            return buckets, dropped
        for i in indices:
            if i in nulls:
                dropped += 1
                continue
            value = data[i]
            if low <= value <= high:
                buckets[bisect_right(boundaries, value, 0, last + 1) - 1].append(i)
            else:
                dropped += 1
        return buckets, dropped

    def _filter_is_null(
        self, predicate: IsNullPredicate, indices: Sequence[int]
    ) -> list[int] | None:
        column = self._columns.get(predicate.attribute)
        if column is None:
            return None
        if isinstance(column, DictColumn):
            codes = column._codes
            return [i for i in indices if codes[i] < 0]
        nulls = column._nulls
        if not nulls:
            return []
        return [i for i in indices if i in nulls]
