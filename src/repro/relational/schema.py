"""Schemas for relations: attribute declarations and table schemas.

A :class:`TableSchema` is the static description of a relation — the ordered
list of :class:`Attribute` definitions.  The categorizer consults the schema
to learn each attribute's :class:`~repro.relational.types.AttributeKind`
(categorical vs numeric), which drives the choice of partitioning strategy
(paper Sections 5.1.2 and 5.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.relational.types import AttributeKind, DataType


@dataclass(frozen=True)
class Attribute:
    """A single attribute (column) of a relation.

    Attributes:
        name: the attribute name, unique within a schema.
        data_type: physical storage type.
        kind: logical categorization role.  Defaults to NUMERIC for numeric
            data types and CATEGORICAL otherwise, which matches the common
            case; pass the kind explicitly for e.g. categorical integers
            (zip codes) or orderable text.
        nullable: whether NULLs are permitted.
    """

    name: str
    data_type: DataType
    kind: AttributeKind | None = None
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(f"invalid attribute name {self.name!r}")
        if self.kind is None:
            inferred = (
                AttributeKind.NUMERIC
                if self.data_type.is_numeric()
                else AttributeKind.CATEGORICAL
            )
            object.__setattr__(self, "kind", inferred)

    @property
    def is_numeric(self) -> bool:
        """True if this attribute is partitioned into range buckets."""
        return self.kind is AttributeKind.NUMERIC

    @property
    def is_categorical(self) -> bool:
        """True if this attribute is partitioned into single-value categories."""
        return self.kind is AttributeKind.CATEGORICAL

    def coerce(self, value: Any) -> Any:
        """Validate and convert ``value`` for storage in this attribute."""
        if value is None:
            if not self.nullable:
                raise ValueError(f"attribute {self.name!r} is not nullable")
            return None
        return self.data_type.coerce(value)


@dataclass(frozen=True)
class TableSchema:
    """Ordered collection of attributes describing a relation.

    Provides positional and by-name access.  Immutable: deriving a schema
    (e.g. a projection) creates a new instance.
    """

    name: str
    attributes: tuple[Attribute, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", tuple(self.attributes))
        names = [attr.name for attr in self.attributes]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate attribute names: {sorted(duplicates)}")
        object.__setattr__(
            self, "_by_name", {attr.name: i for i, attr in enumerate(self.attributes)}
        )

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name  # type: ignore[attr-defined]

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name``.

        Raises:
            KeyError: if no such attribute exists, with a message listing
                the available names (the usual failure is a typo in a
                workload query or a config file).
        """
        try:
            return self.attributes[self._by_name[name]]  # type: ignore[attr-defined]
        except KeyError:
            raise KeyError(
                f"no attribute {name!r} in table {self.name!r}; "
                f"available: {sorted(self.names())}"
            ) from None

    def index_of(self, name: str) -> int:
        """Return the column position of ``name``."""
        self.attribute(name)  # raise a helpful KeyError if absent
        return self._by_name[name]  # type: ignore[attr-defined]

    def names(self) -> tuple[str, ...]:
        """Return attribute names in declaration order."""
        return tuple(attr.name for attr in self.attributes)

    def project(self, names: Sequence[str]) -> "TableSchema":
        """Return a new schema keeping only ``names``, in the given order."""
        return TableSchema(
            name=self.name,
            attributes=tuple(self.attribute(n) for n in names),
        )

    def categorical_attributes(self) -> tuple[Attribute, ...]:
        """All attributes partitioned as single-value categories."""
        return tuple(a for a in self.attributes if a.is_categorical)

    def numeric_attributes(self) -> tuple[Attribute, ...]:
        """All attributes partitioned as range buckets."""
        return tuple(a for a in self.attributes if a.is_numeric)
