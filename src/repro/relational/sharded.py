"""Sharded columnar storage: shared-memory shards + a worker pool.

:class:`ShardedBackend` (``backend="sharded"``) takes the packed
:class:`~repro.relational.backends.ColumnStore` layout to multiple cores.
It keeps one ordinary ``ColumnStore`` in the parent process (the *base
store* — every write lands there, and every operation has a single-process
fallback that is the columnar backend verbatim), and on first parallel
read it **seals**: the typed arrays are partitioned into contiguous row
ranges and copied once into one ``multiprocessing.shared_memory`` segment
per shard.  Worker processes attach those segments **zero-copy** — each
column becomes a ``memoryview.cast`` over the segment, wrapped in the same
``IntColumn`` / ``FloatColumn`` / ``DictColumn`` objects the columnar
backend uses, so the workers execute the *identical* kernel code
(``ColumnStore.select_indices`` / ``bucket_numeric`` / ``build_groupby``)
over their shard.  Equivalence with the single-process backend is
therefore structural, not coincidental; the hypothesis suite in
``tests/relational/test_backend_equivalence.py`` enforces it anyway.

Parallel operations and their merge semantics (``docs/storage.md`` has the
full walkthrough):

* ``select_indices`` — the parent *plans* the vectorizable conjunct prefix
  against the base store (dictionaries are global, so every shard reaches
  the same decision), dispatches only that prefix, and hands the suffix
  back as the leftover predicate — exactly the contract the row engine
  expects.  Shard results are concatenated in shard order, which preserves
  ascending row order for ascending candidates.
* ``bucket_numeric`` — each worker buckets its shard's candidates; the
  parent concatenates bucket ``k``'s per-shard index lists in shard order
  and sums the dropped counts, so the ``partition.dropped_rows`` contract
  is bit-identical to the single-process backend.
* ``build_groupby`` — each worker groups its whole shard; the parent
  concatenates each value's postings in shard order (ascending positions,
  NULLs under ``None``).

Candidate row indices cross the pool as raw ``array('q')`` bytes (or as a
``(start, stop)`` pair for ``range`` candidates — the whole-table case
costs a few bytes per shard), never as pickled Python lists; results come
back the same way.  The merge collects futures in shard submission order,
so results are deterministic regardless of worker completion order.

Failure policy: the pool is an optimization, never a dependency.  A
broken pool (a worker was OOM-killed, the executor died) is rebuilt and
the operation retried once; if the pool cannot be rebuilt, or the
candidates are not splittable (non-ascending index sequences), the
operation falls back to the base store and the answer is still exact.
Fallbacks and pool restarts are visible on the ``sharded.fallbacks`` /
``sharded.pool_restarts`` perf counters.

Writes (``append_row`` / ``load_columns``) go to the base store and
*unseal* — the shared segments are unlinked and lazily rebuilt on the
next parallel read.  Sealing costs one copy of the table (the segments
duplicate the base store's arrays), which is the price of zero-copy
worker views; ``close()`` releases everything deterministically, and a
``weakref.finalize`` + ``atexit`` net catches backends that are simply
dropped.
"""

from __future__ import annotations

import atexit
import bisect
import os
import threading
import time
import weakref
from array import array
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, Executor, ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context, shared_memory
from typing import Any, Mapping, Sequence

from repro import perf, telemetry
from repro.relational.backends import (
    ColumnStore,
    DictColumn,
    FloatColumn,
    IntColumn,
    NumericColumn,
)
from repro.relational.expressions import Conjunction, Predicate
from repro.relational.schema import TableSchema

#: Below this many rows (or candidate indices) an operation runs on the
#: base store directly: pool round-trips cost ~1 ms, which only pays for
#: itself when there is real work to split.
DEFAULT_MIN_PARALLEL_ROWS = 32_768

#: Upper bound on auto-detected worker counts (os.cpu_count() on big
#: machines would otherwise oversubscribe the merge step).
MAX_AUTO_WORKERS = 8


def default_worker_count() -> int:
    """Worker count used when ``workers`` is not given: one per core, capped."""
    return max(1, min(os.cpu_count() or 1, MAX_AUTO_WORKERS))


class AscendingIndices(array):
    """An ``array('q')`` of row indices known to be in ascending order.

    Every merged result this backend produces is ascending by
    construction; tagging the type lets the next operation skip the O(n)
    ascending check when the result feeds back in as candidates (selection
    chains, bucket calls over a selection).  ``RowSet`` adopts it like any
    other array.
    """

    __slots__ = ()


# ---------------------------------------------------------------------------
# Shard specifications (pickled to workers with every task).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _ColumnSpec:
    """Where one column's bytes live inside a shard's segment."""

    name: str
    kind: str  # "int" | "float" | "dict"
    offset: int
    nbytes: int
    null_offset: int  # byte offset of the array('q') of local NULL rows
    null_nbytes: int  # 0 when the column slice has no NULLs
    decode: tuple = ()  # dict columns: the GLOBAL code -> value table


@dataclass(frozen=True)
class _ShardSpec:
    """One shard: a shared-memory segment plus its column layout.

    ``segment`` doubles as the worker-side cache key — segment names are
    unique per seal, so a stale attachment can never serve a new seal.
    """

    segment: str
    base: int  # global row position of the shard's local row 0
    length: int
    columns: tuple[_ColumnSpec, ...]


# ---------------------------------------------------------------------------
# Worker side: attach segments zero-copy and run ColumnStore kernels.
# ---------------------------------------------------------------------------

#: Worker-process attachment cache: segment name -> (store, shm, views).
#: Bounded so long-lived workers serving many seals (hypothesis runs,
#: repeated reloads) do not pin unbounded numbers of dead segments.
_WORKER_CACHE_LIMIT = 64
_worker_shards: "OrderedDict[str, tuple[ColumnStore, Any, list]]" = OrderedDict()


def _release_attachment(entry: tuple[ColumnStore, Any, list]) -> None:
    _store, shm, views = entry
    for view in views:
        view.release()
    try:
        shm.close()
    except (OSError, BufferError):  # pragma: no cover - platform specific
        pass


def _attach_shard(spec: _ShardSpec) -> ColumnStore:
    """Return a ``ColumnStore`` whose columns view ``spec``'s segment.

    The attachment is cached per worker process; construction is one
    ``memoryview.cast`` per column (zero-copy) plus a set() for any NULL
    positions and the rebuilt encode map for dictionary columns.
    """
    entry = _worker_shards.get(spec.segment)
    if entry is not None:
        _worker_shards.move_to_end(spec.segment)
        return entry[0]
    shm = shared_memory.SharedMemory(name=spec.segment)
    views: list = []
    columns: dict[str, NumericColumn | DictColumn] = {}
    for spec_column in spec.columns:
        stop = spec_column.offset + spec_column.nbytes
        if spec_column.kind == "dict":
            codes = shm.buf[spec_column.offset : stop].cast("i")
            views.append(codes)
            column: NumericColumn | DictColumn = DictColumn.__new__(DictColumn)
            column._codes = codes
            column._decode = list(spec_column.decode)
            column._encode = {
                value: code for code, value in enumerate(spec_column.decode)
            }
        else:
            typecode = "q" if spec_column.kind == "int" else "d"
            data = shm.buf[spec_column.offset : stop].cast(typecode)
            views.append(data)
            cls = IntColumn if spec_column.kind == "int" else FloatColumn
            column = cls.__new__(cls)
            column._data = data
            if spec_column.null_nbytes:
                null_stop = spec_column.null_offset + spec_column.null_nbytes
                null_view = shm.buf[spec_column.null_offset : null_stop].cast("q")
                column._nulls = set(null_view.tolist())
                null_view.release()
            else:
                column._nulls = set()
        columns[spec_column.name] = column
    store = ColumnStore.__new__(ColumnStore)
    store._columns = columns
    store._ordered = list(columns.values())
    _worker_shards[spec.segment] = (store, shm, views)
    while len(_worker_shards) > _WORKER_CACHE_LIMIT:
        _, stale = _worker_shards.popitem(last=False)
        _release_attachment(stale)
    return store


def _local_candidates(payload: tuple, base: int) -> Sequence[int]:
    """Decode a candidate payload into shard-local row positions."""
    if payload[0] == "range":
        return range(payload[1], payload[2])
    chunk = array("q")
    chunk.frombytes(payload[1])
    if base:
        chunk = array("q", [i - base for i in chunk])
    return chunk


def _globalize(indices: Sequence[int], base: int) -> array:
    if base:
        return array("q", [i + base for i in indices])
    return array("q", indices)


def _shard_select(
    spec: _ShardSpec, predicate: Predicate, payload: tuple
) -> bytes | None:
    """Filter the shard's candidates; returns GLOBAL kept indices as bytes.

    The parent only dispatches conjuncts it planned as vectorizable, so
    the kernel must fully evaluate them; a non-None leftover means the
    plan and the kernel disagree (a bug) — return None so the parent falls
    back to the exact single-process path instead of mis-merging.
    """
    store = _attach_shard(spec)
    result = store.select_indices(predicate, _local_candidates(payload, spec.base))
    if result is None:
        return None
    kept, leftover = result
    if leftover is not None:
        return None
    return _globalize(kept, spec.base).tobytes()


def _shard_bucket(
    spec: _ShardSpec,
    name: str,
    payload: tuple,
    boundaries: tuple,
) -> tuple[list[bytes], int] | None:
    """Bucket the shard's candidates; returns per-bucket GLOBAL indices."""
    store = _attach_shard(spec)
    result = store.bucket_numeric(
        name, _local_candidates(payload, spec.base), boundaries
    )
    if result is None:
        return None
    buckets, dropped = result
    return [_globalize(ids, spec.base).tobytes() for ids in buckets], dropped


def _shard_groupby(spec: _ShardSpec, name: str) -> dict[Any, bytes]:
    """Group the whole shard; returns value -> GLOBAL postings bytes."""
    store = _attach_shard(spec)
    return {
        value: _globalize(ids, spec.base).tobytes()
        for value, ids in store.build_groupby(name).items()
    }


def _timed_shard(fn, *task):
    """Run one shard kernel and return ``(elapsed_s, result)``.

    Module-level so it pickles across the fork boundary; used only when
    the serving request being computed is telemetry-sampled, so the
    unsampled path submits the bare kernels with zero extra frames.
    """
    started = time.perf_counter()
    result = fn(*task)
    return time.perf_counter() - started, result


#: Kernel -> audit-facing op label for ``shards`` telemetry events.
_SHARD_OPS = {
    "_shard_select": "select",
    "_shard_bucket": "bucket",
    "_shard_groupby": "groupby",
}


# ---------------------------------------------------------------------------
# Parent-side resource management.
# ---------------------------------------------------------------------------


@dataclass
class _Resources:
    """Shared-memory segments and the executor, separated from the backend
    so ``weakref.finalize`` can release them without resurrecting it."""

    segments: list = field(default_factory=list)
    executor: Executor | None = None
    owns_executor: bool = False

    def release_segments(self) -> None:
        for shm in self.segments:
            try:
                shm.close()
                shm.unlink()
            except (OSError, BufferError):  # already gone / exported views
                pass
        self.segments.clear()

    def release(self) -> None:
        self.release_segments()
        executor, self.executor = self.executor, None
        if executor is not None and self.owns_executor:
            executor.shutdown(wait=False, cancel_futures=True)


#: Every live backend's resources, for the atexit sweep: backends that are
#: GC'd release via their finalizer; anything still alive at interpreter
#: exit is released here so no shm segment outlives the process.
_RESOURCE_REGISTRY: dict[int, _Resources] = {}
_registry_lock = threading.Lock()


def _register_resources(resources: _Resources) -> None:
    with _registry_lock:
        _RESOURCE_REGISTRY[id(resources)] = resources


def _unregister_resources(resources: _Resources) -> None:
    with _registry_lock:
        _RESOURCE_REGISTRY.pop(id(resources), None)


@atexit.register
def _release_all_resources() -> None:  # pragma: no cover - exit path
    with _registry_lock:
        leftover = list(_RESOURCE_REGISTRY.values())
        _RESOURCE_REGISTRY.clear()
    for resources in leftover:
        resources.release()


def _finalize_backend(resources: _Resources) -> None:
    _unregister_resources(resources)
    resources.release()


class ShardedBackend:
    """Sharded columnar storage behind the ``StorageBackend`` protocol.

    Args:
        schema: the table schema (fixes column kinds and order).
        workers: pool size and shard count; defaults to
            :func:`default_worker_count`.
        min_parallel_rows: operations over fewer rows/candidates than this
            run on the base store directly (the pool never pays for
            itself on small tables); 0 forces every operation parallel,
            which the equivalence tests use.
        executor: inject a shared executor (tests); the backend then does
            not own its lifecycle unless the pool breaks and is rebuilt.
    """

    name = "sharded"

    def __init__(
        self,
        schema: TableSchema,
        workers: int | None = None,
        min_parallel_rows: int = DEFAULT_MIN_PARALLEL_ROWS,
        executor: Executor | None = None,
    ) -> None:
        if workers is not None and int(workers) < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if min_parallel_rows < 0:
            raise ValueError(
                f"min_parallel_rows must be >= 0, got {min_parallel_rows}"
            )
        self._schema = schema
        self._store = ColumnStore(schema)
        self.workers = int(workers) if workers is not None else default_worker_count()
        self._min_parallel_rows = min_parallel_rows
        self._resources = _Resources(executor=executor, owns_executor=False)
        self._shard_specs: list[_ShardSpec] = []
        self._sealed = False
        self._closed = False
        self._lock = threading.Lock()
        _register_resources(self._resources)
        self._finalizer = weakref.finalize(
            self, _finalize_backend, self._resources
        )

    # -- write path (delegates; any write invalidates the seal) -------------

    def column(self, name: str):
        return self._store.column(name)

    def append_row(self, values: Sequence[Any]) -> None:
        self._store.append_row(values)
        if self._sealed:
            self._unseal()

    def load_columns(self, columns: Mapping[str, Sequence[Any]]) -> None:
        self._store.load_columns(columns)
        if self._sealed:
            self._unseal()

    def gather(self, name: str, indices: Sequence[int]) -> list[Any]:
        return self._store.gather(name, indices)

    # -- sealing -------------------------------------------------------------

    def _rows(self) -> int:
        ordered = self._store._ordered
        return len(ordered[0]) if ordered else 0

    @property
    def shard_count(self) -> int:
        """Number of shards in the current seal (0 while unsealed)."""
        return len(self._shard_specs)

    def _ensure_sealed(self) -> bool:
        """Build the shared-memory shards; False when shm is unavailable."""
        if self._closed:
            return False  # closed backends serve from the base store only
        if self._sealed:
            return True
        with self._lock:
            if self._sealed:
                return True
            try:
                with perf.span("sharded.seal"):
                    self._build_segments()
            except (OSError, ValueError):
                perf.count("sharded.fallbacks", reason="seal")
                self._resources.release_segments()
                self._shard_specs.clear()
                return False
            self._sealed = True
        return True

    def _build_segments(self) -> None:
        rows = self._rows()
        shard_count = max(1, min(self.workers, rows))
        per_shard, extra = divmod(rows, shard_count)
        start = 0
        for shard in range(shard_count):
            length = per_shard + (1 if shard < extra else 0)
            self._pack_shard(start, length)
            start += length

    def _pack_shard(self, start: int, length: int) -> None:
        """Copy rows [start, start+length) into one shm segment."""
        stop = start + length
        blob = bytearray()

        def put(data: bytes) -> int:
            # 8-byte alignment keeps the cast('q'/'d') views on natural
            # boundaries whatever mix of 4-byte code and 8-byte value
            # sections precedes them.
            blob.extend(b"\0" * (-len(blob) % 8))
            offset = len(blob)
            blob.extend(data)
            return offset

        column_specs = []
        for attribute in self._schema:
            column = self._store._columns[attribute.name]
            if isinstance(column, DictColumn):
                payload = column._codes[start:stop].tobytes()
                offset = put(payload)
                column_specs.append(
                    _ColumnSpec(
                        name=attribute.name,
                        kind="dict",
                        offset=offset,
                        nbytes=len(payload),
                        null_offset=-1,
                        null_nbytes=0,
                        decode=tuple(column._decode),
                    )
                )
            else:
                kind = "int" if isinstance(column, IntColumn) else "float"
                payload = column._data[start:stop].tobytes()
                offset = put(payload)
                if column._nulls:
                    local_nulls = array(
                        "q",
                        sorted(
                            position - start
                            for position in column._nulls
                            if start <= position < stop
                        ),
                    ).tobytes()
                else:
                    local_nulls = b""
                null_offset = put(local_nulls) if local_nulls else -1
                column_specs.append(
                    _ColumnSpec(
                        name=attribute.name,
                        kind=kind,
                        offset=offset,
                        nbytes=len(payload),
                        null_offset=null_offset,
                        null_nbytes=len(local_nulls),
                    )
                )
        shm = shared_memory.SharedMemory(create=True, size=max(len(blob), 8))
        shm.buf[: len(blob)] = blob
        self._resources.segments.append(shm)
        self._shard_specs.append(
            _ShardSpec(
                segment=shm.name,
                base=start,
                length=length,
                columns=tuple(column_specs),
            )
        )

    def _unseal(self) -> None:
        with self._lock:
            self._resources.release_segments()
            self._shard_specs.clear()
            self._sealed = False

    def close(self) -> None:
        """Release shared memory and shut down an owned pool.

        Idempotent; afterwards every operation serves from the in-process
        base store (the backend never re-seals or re-spawns workers).
        """
        self._closed = True
        self._unseal()
        self._finalizer.detach()
        _unregister_resources(self._resources)
        self._resources.release()

    # -- pool management -----------------------------------------------------

    def _ensure_executor(self) -> Executor:
        executor = self._resources.executor
        if executor is None:
            try:
                context = get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                context = get_context()
            executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
            self._resources.executor = executor
            self._resources.owns_executor = True
        return executor

    def _discard_executor(self) -> None:
        executor, self._resources.executor = self._resources.executor, None
        if executor is not None and self._resources.owns_executor:
            executor.shutdown(wait=False, cancel_futures=True)
        # A replacement pool is always owned, even when the broken one was
        # injected: the injector's pool is unusable and not ours to fix.
        self._resources.owns_executor = True

    def _run_parallel(self, fn, tasks: list[tuple]) -> list | None:
        """One task per shard, results in task order; None on pool failure.

        A broken pool (worker killed, executor torn down) is discarded,
        rebuilt, and the whole batch retried once — individual shard tasks
        are pure reads, so re-running them is safe.
        """
        if not tasks:
            return []
        # Per-shard kernel timing only for telemetry-sampled requests:
        # the scope contextvar is set by the service around the sampled
        # computation, so unsampled traffic submits the bare kernels.
        trace_id = telemetry.scoped_trace_id()
        for attempt in (0, 1):
            with self._lock:
                executor = self._ensure_executor()
            try:
                if trace_id is None:
                    futures = [executor.submit(fn, *task) for task in tasks]
                    return [future.result() for future in futures]
                started = time.perf_counter()
                futures = [
                    executor.submit(_timed_shard, fn, *task) for task in tasks
                ]
                pairs = [future.result() for future in futures]
                telemetry.emit(
                    "shards",
                    trace_id,
                    table=self._schema.name,
                    op=_SHARD_OPS.get(fn.__name__, fn.__name__),
                    shards=len(pairs),
                    shard_ms=[round(elapsed * 1000.0, 3) for elapsed, _ in pairs],
                    elapsed_ms=round(
                        (time.perf_counter() - started) * 1000.0, 3
                    ),
                )
                return [result for _, result in pairs]
            except (BrokenExecutor, OSError, RuntimeError):
                perf.count("sharded.pool_restarts")
                with self._lock:
                    self._discard_executor()
        return None

    # -- candidate splitting -------------------------------------------------

    def _split_candidates(self, indices: Sequence[int]) -> list[tuple | None] | None:
        """Split ascending candidates into per-shard payloads.

        Returns one payload per shard (None where the shard has no
        candidates), or None when the candidates cannot be split (unknown
        order) — the caller then falls back to the base store.
        """
        specs = self._shard_specs
        if isinstance(indices, range):
            if indices.step != 1:
                return None
            payloads: list[tuple | None] = []
            for spec in specs:
                low = max(indices.start, spec.base)
                high = min(indices.stop, spec.base + spec.length)
                payloads.append(
                    ("range", low - spec.base, high - spec.base)
                    if high > low
                    else None
                )
            return payloads
        if not isinstance(indices, AscendingIndices) and not _is_ascending(indices):
            return None
        if isinstance(indices, array) and indices.typecode == "q":
            candidates = indices
        else:
            candidates = array("q", indices)
        payloads = []
        position = 0
        for spec in specs:
            upper = bisect.bisect_left(
                candidates, spec.base + spec.length, position
            )
            payloads.append(
                ("array", candidates[position:upper].tobytes())
                if upper > position
                else None
            )
            position = upper
        return payloads

    # -- parallel reads ------------------------------------------------------

    def select_indices(
        self, predicate: Predicate, indices: Sequence[int]
    ) -> tuple[Sequence[int], Predicate | None] | None:
        store = self._store
        if len(indices) < max(self._min_parallel_rows, 1):
            return store.select_indices(predicate, indices)
        parts = (
            predicate.parts
            if isinstance(predicate, Conjunction)
            else (predicate,)
        )
        prefix = 0
        for part in parts:
            if not store.can_vectorize(part):
                break
            prefix += 1
        leftover: Predicate | None = None
        if prefix < len(parts):
            remaining = parts[prefix:]
            leftover = (
                remaining[0] if len(remaining) == 1 else Conjunction(remaining)
            )
        if prefix == 0:
            # Nothing vectorizable: hand everything back, exactly like the
            # single-process backend would at conjunct 0.
            return indices, leftover
        if not self._ensure_sealed():
            return store.select_indices(predicate, indices)
        payloads = self._split_candidates(indices)
        if payloads is None:
            perf.count("sharded.fallbacks", reason="order")
            return store.select_indices(predicate, indices)
        vectorized = parts[0] if prefix == 1 else Conjunction(parts[:prefix])
        tasks = [
            (spec, vectorized, payload)
            for spec, payload in zip(self._shard_specs, payloads)
            if payload is not None
        ]
        results = self._run_parallel(_shard_select, tasks)
        if results is None or any(chunk is None for chunk in results):
            perf.count("sharded.fallbacks", reason="pool")
            return store.select_indices(predicate, indices)
        perf.count("sharded.parallel_ops", op="select")
        merged = AscendingIndices("q")
        merged.frombytes(b"".join(results))
        if not len(merged):
            # Matches the single-process early exit: once the candidate
            # set is empty the remaining conjuncts are never evaluated.
            return merged, None
        return merged, leftover

    def bucket_numeric(
        self, name: str, indices: Sequence[int], boundaries: Sequence[float]
    ) -> tuple[list[Sequence[int]], int] | None:
        store = self._store
        if not isinstance(store._columns.get(name), NumericColumn):
            return None
        if len(indices) < max(self._min_parallel_rows, 1):
            return store.bucket_numeric(name, indices, boundaries)
        if not self._ensure_sealed():
            return store.bucket_numeric(name, indices, boundaries)
        payloads = self._split_candidates(indices)
        if payloads is None:
            perf.count("sharded.fallbacks", reason="order")
            return store.bucket_numeric(name, indices, boundaries)
        bounds = tuple(boundaries)
        tasks = [
            (spec, name, payload, bounds)
            for spec, payload in zip(self._shard_specs, payloads)
            if payload is not None
        ]
        results = self._run_parallel(_shard_bucket, tasks)
        if results is None or any(shard is None for shard in results):
            perf.count("sharded.fallbacks", reason="pool")
            return store.bucket_numeric(name, indices, boundaries)
        perf.count("sharded.parallel_ops", op="bucket")
        bucket_count = len(bounds) - 1
        merged: list[Sequence[int]] = []
        for position in range(bucket_count):
            chunk = AscendingIndices("q")
            for packed, _dropped in results:
                chunk.frombytes(packed[position])
            merged.append(chunk)
        dropped = sum(shard_dropped for _packed, shard_dropped in results)
        return merged, dropped

    def build_groupby(self, name: str) -> dict[Any, tuple[int, ...]]:
        store = self._store
        if self._rows() < max(self._min_parallel_rows, 1):
            return store.build_groupby(name)
        if not self._ensure_sealed():
            return store.build_groupby(name)
        tasks = [(spec, name) for spec in self._shard_specs]
        results = self._run_parallel(_shard_groupby, tasks)
        if results is None:
            perf.count("sharded.fallbacks", reason="pool")
            return store.build_groupby(name)
        perf.count("sharded.parallel_ops", op="groupby")
        merged: dict[Any, array] = {}
        for shard_postings in results:  # shard order => ascending positions
            for value, packed in shard_postings.items():
                chunk = merged.get(value)
                if chunk is None:
                    chunk = merged[value] = array("q")
                chunk.frombytes(packed)
        return {value: tuple(postings) for value, postings in merged.items()}


def _is_ascending(indices: Sequence[int]) -> bool:
    iterator = iter(indices)
    next(iterator, None)
    return all(a <= b for a, b in zip(indices, iterator))
