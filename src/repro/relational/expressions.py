"""Selection predicates over relations.

Two operations matter to the paper and both live here:

* **Evaluation** — does a tuple satisfy the predicate?  Used when executing
  user queries and when computing the tuple-set ``tset(C)`` of a category.
* **Overlap testing** — do two predicates on the *same attribute* admit a
  common value?  Paper Section 4.2 defines the exploration probability
  ``P(C)`` via the number of workload queries whose selection condition on
  the categorizing attribute *overlaps* the category label:

  - categorical: ``A IN {v1..vk}`` overlaps ``A IN B`` iff the value sets
    intersect;
  - numeric: ``vmin <= A <= vmax`` overlaps ``a1 <= A < a2`` iff the
    intervals intersect.

All predicates are immutable value objects; compound predicates
(:class:`Conjunction`) expose their per-attribute components so the workload
preprocessor can index them.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

_COMPARISON_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
    "!=": operator.ne,
}


def comparison_operator(op: str) -> Callable[[Any, Any], bool]:
    """Return the binary function implementing comparison ``op``.

    Shared by :class:`ComparisonPredicate` (row-at-a-time) and the
    columnar backend's column-at-a-time matcher, so both paths agree on
    operator semantics by construction.
    """
    try:
        return _COMPARISON_OPERATORS[op]
    except KeyError:
        raise ValueError(f"unknown comparison operator {op!r}") from None


class Predicate:
    """Base class for all selection predicates.

    Subclasses implement :meth:`matches` on a mapping from attribute name to
    value (one tuple in dict form).
    """

    def matches(self, row: Mapping[str, Any]) -> bool:
        """Return True if the tuple ``row`` satisfies this predicate."""
        raise NotImplementedError

    def attributes(self) -> frozenset[str]:
        """Return the set of attribute names this predicate constrains."""
        raise NotImplementedError


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """The always-true predicate (an unconstrained query)."""

    def matches(self, row: Mapping[str, Any]) -> bool:
        return True

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class InPredicate(Predicate):
    """``attribute IN {values}`` — the categorical selection condition.

    The value collection is stored as a frozenset, so membership tests and
    overlap checks are O(1) / O(min(n, m)).
    """

    attribute: str
    values: frozenset[Any]

    def __init__(self, attribute: str, values: Sequence[Any]) -> None:
        object.__setattr__(self, "attribute", attribute)
        object.__setattr__(self, "values", frozenset(values))
        if not self.values:
            raise ValueError(f"IN predicate on {attribute!r} needs at least one value")

    def matches(self, row: Mapping[str, Any]) -> bool:
        return row.get(self.attribute) in self.values

    def attributes(self) -> frozenset[str]:
        return frozenset((self.attribute,))

    def overlaps(self, other: "InPredicate") -> bool:
        """True iff the two IN-sets share at least one value (Section 4.2)."""
        if self.attribute != other.attribute:
            return False
        small, large = sorted((self.values, other.values), key=len)
        return any(v in large for v in small)

    def __str__(self) -> str:
        rendered = ", ".join(repr(v) for v in sorted(self.values, key=repr))
        return f"{self.attribute} IN ({rendered})"


@dataclass(frozen=True)
class RangePredicate(Predicate):
    """``low <= attribute <(=) high`` — the numeric selection condition.

    The lower bound is always inclusive.  The upper bound is inclusive for
    workload-query ranges (``vmin <= A <= vmax`` in the paper) and exclusive
    for category labels (``a1 <= A < a2``); the flag records which.

    Either bound may be infinite, representing one-sided conditions such as
    ``Price < 1000000``.
    """

    attribute: str
    low: float
    high: float
    high_inclusive: bool = True

    def __post_init__(self) -> None:
        if math.isnan(self.low) or math.isnan(self.high):
            raise ValueError("range bounds may not be NaN")
        if self.low > self.high:
            raise ValueError(
                f"empty range on {self.attribute!r}: low {self.low} > high {self.high}"
            )

    def matches(self, row: Mapping[str, Any]) -> bool:
        value = row.get(self.attribute)
        if value is None:
            return False
        if self.high_inclusive:
            return self.low <= value <= self.high
        return self.low <= value < self.high

    def attributes(self) -> frozenset[str]:
        return frozenset((self.attribute,))

    def overlaps(self, other: "RangePredicate") -> bool:
        """True iff the two intervals admit a common value (Section 4.2).

        Respects each side's upper-bound inclusivity, so the category
        ``200K <= Price < 225K`` does *not* overlap the query
        ``225K <= Price <= 250K``.
        """
        if self.attribute != other.attribute:
            return False
        if not self._upper_reaches(other.low):
            return False
        if not other._upper_reaches(self.low):
            return False
        return True

    def _upper_reaches(self, point: float) -> bool:
        """True if this range extends to ``point`` or beyond."""
        if self.high_inclusive:
            return self.high >= point
        return self.high > point

    def width(self) -> float:
        """Return ``high - low`` (may be ``inf`` for one-sided ranges)."""
        return self.high - self.low

    def __str__(self) -> str:
        upper = "<=" if self.high_inclusive else "<"
        return f"{self.low} <= {self.attribute} {upper} {self.high}"


@dataclass(frozen=True)
class IsNullPredicate(Predicate):
    """``attribute IS NULL`` — matches exactly the tuples no selection
    condition can reach (conditions never match NULL, Section 3.1's label
    predicates included).  Exists so missing-value categories can express
    their tuple-set as a predicate like every other label."""

    attribute: str

    def matches(self, row: Mapping[str, Any]) -> bool:
        return row.get(self.attribute) is None

    def attributes(self) -> frozenset[str]:
        return frozenset((self.attribute,))

    def __str__(self) -> str:
        return f"{self.attribute} IS NULL"


@dataclass(frozen=True)
class ComparisonPredicate(Predicate):
    """A single comparison ``attribute op constant`` (op in <, <=, >, >=, =, !=).

    Comparisons are how one-sided conditions appear in raw SQL; they are
    normally normalized to :class:`RangePredicate` / :class:`InPredicate`
    by :func:`normalize`, but remain directly evaluable.
    """

    attribute: str
    op: str
    value: Any

    _OPS = ("<", "<=", ">", ">=", "=", "!=")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def matches(self, row: Mapping[str, Any]) -> bool:
        actual = row.get(self.attribute)
        if actual is None:
            return False
        return comparison_operator(self.op)(actual, self.value)

    def attributes(self) -> frozenset[str]:
        return frozenset((self.attribute,))

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"


@dataclass(frozen=True)
class Conjunction(Predicate):
    """An AND of per-attribute predicates (the paper's SPJ WHERE clauses)."""

    parts: tuple[Predicate, ...]

    def __init__(self, parts: Sequence[Predicate]) -> None:
        flattened: list[Predicate] = []
        for part in parts:
            if isinstance(part, Conjunction):
                flattened.extend(part.parts)
            elif isinstance(part, TruePredicate):
                continue
            else:
                flattened.append(part)
        object.__setattr__(self, "parts", tuple(flattened))

    def matches(self, row: Mapping[str, Any]) -> bool:
        return all(part.matches(row) for part in self.parts)

    def attributes(self) -> frozenset[str]:
        names: set[str] = set()
        for part in self.parts:
            names |= part.attributes()
        return frozenset(names)

    def __iter__(self) -> Iterator[Predicate]:
        return iter(self.parts)

    def __str__(self) -> str:
        if not self.parts:
            return "TRUE"
        return " AND ".join(str(part) for part in self.parts)


def normalize(predicate: Predicate) -> Predicate:
    """Normalize a predicate into per-attribute In/Range conditions.

    Comparison predicates become one-sided ranges (``=`` on a non-numeric
    value becomes a one-element IN); multiple conditions on the same numeric
    attribute are intersected into a single range.  This is the canonical
    form the workload preprocessor consumes.

    Raises:
        ValueError: if conditions on one attribute are contradictory
            (e.g. ``Price > 100 AND Price < 50``) or mix kinds.
    """
    parts = list(predicate) if isinstance(predicate, Conjunction) else [predicate]
    by_attribute: dict[str, list[Predicate]] = {}
    for part in parts:
        if isinstance(part, TruePredicate):
            continue
        attrs = part.attributes()
        if len(attrs) != 1:
            raise ValueError(f"cannot normalize multi-attribute predicate {part}")
        by_attribute.setdefault(next(iter(attrs)), []).append(part)

    normalized: list[Predicate] = []
    for attribute in sorted(by_attribute):
        normalized.append(_merge_conditions(attribute, by_attribute[attribute]))
    if not normalized:
        return TruePredicate()
    if len(normalized) == 1:
        return normalized[0]
    return Conjunction(normalized)


def _merge_conditions(attribute: str, conditions: list[Predicate]) -> Predicate:
    """Merge all conditions on a single attribute into one In/Range predicate."""
    in_sets: list[frozenset[Any]] = []
    low, low_official = -math.inf, False
    high, high_inclusive = math.inf, True
    saw_range = False

    for condition in conditions:
        if isinstance(condition, InPredicate):
            in_sets.append(condition.values)
        elif isinstance(condition, RangePredicate):
            saw_range = True
            low = max(low, condition.low)
            high, high_inclusive = _tighter_upper(
                high, high_inclusive, condition.high, condition.high_inclusive
            )
        elif isinstance(condition, ComparisonPredicate):
            converted = _comparison_to_canonical(condition)
            if isinstance(converted, InPredicate):
                in_sets.append(converted.values)
            else:
                saw_range = True
                low = max(low, converted.low)
                high, high_inclusive = _tighter_upper(
                    high, high_inclusive, converted.high, converted.high_inclusive
                )
        else:
            raise ValueError(f"cannot normalize predicate {condition}")
        low_official = True

    if in_sets and saw_range:
        raise ValueError(
            f"attribute {attribute!r} mixes IN and range conditions; "
            "normalize cannot produce a single canonical condition"
        )
    if in_sets:
        merged = in_sets[0]
        for values in in_sets[1:]:
            merged &= values
        if not merged:
            raise ValueError(f"contradictory IN conditions on {attribute!r}")
        return InPredicate(attribute, sorted(merged, key=repr))
    if not low_official:
        return TruePredicate()
    if low > high or (low == high and not high_inclusive):
        raise ValueError(f"contradictory range conditions on {attribute!r}")
    return RangePredicate(attribute, low, high, high_inclusive=high_inclusive)


def _tighter_upper(
    high_a: float, inclusive_a: bool, high_b: float, inclusive_b: bool
) -> tuple[float, bool]:
    """Return the tighter of two upper bounds."""
    if high_b < high_a:
        return high_b, inclusive_b
    if high_b > high_a:
        return high_a, inclusive_a
    return high_a, inclusive_a and inclusive_b


def _comparison_to_canonical(
    comparison: ComparisonPredicate,
) -> InPredicate | RangePredicate:
    """Convert a comparison into the canonical In/Range form."""
    attribute, op, value = comparison.attribute, comparison.op, comparison.value
    if op == "=":
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return RangePredicate(attribute, float(value), float(value))
        return InPredicate(attribute, (value,))
    if op == "!=":
        raise ValueError(f"cannot normalize != condition on {attribute!r}")
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValueError(f"range comparison on non-numeric value {value!r}")
    numeric = float(value)
    if op == "<":
        return RangePredicate(attribute, -math.inf, numeric, high_inclusive=False)
    if op == "<=":
        return RangePredicate(attribute, -math.inf, numeric, high_inclusive=True)
    if op == ">":
        # Strictly-greater lower bounds are approximated by nudging the bound
        # up by the smallest representable step; workload statistics only use
        # range *overlap*, for which this is exact on integer-grid data.
        return RangePredicate(attribute, math.nextafter(numeric, math.inf), math.inf)
    return RangePredicate(attribute, numeric, math.inf)
