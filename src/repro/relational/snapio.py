"""Single-file binary snapshot containers (mmap-able, CRC-checked).

The warm-start path (docs/serving.md, "Durability & warm start") persists
two kinds of state — a :class:`~repro.relational.backends.ColumnStore`'s
typed arrays and a statistics epoch — and both need the same envelope: a
self-describing single file that loads with one ``mmap`` + a few
``array.frombytes`` memcpys, and that **fails stop** on any damage
rather than serving corrupt state.  This module is that envelope; the
domain formats on top of it live in :mod:`repro.relational.backends`
(``ColumnStore.dump/load``) and :mod:`repro.serving.warmstart`.

Layout::

    [8-byte magic "RPROSNP1"]
    [u32 container version]
    [u32 manifest length] [manifest JSON] [u32 CRC32(manifest)]
    [block 0 bytes][block 1 bytes]...

The manifest carries a ``blocks`` list of ``{name, length, crc32}``
descriptors; block offsets are derived by accumulation, so the payload
region is a plain concatenation that mmaps cleanly.  Every CRC (manifest
and blocks) is verified at open — :class:`SnapshotMismatch` names what
failed (``magic``, ``version``, ``crc``, ``schema``...), and callers
translate it into a counted cold-start fallback.

Writes are atomic: temp file in the same directory, fsync, rename,
directory fsync.  A crash at any point leaves the previous snapshot (or
none) — never a torn one.  ``rename_hook`` runs between the temp write
and the rename so the serving layer can inject its "die before rename"
crash point without this module knowing about fault injectors.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
import zlib
from pathlib import Path
from typing import Any, Callable, Iterable

MAGIC = b"RPROSNP1"
CONTAINER_VERSION = 1

_U32 = struct.Struct("<I")


class SnapshotMismatch(ValueError):
    """A snapshot file cannot be trusted (or understood) — fall back cold.

    ``reason`` is a short machine-readable slug (``missing``, ``magic``,
    ``version``, ``crc``, ``schema``, ``format``) used as the label on
    the ``warmstart.fallback`` counter.
    """

    def __init__(self, message: str, reason: str = "format") -> None:
        super().__init__(message)
        self.reason = reason


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_container(
    path: str | Path,
    manifest: dict[str, Any],
    blocks: Iterable[tuple[str, bytes]],
    rename_hook: Callable[[], None] | None = None,
) -> None:
    """Atomically write a container with ``manifest`` and named ``blocks``.

    The manifest must not already contain a ``blocks`` key (this function
    owns the descriptor list) and should record the native byte order —
    :func:`base_manifest` seeds both conventions.
    """
    path = Path(path)
    block_list = list(blocks)
    manifest = dict(manifest)
    manifest["blocks"] = [
        {"name": name, "length": len(data), "crc32": zlib.crc32(data)}
        for name, data in block_list
    ]
    encoded = json.dumps(manifest, separators=(",", ":")).encode("utf-8")
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(MAGIC)
        handle.write(_U32.pack(CONTAINER_VERSION))
        handle.write(_U32.pack(len(encoded)))
        handle.write(encoded)
        handle.write(_U32.pack(zlib.crc32(encoded)))
        for _, data in block_list:
            handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    if rename_hook is not None:
        rename_hook()
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def base_manifest(kind: str, version: int) -> dict[str, Any]:
    """Seed manifest for a domain format: kind/version/byte order.

    ``version`` is the *domain* format version (column layout, stats
    schema...), distinct from :data:`CONTAINER_VERSION`; bump it whenever
    the block layout changes so older readers fail stop instead of
    misreading.
    """
    return {"kind": kind, "version": version, "byteorder": sys.byteorder}


class Container:
    """An opened, fully CRC-verified container (context manager).

    Holds the mmap alive; :meth:`block` returns zero-copy memoryviews
    into it, so consume the blocks (``array.frombytes`` copies) before
    closing.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        try:
            self._file = open(self.path, "rb")
        except OSError as exc:
            raise SnapshotMismatch(
                f"snapshot missing: {exc}", reason="missing"
            ) from exc
        try:
            size = os.fstat(self._file.fileno()).st_size
            if size < len(MAGIC) + 2 * _U32.size:
                raise SnapshotMismatch(
                    f"{self.path.name}: too short to be a snapshot",
                    reason="magic",
                )
            self._mmap = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
            self._view = memoryview(self._mmap)
            self._children: list[memoryview] = []
            self.manifest = self._parse()
        except SnapshotMismatch:
            self.close()
            raise
        except Exception:
            self.close()
            raise

    def _parse(self) -> dict[str, Any]:
        view = self._view
        if bytes(view[: len(MAGIC)]) != MAGIC:
            raise SnapshotMismatch(
                f"{self.path.name}: bad magic", reason="magic"
            )
        offset = len(MAGIC)
        (container_version,) = _U32.unpack_from(view, offset)
        offset += _U32.size
        if container_version != CONTAINER_VERSION:
            raise SnapshotMismatch(
                f"{self.path.name}: container version {container_version} "
                f"(this build reads {CONTAINER_VERSION})",
                reason="version",
            )
        (manifest_len,) = _U32.unpack_from(view, offset)
        offset += _U32.size
        if offset + manifest_len + _U32.size > len(view):
            raise SnapshotMismatch(
                f"{self.path.name}: truncated manifest", reason="crc"
            )
        encoded = bytes(view[offset:offset + manifest_len])
        offset += manifest_len
        (manifest_crc,) = _U32.unpack_from(view, offset)
        offset += _U32.size
        if zlib.crc32(encoded) != manifest_crc:
            raise SnapshotMismatch(
                f"{self.path.name}: manifest CRC mismatch", reason="crc"
            )
        try:
            manifest = json.loads(encoded)
        except ValueError as exc:
            raise SnapshotMismatch(
                f"{self.path.name}: manifest not JSON: {exc}", reason="format"
            ) from exc
        if manifest.get("byteorder") not in (None, sys.byteorder):
            raise SnapshotMismatch(
                f"{self.path.name}: written on a {manifest['byteorder']}-endian "
                f"machine, this one is {sys.byteorder}",
                reason="format",
            )
        self._offsets: dict[str, tuple[int, int]] = {}
        cursor = offset
        for descriptor in manifest.get("blocks", []):
            name, length = descriptor["name"], descriptor["length"]
            if cursor + length > len(view):
                raise SnapshotMismatch(
                    f"{self.path.name}: block {name!r} truncated", reason="crc"
                )
            if zlib.crc32(view[cursor:cursor + length]) != descriptor["crc32"]:
                raise SnapshotMismatch(
                    f"{self.path.name}: block {name!r} CRC mismatch",
                    reason="crc",
                )
            self._offsets[name] = (cursor, length)
            cursor += length
        return manifest

    def block(self, name: str) -> memoryview:
        """Zero-copy view of a named block (already CRC-verified)."""
        try:
            offset, length = self._offsets[name]
        except KeyError:
            raise SnapshotMismatch(
                f"{self.path.name}: no block {name!r}", reason="format"
            ) from None
        view = self._view[offset:offset + length]
        # Track every exported view: the mmap refuses to close while any
        # is alive, so close() releases them (consumers copy via
        # array.frombytes and never hold a block past the with-body).
        self._children.append(view)
        return view

    def close(self) -> None:
        for child in getattr(self, "_children", ()):
            child.release()
        self._children = []
        view = getattr(self, "_view", None)
        if view is not None:
            view.release()
            self._view = None
        mapped = getattr(self, "_mmap", None)
        if mapped is not None:
            mapped.close()
            self._mmap = None
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "Container":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
