"""Column-oriented in-memory tables.

The engine stores each attribute as a column behind a pluggable
:class:`~repro.relational.backends.StorageBackend`:

* ``backend="rows"`` (default) — one plain Python list per attribute, the
  most forgiving layout and the fastest one for small tables;
* ``backend="columnar"`` — packed ``array.array`` numeric columns and
  dictionary-encoded TEXT/BOOL columns with column-at-a-time selection,
  built for paper-scale data (see ``docs/storage.md``);
* ``backend="sharded"`` — the columnar layout partitioned into
  shared-memory shards with selection/bucketing/grouping parallelized
  across a worker pool, for beyond-paper-scale tables.  Tune it with
  ``backend_options={"workers": N, ...}``; call :meth:`Table.close` (or
  drop the table) to release its shared memory.

Rows are materialized lazily as dicts or :class:`Row` views.  A
:class:`Table` owns its backend; selections return lightweight
:class:`RowSet` views (a table + a sequence of row indices) so that the
category tree can hold the ``tset`` of every node without copying tuple
data (paper Section 3.1: ``tset(C)`` is a subset of the result set R).

Bulk construction (:meth:`Table.from_columns`, :meth:`Table.from_rows`) is
the preferred loading path — it coerces column-wise and hands whole columns
to the backend, instead of paying per-row dict handling in an ``insert``
loop.
"""

from __future__ import annotations

import bisect
import math
from array import array
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro import perf
from repro.relational.backends import make_backend
from repro.relational.expressions import Predicate, TruePredicate
from repro.relational.schema import Attribute, TableSchema

#: Index containers RowSet adopts without copying (all are immutable by
#: convention here: nobody mutates a RowSet's indices after construction).
_INDEX_SEQUENCES = (tuple, list, range, array)


class Row(Mapping[str, Any]):
    """A read-only mapping view of one tuple of a table.

    Implements the Mapping protocol so predicates can evaluate rows without
    the table having to materialize dicts.
    """

    __slots__ = ("_table", "_index")

    def __init__(self, table: "Table", index: int) -> None:
        self._table = table
        self._index = index

    def __getitem__(self, name: str) -> Any:
        return self._table.column(name)[self._index]

    def __iter__(self) -> Iterator[str]:
        return iter(self._table.schema.names())

    def __len__(self) -> int:
        return len(self._table.schema)

    def as_dict(self) -> dict[str, Any]:
        """Materialize this row as a plain dict."""
        return dict(self)

    @property
    def index(self) -> int:
        """Position of this row in its owning table."""
        return self._index

    def __repr__(self) -> str:
        return f"Row({self.as_dict()!r})"


class Table:
    """An in-memory relation with column-oriented storage.

    Construction::

        table = Table(schema)                      # row backend
        table = Table(schema, backend="columnar")  # packed typed columns
        table.insert({"price": 250_000, "city": "Seattle"})
        table.extend(rows)

        # Bulk loads (preferred for anything larger than a handful of rows):
        table = Table.from_columns(schema, {"price": [...], "city": [...]})
        table = Table.from_rows(schema, dict_iterable, backend="columnar")

    Values are validated against the schema on insertion, so downstream code
    (partitioning, statistics) can assume type-clean columns.
    """

    def __init__(
        self,
        schema: TableSchema,
        backend: str = "rows",
        backend_options: Mapping[str, Any] | None = None,
    ) -> None:
        self.schema = schema
        self._backend = make_backend(backend, schema, **(backend_options or {}))
        self._size = 0
        self._groupby_indexes: dict[str, dict[Any, tuple[int, ...]]] = {}

    @property
    def backend_name(self) -> str:
        """The storage backend's registry name (``"rows"``/``"columnar"``/
        ``"sharded"``)."""
        return self._backend.name

    def close(self) -> None:
        """Release backend resources (sharded shm segments, worker pool).

        A no-op for the in-process backends; safe to call more than once.
        The table stays readable afterwards — the sharded backend falls
        back to its in-process base store.
        """
        close = getattr(self._backend, "close", None)
        if close is not None:
            close()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        schema: TableSchema,
        columns: Mapping[str, Sequence[Any]],
        backend: str = "rows",
        coerce: bool = True,
        backend_options: Mapping[str, Any] | None = None,
    ) -> "Table":
        """Build a table from whole columns — the bulk loading path.

        Every schema attribute must be present in ``columns`` and all
        columns must have equal length.  With ``coerce=True`` (default)
        each column is validated through the schema's data types; loaders
        that already coerced per value (``read_csv``) pass ``coerce=False``
        to skip the second pass.

        Raises:
            KeyError: on missing or unknown column names.
            ValueError: on ragged column lengths, or (with ``coerce=True``)
                the first uncoercible value, named as ``column 'a'[i]``.
        """
        names = schema.names()
        missing = [name for name in names if name not in columns]
        if missing:
            raise KeyError(
                f"missing columns {missing} for table {schema.name!r}"
            )
        unknown = sorted(set(columns) - set(names))
        if unknown:
            raise KeyError(
                f"unknown attributes {unknown} for table {schema.name!r}"
            )
        lengths = {name: len(columns[name]) for name in names}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged columns for {schema.name!r}: {lengths}")

        table = cls(schema, backend=backend, backend_options=backend_options)
        if coerce:
            loaded: Mapping[str, Sequence[Any]] = {
                attribute.name: _coerce_column(
                    attribute, columns[attribute.name]
                )
                for attribute in schema
            }
        else:
            loaded = {name: columns[name] for name in names}
        table._backend.load_columns(loaded)
        table._size = next(iter(lengths.values()), 0)
        return table

    @classmethod
    def from_rows(
        cls,
        schema: TableSchema,
        rows: Iterable[Mapping[str, Any]],
        backend: str = "rows",
        backend_options: Mapping[str, Any] | None = None,
    ) -> "Table":
        """Build a table from row mappings by transposing to columns.

        Missing attributes become NULL.  Unlike :meth:`insert`, unknown
        keys are silently ignored — the bulk path trusts its producer
        (generators, joins) and skips the per-row validation that makes
        ``insert`` safe for hand-built rows.
        """
        names = schema.names()
        columns: dict[str, list[Any]] = {name: [] for name in names}
        appends = [(name, columns[name].append) for name in names]
        for row in rows:
            get = row.get
            for name, append in appends:
                append(get(name))
        return cls.from_columns(
            schema, columns, backend=backend, backend_options=backend_options
        )

    @classmethod
    def from_backend(
        cls, schema: TableSchema, backend: Any, size: int
    ) -> "Table":
        """Adopt an already-populated storage backend without copying.

        The warm-start path (`repro serve --warm-start`) deserializes a
        :class:`~repro.relational.backends.ColumnStore` straight from a
        snapshot file and wraps it here — re-running ``from_columns``
        would pay a per-value materialization pass that the snapshot
        format exists to avoid.  The caller vouches that ``backend``
        holds ``size`` coerced rows matching ``schema``.
        """
        table = cls.__new__(cls)
        table.schema = schema
        table._backend = backend
        table._size = size
        table._groupby_indexes = {}
        return table

    def insert(self, row: Mapping[str, Any]) -> None:
        """Append one tuple given as a mapping from attribute name to value.

        Missing attributes are stored as NULL (subject to nullability);
        unknown keys raise so that generator bugs surface early.
        Invalidates every cached groupby index.
        """
        unknown = set(row) - set(self.schema.names())
        if unknown:
            raise KeyError(
                f"unknown attributes {sorted(unknown)} for table {self.schema.name!r}"
            )
        # Coerce the whole row before touching any column: a mid-row
        # coercion failure must not leave the columns torn (callers that
        # catch and skip bad rows — read_csv(strict=False) — rely on this).
        values = [
            attribute.coerce(row.get(attribute.name))
            for attribute in self.schema
        ]
        self._backend.append_row(values)
        self._size += 1
        if self._groupby_indexes:
            self._groupby_indexes.clear()

    def extend(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Append many tuples."""
        for row in rows:
            self.insert(row)

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Row]:
        return (Row(self, i) for i in range(self._size))

    def row(self, index: int) -> Row:
        """Return the tuple at ``index`` as a read-only mapping view."""
        if not 0 <= index < self._size:
            raise IndexError(f"row index {index} out of range [0, {self._size})")
        return Row(self, index)

    def column(self, name: str) -> Sequence[Any]:
        """Return the full column for attribute ``name`` (do not mutate)."""
        try:
            return self._backend.column(name)
        except KeyError:
            raise KeyError(
                f"no attribute {name!r} in table {self.schema.name!r}; "
                f"available: {sorted(self.schema.names())}"
            ) from None

    def attribute(self, name: str) -> Attribute:
        """Return the schema attribute called ``name``."""
        return self.schema.attribute(name)

    def groupby_index(self, name: str) -> Mapping[Any, tuple[int, ...]]:
        """value → ascending row indices for attribute ``name``, cached.

        Built on first use with one column scan and reused by every
        categorical partitioning across levels, nodes and repeated
        ``categorize`` calls; :meth:`insert` invalidates it.  NULLs are
        grouped under the ``None`` key so callers can decide whether a
        missing-value category exists.  Callers must not mutate the result.
        """
        index = self._groupby_indexes.get(name)
        if index is None:
            self.column(name)  # raise the helpful KeyError on unknown names
            perf.count("table.groupby_index.build")
            with perf.span("table.groupby_index.build"):
                index = self._backend.build_groupby(name)
            self._groupby_indexes[name] = index
        else:
            perf.count("table.groupby_index.hit")
        return index

    # -- relational operations ----------------------------------------------

    def select(self, predicate: Predicate) -> "RowSet":
        """Return the rows satisfying ``predicate`` as a view."""
        return self.all_rows().select(predicate)

    def all_rows(self) -> "RowSet":
        """Return a view of every row in the table."""
        return RowSet(self, range(self._size))

    def to_dicts(self) -> list[dict[str, Any]]:
        """Materialize the whole table as a list of dicts (tests, debugging)."""
        return [row.as_dict() for row in self]

    def __repr__(self) -> str:
        return (
            f"Table({self.schema.name!r}, rows={self._size}, "
            f"backend={self._backend.name!r})"
        )


def _coerce_column(attribute: Attribute, values: Sequence[Any]) -> list[Any]:
    """Coerce one whole column, naming the offending position on failure."""
    coerce = attribute.coerce
    try:
        return [coerce(value) for value in values]
    except (TypeError, ValueError):
        # Re-scan to locate the failure for the error message; the happy
        # path above stays a bare C-speed comprehension.
        for position, value in enumerate(values):
            try:
                coerce(value)
            except (TypeError, ValueError) as exc:
                raise type(exc)(
                    f"column {attribute.name!r}[{position}]: {exc}"
                ) from exc
        raise  # pragma: no cover - first pass failed, second cannot pass


class RowSet:
    """An immutable view of a subset of a table's rows.

    This is the concrete representation of the paper's ``tset(C)``: the
    category tree stores one RowSet per node, all sharing the underlying
    table.  Further selections (drilling into a subcategory) narrow the
    index sequence without copying data.

    The index sequence is stored as whatever compact form produced it —
    a ``range`` for whole-table views, the backend's filtered list for
    selections, a tuple for explicit construction — and only materialized
    as a tuple when :attr:`indices` is read.
    """

    __slots__ = ("table", "_indices", "_indices_tuple", "_ascending", "_derived")

    def __init__(self, table: Table, indices: Iterable[int]) -> None:
        self.table = table
        if isinstance(indices, _INDEX_SEQUENCES):
            self._indices: Sequence[int] = indices
        else:
            self._indices = tuple(indices)
        self._indices_tuple: tuple[int, ...] | None = (
            self._indices if type(self._indices) is tuple else None
        )
        self._ascending: bool | None = None
        self._derived: dict[Any, Any] | None = None

    def __len__(self) -> int:
        return len(self._indices)

    def __iter__(self) -> Iterator[Row]:
        return (Row(self.table, i) for i in self._indices)

    def __bool__(self) -> bool:
        return len(self._indices) > 0

    @property
    def indices(self) -> tuple[int, ...]:
        """Row positions (in the base table) contained in this view."""
        materialized = self._indices_tuple
        if materialized is None:
            materialized = self._indices_tuple = tuple(self._indices)
        return materialized

    @property
    def is_ascending(self) -> bool:
        """True when the view's indices are in ascending table order.

        Every RowSet produced by selection/partitioning from
        :meth:`Table.all_rows` is ascending; the flag is computed once and
        cached because the index-based partitioning fast path (which emits
        buckets in table order) is only equivalent to the scan path on
        ascending views.
        """
        ascending = self._ascending
        if ascending is None:
            ids = self._indices
            if isinstance(ids, range):
                ascending = ids.step > 0 or len(ids) <= 1
            else:
                iterator = iter(ids)
                next(iterator, None)
                ascending = all(a < b for a, b in zip(ids, iterator))
            self._ascending = ascending
        return ascending

    def derive(self, key: Any, build: Callable[[], Any]) -> Any:
        """Memoize an immutable derivation of this view under ``key``.

        The partitioners use this to cache per-(view, attribute) work —
        sorted value lists, min/max bounds, whole partitionings — directly
        on the view they derive from.  Because a RowSet is an immutable
        window over an append-only table (existing rows are never updated
        or deleted), any pure function of the view's rows stays valid for
        the view's lifetime, so entries never need invalidation; callers
        whose derivation also depends on external state (e.g. workload
        splitpoints) fold that state into ``key``.  Cached values are
        shared across repeated lookups and must not be mutated.
        """
        cache = self._derived
        if cache is None:
            cache = self._derived = {}
        try:
            value = cache[key]
        except KeyError:
            perf.count("rowset.derive.build")
            value = cache[key] = build()
        else:
            perf.count("rowset.derive.hit")
        return value

    def select(self, predicate: Predicate) -> "RowSet":
        """Return the sub-view of rows satisfying ``predicate``.

        The table's storage backend gets first crack at the predicate
        (column-at-a-time on the columnar backend); whatever it declines
        is evaluated row-at-a-time, so semantics never depend on the
        backend.
        """
        if isinstance(predicate, TruePredicate):
            return self
        table = self.table
        fast = table._backend.select_indices(predicate, self._indices)
        if fast is None:
            kept: Sequence[int] = [
                i for i in self._indices if predicate.matches(Row(table, i))
            ]
        else:
            kept, leftover = fast
            if leftover is not None:
                kept = [
                    i for i in kept if leftover.matches(Row(table, i))
                ]
        return RowSet(table, kept)

    def partition_by(
        self, classify: Callable[[Row], Any]
    ) -> dict[Any, "RowSet"]:
        """Split this view into disjoint sub-views keyed by ``classify(row)``.

        A single pass over the rows — this is what makes building one level
        of the category tree O(|tset|) rather than O(|tset| * #categories).

        NULL-handling contract: rows classified as ``None`` belong to **no
        bucket** and are silently dropped from the partitioning (e.g. NULL
        attribute values, or numeric values outside every bucket's range —
        neither has a category label).  The union of the returned views is
        therefore a subset, not a partition, of this view; callers that
        need the NULL rows ask for them explicitly (the missing-value
        category selects ``attribute IS NULL``).  Each call emits the
        number of dropped rows on the ``partition.dropped_rows`` perf
        counter so silent data loss is observable.
        """
        table = self.table
        buckets: dict[Any, list[int]] = {}
        dropped = 0
        for index in self._indices:
            key = classify(Row(table, index))
            if key is None:
                dropped += 1
                continue
            buckets.setdefault(key, []).append(index)
        if dropped:
            perf.count("partition.dropped_rows", dropped)
        return {key: RowSet(table, ids) for key, ids in buckets.items()}

    def partition_by_attribute(
        self, attribute: str, classify: Callable[[Any], Any]
    ) -> dict[Any, "RowSet"]:
        """Split by a function of ONE attribute's value — the fast path.

        Semantics match :meth:`partition_by` with
        ``lambda row: classify(row[attribute])`` — including its
        NULL-handling contract: rows whose key classifies as ``None`` are
        dropped and counted on ``partition.dropped_rows``.  The attribute's
        values are gathered from the storage backend in one pass (decoded
        codes / unpacked array values), skipping per-row :class:`Row` view
        construction.  The partitioners use this: level construction is
        the categorizer's inner loop, and on wide tables the view-free
        walk is several times faster.
        """
        table = self.table
        values = table._backend.gather(attribute, self._indices)
        buckets: dict[Any, list[int]] = {}
        dropped = 0
        for index, value in zip(self._indices, values):
            key = classify(value)
            if key is None:
                dropped += 1
                continue
            buckets.setdefault(key, []).append(index)
        if dropped:
            perf.count("partition.dropped_rows", dropped)
        return {key: RowSet(table, ids) for key, ids in buckets.items()}

    def partition_by_buckets(
        self, attribute: str, boundaries: Sequence[float]
    ) -> dict[int, "RowSet"]:
        """Bucket rows by ascending numeric ``boundaries`` — the numeric
        partitioners' inner loop.

        Bucket ``k`` holds rows with ``boundaries[k] <= value <
        boundaries[k+1]``; the final bucket closes at ``boundaries[-1]``.
        Same NULL-handling contract as :meth:`partition_by`: NULL,
        non-finite (NaN / ±inf), and out-of-range values belong to no
        bucket, are dropped, and are counted on
        ``partition.dropped_rows``.  Empty buckets are omitted from the
        result.

        The storage backend gets first crack (the columnar backend walks
        the packed array directly); the fallback gathers values once and
        classifies with a C-level ``bisect`` per value — either way there
        is no per-row Python ``classify`` frame, which is what makes this
        several times faster than :meth:`partition_by_attribute` with a
        bisecting closure.
        """
        table = self.table
        table.column(attribute)  # helpful KeyError on unknown names
        fast = table._backend.bucket_numeric(
            attribute, self._indices, boundaries
        )
        if fast is None:
            values = table._backend.gather(attribute, self._indices)
            low, high = boundaries[0], boundaries[-1]
            last = len(boundaries) - 2
            buckets: list[list[int]] = [[] for _ in range(last + 1)]
            dropped = 0
            bisect_right = bisect.bisect_right
            if all(map(math.isfinite, boundaries)):
                # NaN fails every comparison and ±inf is out of range, so
                # the range guard drops non-finite values for free here.
                for index, value in zip(self._indices, values):
                    if value is not None and low <= value <= high:
                        buckets[
                            bisect_right(boundaries, value, 0, last + 1) - 1
                        ].append(index)
                    else:
                        dropped += 1
            else:
                # Non-finite boundaries would wave NaN/±inf through to
                # bisect, whose order is undefined for them; same guarded
                # path as ColumnStore.bucket_numeric.
                isfinite = math.isfinite
                for index, value in zip(self._indices, values):
                    if (
                        value is not None
                        and isfinite(value)
                        and low <= value <= high
                    ):
                        buckets[
                            bisect_right(boundaries, value, 0, last + 1) - 1
                        ].append(index)
                    else:
                        dropped += 1
            fast = buckets, dropped
        index_lists, dropped = fast
        if dropped:
            perf.count("partition.dropped_rows", dropped)
        return {
            position: RowSet(table, ids)
            for position, ids in enumerate(index_lists)
            if ids
        }

    def values(self, attribute: str) -> list[Any]:
        """Return the values of ``attribute`` across this view, in row order."""
        self.table.column(attribute)  # helpful KeyError on unknown names
        return self.table._backend.gather(attribute, self._indices)

    def distinct_values(self, attribute: str) -> set[Any]:
        """Return the distinct non-NULL values of ``attribute`` in this view."""
        values = self.values(attribute)
        distinct = set(values)
        distinct.discard(None)
        return distinct

    def min_max(self, attribute: str) -> tuple[Any, Any] | None:
        """Return (min, max) of non-NULL values, or None if all-NULL/empty."""
        observed = [v for v in self.values(attribute) if v is not None]
        if not observed:
            return None
        return min(observed), max(observed)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Materialize this view as a list of dicts."""
        return [row.as_dict() for row in self]

    def __repr__(self) -> str:
        return f"RowSet(table={self.table.schema.name!r}, rows={len(self)})"
