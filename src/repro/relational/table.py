"""Column-oriented in-memory tables.

The engine stores each attribute as a plain Python list (a column).  Rows
are materialized lazily as dicts or :class:`Row` views.  This keeps scans —
the only access path the categorizer needs — simple and fast at the scale of
this reproduction, and makes per-attribute statistics (distinct values,
min/max) natural to compute.

A :class:`Table` owns its columns; selections return lightweight
:class:`RowSet` views (a table + a list of row indices) so that the category
tree can hold the ``tset`` of every node without copying tuple data
(paper Section 3.1: ``tset(C)`` is a subset of the result set R).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro import perf
from repro.relational.expressions import Predicate, TruePredicate
from repro.relational.schema import Attribute, TableSchema


class Row(Mapping[str, Any]):
    """A read-only mapping view of one tuple of a table.

    Implements the Mapping protocol so predicates can evaluate rows without
    the table having to materialize dicts.
    """

    __slots__ = ("_table", "_index")

    def __init__(self, table: "Table", index: int) -> None:
        self._table = table
        self._index = index

    def __getitem__(self, name: str) -> Any:
        return self._table.column(name)[self._index]

    def __iter__(self) -> Iterator[str]:
        return iter(self._table.schema.names())

    def __len__(self) -> int:
        return len(self._table.schema)

    def as_dict(self) -> dict[str, Any]:
        """Materialize this row as a plain dict."""
        return dict(self)

    @property
    def index(self) -> int:
        """Position of this row in its owning table."""
        return self._index

    def __repr__(self) -> str:
        return f"Row({self.as_dict()!r})"


class Table:
    """An in-memory relation with column-oriented storage.

    Construction::

        table = Table(schema)
        table.insert({"price": 250_000, "city": "Seattle"})
        table.extend(rows)

    Values are validated against the schema on insertion, so downstream code
    (partitioning, statistics) can assume type-clean columns.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._columns: dict[str, list[Any]] = {name: [] for name in schema.names()}
        self._size = 0
        self._groupby_indexes: dict[str, dict[Any, tuple[int, ...]]] = {}

    # -- construction ------------------------------------------------------

    def insert(self, row: Mapping[str, Any]) -> None:
        """Append one tuple given as a mapping from attribute name to value.

        Missing attributes are stored as NULL (subject to nullability);
        unknown keys raise so that generator bugs surface early.
        Invalidates every cached groupby index.
        """
        unknown = set(row) - set(self._columns)
        if unknown:
            raise KeyError(
                f"unknown attributes {sorted(unknown)} for table {self.schema.name!r}"
            )
        # Coerce the whole row before touching any column: a mid-row
        # coercion failure must not leave the columns torn (callers that
        # catch and skip bad rows — read_csv(strict=False) — rely on this).
        values = [
            (attribute.name, attribute.coerce(row.get(attribute.name)))
            for attribute in self.schema
        ]
        for name, value in values:
            self._columns[name].append(value)
        self._size += 1
        if self._groupby_indexes:
            self._groupby_indexes.clear()

    def extend(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Append many tuples."""
        for row in rows:
            self.insert(row)

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Row]:
        return (Row(self, i) for i in range(self._size))

    def row(self, index: int) -> Row:
        """Return the tuple at ``index`` as a read-only mapping view."""
        if not 0 <= index < self._size:
            raise IndexError(f"row index {index} out of range [0, {self._size})")
        return Row(self, index)

    def column(self, name: str) -> Sequence[Any]:
        """Return the full column for attribute ``name`` (do not mutate)."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no attribute {name!r} in table {self.schema.name!r}; "
                f"available: {sorted(self._columns)}"
            ) from None

    def attribute(self, name: str) -> Attribute:
        """Return the schema attribute called ``name``."""
        return self.schema.attribute(name)

    def groupby_index(self, name: str) -> Mapping[Any, tuple[int, ...]]:
        """value → ascending row indices for attribute ``name``, cached.

        Built on first use with one column scan and reused by every
        categorical partitioning across levels, nodes and repeated
        ``categorize`` calls; :meth:`insert` invalidates it.  NULLs are
        grouped under the ``None`` key so callers can decide whether a
        missing-value category exists.  Callers must not mutate the result.
        """
        index = self._groupby_indexes.get(name)
        if index is None:
            perf.count("table.groupby_index.build")
            with perf.span("table.groupby_index.build"):
                buckets: dict[Any, list[int]] = {}
                for position, value in enumerate(self.column(name)):
                    buckets.setdefault(value, []).append(position)
                index = {value: tuple(ids) for value, ids in buckets.items()}
            self._groupby_indexes[name] = index
        else:
            perf.count("table.groupby_index.hit")
        return index

    # -- relational operations ----------------------------------------------

    def select(self, predicate: Predicate) -> "RowSet":
        """Return the rows satisfying ``predicate`` as a view."""
        return self.all_rows().select(predicate)

    def all_rows(self) -> "RowSet":
        """Return a view of every row in the table."""
        return RowSet(self, range(self._size))

    def to_dicts(self) -> list[dict[str, Any]]:
        """Materialize the whole table as a list of dicts (tests, debugging)."""
        return [row.as_dict() for row in self]

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, rows={self._size})"


class RowSet:
    """An immutable view of a subset of a table's rows.

    This is the concrete representation of the paper's ``tset(C)``: the
    category tree stores one RowSet per node, all sharing the underlying
    table.  Further selections (drilling into a subcategory) narrow the
    index list without copying data.
    """

    __slots__ = ("table", "_indices", "_ascending", "_derived")

    def __init__(self, table: Table, indices: Iterable[int]) -> None:
        self.table = table
        self._indices: tuple[int, ...] = tuple(indices)
        self._ascending: bool | None = None
        self._derived: dict[Any, Any] | None = None

    def __len__(self) -> int:
        return len(self._indices)

    def __iter__(self) -> Iterator[Row]:
        return (Row(self.table, i) for i in self._indices)

    def __bool__(self) -> bool:
        return bool(self._indices)

    @property
    def indices(self) -> tuple[int, ...]:
        """Row positions (in the base table) contained in this view."""
        return self._indices

    @property
    def is_ascending(self) -> bool:
        """True when the view's indices are in ascending table order.

        Every RowSet produced by selection/partitioning from
        :meth:`Table.all_rows` is ascending; the flag is computed once and
        cached because the index-based partitioning fast path (which emits
        buckets in table order) is only equivalent to the scan path on
        ascending views.
        """
        ascending = self._ascending
        if ascending is None:
            ids = self._indices
            ascending = all(ids[k] < ids[k + 1] for k in range(len(ids) - 1))
            self._ascending = ascending
        return ascending

    def derive(self, key: Any, build: Callable[[], Any]) -> Any:
        """Memoize an immutable derivation of this view under ``key``.

        The partitioners use this to cache per-(view, attribute) work —
        sorted value lists, min/max bounds, whole partitionings — directly
        on the view they derive from.  Because a RowSet is an immutable
        window over an append-only table (existing rows are never updated
        or deleted), any pure function of the view's rows stays valid for
        the view's lifetime, so entries never need invalidation; callers
        whose derivation also depends on external state (e.g. workload
        splitpoints) fold that state into ``key``.  Cached values are
        shared across repeated lookups and must not be mutated.
        """
        cache = self._derived
        if cache is None:
            cache = self._derived = {}
        try:
            value = cache[key]
        except KeyError:
            perf.count("rowset.derive.build")
            value = cache[key] = build()
        else:
            perf.count("rowset.derive.hit")
        return value

    def select(self, predicate: Predicate) -> "RowSet":
        """Return the sub-view of rows satisfying ``predicate``."""
        if isinstance(predicate, TruePredicate):
            return self
        kept = [i for i in self._indices if predicate.matches(Row(self.table, i))]
        return RowSet(self.table, kept)

    def partition_by(
        self, classify: Callable[[Row], Any]
    ) -> dict[Any, "RowSet"]:
        """Split this view into disjoint sub-views keyed by ``classify(row)``.

        A single pass over the rows — this is what makes building one level
        of the category tree O(|tset|) rather than O(|tset| * #categories).
        Rows classified as ``None`` are dropped (e.g. NULL attribute values,
        which belong to no category label).
        """
        buckets: dict[Any, list[int]] = {}
        for index in self._indices:
            key = classify(Row(self.table, index))
            if key is None:
                continue
            buckets.setdefault(key, []).append(index)
        return {key: RowSet(self.table, ids) for key, ids in buckets.items()}

    def partition_by_attribute(
        self, attribute: str, classify: Callable[[Any], Any]
    ) -> dict[Any, "RowSet"]:
        """Split by a function of ONE attribute's value — the fast path.

        Semantics match :meth:`partition_by` with
        ``lambda row: classify(row[attribute])`` but the column is walked
        directly, skipping per-row :class:`Row` view construction.  The
        partitioners use this: level construction is the categorizer's
        inner loop, and on wide tables the view-free walk is several times
        faster.
        """
        column = self.table.column(attribute)
        buckets: dict[Any, list[int]] = {}
        for index in self._indices:
            key = classify(column[index])
            if key is None:
                continue
            buckets.setdefault(key, []).append(index)
        return {key: RowSet(self.table, ids) for key, ids in buckets.items()}

    def values(self, attribute: str) -> list[Any]:
        """Return the values of ``attribute`` across this view, in row order."""
        column = self.table.column(attribute)
        return [column[i] for i in self._indices]

    def distinct_values(self, attribute: str) -> set[Any]:
        """Return the distinct non-NULL values of ``attribute`` in this view."""
        column = self.table.column(attribute)
        return {column[i] for i in self._indices if column[i] is not None}

    def min_max(self, attribute: str) -> tuple[Any, Any] | None:
        """Return (min, max) of non-NULL values, or None if all-NULL/empty."""
        column = self.table.column(attribute)
        observed = [column[i] for i in self._indices if column[i] is not None]
        if not observed:
            return None
        return min(observed), max(observed)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Materialize this view as a list of dicts."""
        return [row.as_dict() for row in self]

    def __repr__(self) -> str:
        return f"RowSet(table={self.table.schema.name!r}, rows={len(self)})"
