"""CSV round-trip for tables.

Lets examples and tests persist synthetic datasets, and lets downstream
users load their own relations into the categorizer.  NULLs are written as
empty fields; types are restored from the schema on load.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

from repro.relational.schema import TableSchema
from repro.relational.table import Table


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` with a header row.

    NULL values become empty fields.
    """
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        names = table.schema.names()
        writer.writerow(names)
        for row in table:
            writer.writerow(["" if row[n] is None else row[n] for n in names])


def read_csv(schema: TableSchema, path: str | Path) -> Table:
    """Load a CSV written by :func:`write_csv` (or compatible) into a Table.

    The header must contain every schema attribute; extra columns are
    ignored.  Empty fields become NULL; other fields are coerced via the
    schema's data types.

    Raises:
        ValueError: if the header is missing schema attributes.
    """
    path = Path(path)
    table = Table(schema)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty; expected a header row") from None
        missing = set(schema.names()) - set(header)
        if missing:
            raise ValueError(
                f"{path} is missing attributes {sorted(missing)} "
                f"required by schema {schema.name!r}"
            )
        positions = {name: header.index(name) for name in schema.names()}
        for line_number, fields in enumerate(reader, start=2):
            row: dict[str, Any] = {}
            for name, position in positions.items():
                raw = fields[position] if position < len(fields) else ""
                row[name] = None if raw == "" else raw
            try:
                table.insert(row)
            except (TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{line_number}: {exc}") from exc
    return table
