"""CSV round-trip for tables.

Lets examples and tests persist synthetic datasets, and lets downstream
users load their own relations into the categorizer.  NULLs are written as
empty fields; types are restored from the schema on load.

Real exports are messier than our own round-trip: truncated lines, stray
delimiters, values that fail type coercion.  ``read_csv(strict=False)``
loads such files anyway, skipping each malformed row and accounting for it
in the labeled ``csv.bad_rows{reason=...}`` perf counter instead of
aborting the whole load — the posture a long-lived serving process needs
when refreshing its relation from an external feed.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

from repro import perf
from repro.relational.schema import TableSchema
from repro.relational.table import Table


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` with a header row.

    NULL values become empty fields.
    """
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        names = table.schema.names()
        writer.writerow(names)
        for row in table:
            writer.writerow(["" if row[n] is None else row[n] for n in names])


def read_csv(schema: TableSchema, path: str | Path, strict: bool = True) -> Table:
    """Load a CSV written by :func:`write_csv` (or compatible) into a Table.

    The header must contain every schema attribute; extra columns are
    ignored.  Empty fields become NULL; other fields are coerced via the
    schema's data types.

    Args:
        schema: the relation the file must conform to.
        path: the CSV file.
        strict: when True (the default), the first malformed row aborts
            the load with a ``ValueError`` naming the line.  When False,
            malformed rows are skipped and counted per failure mode in
            the ``csv.bad_rows{reason=...}`` perf counter: ``arity`` for
            rows whose field count does not match the header, ``type``
            for rows a schema coercion rejects.

    Raises:
        ValueError: if the header is missing schema attributes, or (in
            strict mode) for the first malformed row.
    """
    path = Path(path)
    table = Table(schema)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty; expected a header row") from None
        missing = set(schema.names()) - set(header)
        if missing:
            raise ValueError(
                f"{path} is missing attributes {sorted(missing)} "
                f"required by schema {schema.name!r}"
            )
        positions = {name: header.index(name) for name in schema.names()}
        for line_number, fields in enumerate(reader, start=2):
            if not strict and len(fields) != len(header):
                perf.count("csv.bad_rows", reason="arity")
                continue
            row: dict[str, Any] = {}
            for name, position in positions.items():
                raw = fields[position] if position < len(fields) else ""
                row[name] = None if raw == "" else raw
            try:
                table.insert(row)
            except (TypeError, ValueError) as exc:
                if strict:
                    raise ValueError(f"{path}:{line_number}: {exc}") from exc
                perf.count("csv.bad_rows", reason="type")
    perf.count("csv.rows_loaded", len(table))
    return table
