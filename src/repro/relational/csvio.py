"""CSV round-trip for tables.

Lets examples and tests persist synthetic datasets, and lets downstream
users load their own relations into the categorizer.  NULLs are written as
empty fields; types are restored from the schema on load.

Real exports are messier than our own round-trip: truncated lines, stray
delimiters, values that fail type coercion.  ``read_csv(strict=False)``
loads such files anyway, skipping each malformed row and accounting for it
in the labeled ``csv.bad_rows{reason=...}`` perf counter instead of
aborting the whole load — the posture a long-lived serving process needs
when refreshing its relation from an external feed.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Mapping

from repro import perf
from repro.relational.schema import TableSchema
from repro.relational.table import Table


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` with a header row.

    NULL values become empty fields.
    """
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        names = table.schema.names()
        writer.writerow(names)
        for row in table:
            writer.writerow(["" if row[n] is None else row[n] for n in names])


def read_csv(
    schema: TableSchema,
    path: str | Path,
    strict: bool = True,
    backend: str = "rows",
    backend_options: Mapping[str, Any] | None = None,
) -> Table:
    """Load a CSV written by :func:`write_csv` (or compatible) into a Table.

    The header must contain every schema attribute; extra columns are
    ignored.  Empty fields become NULL; other fields are coerced via the
    schema's data types.  Rows are coerced one at a time (so strict-mode
    errors can name the exact line and lenient mode can skip just the bad
    row) but **loaded in bulk**: good rows accumulate into per-attribute
    column lists handed to :meth:`Table.from_columns` in one shot, rather
    than paying a full ``insert`` per row.

    Args:
        schema: the relation the file must conform to.
        path: the CSV file.
        strict: when True (the default), the first malformed row aborts
            the load with a ``ValueError`` naming the line.  When False,
            malformed rows are skipped and counted per failure mode in
            the ``csv.bad_rows{reason=...}`` perf counter: ``arity`` for
            rows whose field count does not match the header, ``type``
            for rows a schema coercion rejects.
        backend: storage backend of the resulting table (``"rows"``,
            ``"columnar"`` or ``"sharded"``; see ``docs/storage.md``).
        backend_options: backend-specific constructor keywords (the
            sharded backend's ``workers`` etc.).

    Raises:
        ValueError: if the header is missing schema attributes, or (in
            strict mode) for the first malformed row.
    """
    path = Path(path)
    attributes = tuple(schema)
    columns: dict[str, list[Any]] = {a.name: [] for a in attributes}
    loaded_rows = 0
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty; expected a header row") from None
        missing = set(schema.names()) - set(header)
        if missing:
            raise ValueError(
                f"{path} is missing attributes {sorted(missing)} "
                f"required by schema {schema.name!r}"
            )
        plan = [(a, columns[a.name].append, header.index(a.name)) for a in attributes]
        for line_number, fields in enumerate(reader, start=2):
            if not strict and len(fields) != len(header):
                perf.count("csv.bad_rows", reason="arity")
                continue
            try:
                # Coerce the whole row before appending anything, keeping
                # the columns untorn when a later field fails.
                coerced = [
                    attribute.coerce(
                        None
                        if position >= len(fields) or fields[position] == ""
                        else fields[position]
                    )
                    for attribute, _, position in plan
                ]
            except (TypeError, ValueError) as exc:
                if strict:
                    raise ValueError(f"{path}:{line_number}: {exc}") from exc
                perf.count("csv.bad_rows", reason="type")
                continue
            for (_, append, _), value in zip(plan, coerced):
                append(value)
            loaded_rows += 1
    table = Table.from_columns(
        schema,
        columns,
        backend=backend,
        coerce=False,
        backend_options=backend_options,
    )
    perf.count("csv.rows_loaded", loaded_rows)
    return table
