"""Star-schema joins: materializing the wide table the paper assumes.

Footnote 6: "We assume that the workload queries are SPJ queries on a
database with star schema, i.e., they are equivalent to select queries on
the wide table obtained by joining the fact table with the dimension
tables."  Deployments store normalized data; this module materializes the
wide table once so everything downstream (query execution, preprocessing,
categorization) operates on the paper's canonical form.

Only the star shape is supported — one fact table, each dimension joined
by a single equality key — because that is exactly the class the paper's
assumption covers; a general join engine would be scope creep with no
consumer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table


@dataclass(frozen=True)
class DimensionJoin:
    """One dimension of a star schema.

    Attributes:
        table: the dimension table.
        fact_key: foreign-key attribute on the fact table.
        dimension_key: primary-key attribute on the dimension table; must
            be unique within it.
    """

    table: Table
    fact_key: str
    dimension_key: str


def join_star(
    fact: Table,
    dimensions: list[DimensionJoin],
    name: str | None = None,
    drop_keys: bool = True,
) -> Table:
    """Materialize the wide table of a star schema via hash joins.

    The result carries every fact attribute followed by every non-key
    dimension attribute, in declaration order.  Join semantics are the
    paper's implicit inner-equality join, with NULL foreign keys producing
    NULL dimension attributes (left-outer behaviour) so that incomplete
    facts are not silently dropped from the result set being categorized.

    Args:
        fact: the fact table.
        dimensions: the dimensions to fold in.
        name: name of the wide table (default ``<fact>_wide``).
        drop_keys: drop the foreign-key columns from the output (they are
            surrogate identifiers, meaningless as categorizing attributes).

    Raises:
        ValueError: on unknown key attributes, duplicate dimension keys,
            name collisions between fact and dimension attributes, or a
            foreign key value with no dimension row.
    """
    indexes = [_build_index(dimension) for dimension in dimensions]
    attributes = _wide_schema_attributes(fact, dimensions, drop_keys)
    wide_schema = TableSchema(name or f"{fact.schema.name}_wide", tuple(attributes))

    dropped_keys = {d.fact_key for d in dimensions} if drop_keys else set()

    def wide_rows():
        for row in fact:
            output: dict[str, Any] = {
                attribute: row[attribute]
                for attribute in fact.schema.names()
                if attribute not in dropped_keys
            }
            for dimension, index in zip(dimensions, indexes):
                key = row[dimension.fact_key]
                if key is None:
                    continue  # NULL FK: dimension attributes stay NULL
                try:
                    dimension_row = index[key]
                except KeyError:
                    raise ValueError(
                        f"fact row {row.index}: no {dimension.table.schema.name!r} "
                        f"row with {dimension.dimension_key} = {key!r}"
                    ) from None
                for attribute in dimension.table.schema.names():
                    if attribute != dimension.dimension_key:
                        output[attribute] = dimension_row[attribute]
            yield output

    # Bulk-load the joined rows; the wide table inherits the fact table's
    # storage backend so a columnar star stays columnar end to end.
    return Table.from_rows(wide_schema, wide_rows(), backend=fact.backend_name)


def _build_index(dimension: DimensionJoin):
    """Hash the dimension on its key, checking uniqueness."""
    dimension.table.schema.attribute(dimension.dimension_key)  # validate
    index: dict[Any, Any] = {}
    for row in dimension.table:
        key = row[dimension.dimension_key]
        if key is None:
            raise ValueError(
                f"dimension {dimension.table.schema.name!r} has a NULL key"
            )
        if key in index:
            raise ValueError(
                f"dimension {dimension.table.schema.name!r} has duplicate "
                f"key {key!r}"
            )
        index[key] = row
    return index


def _wide_schema_attributes(
    fact: Table, dimensions: list[DimensionJoin], drop_keys: bool
) -> list[Attribute]:
    dropped = {d.fact_key for d in dimensions} if drop_keys else set()
    for dimension in dimensions:
        fact.schema.attribute(dimension.fact_key)  # validate FK exists

    attributes: list[Attribute] = [
        attribute
        for attribute in fact.schema
        if attribute.name not in dropped
    ]
    seen = {attribute.name for attribute in attributes}
    for dimension in dimensions:
        for attribute in dimension.table.schema:
            if attribute.name == dimension.dimension_key:
                continue
            if attribute.name in seen:
                raise ValueError(
                    f"attribute {attribute.name!r} appears in both the fact "
                    f"table and dimension {dimension.table.schema.name!r}"
                )
            seen.add(attribute.name)
            # Dimension attributes are nullable in the wide table: a NULL
            # foreign key leaves them unset.
            attributes.append(
                Attribute(
                    attribute.name,
                    attribute.data_type,
                    attribute.kind,
                    nullable=True,
                )
            )
    return attributes
