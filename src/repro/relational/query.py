"""SPJ query representation and execution.

The paper assumes the query ``Q`` whose result set ``R`` is categorized is a
select-project-join query, equivalently a selection over a wide (star-joined)
table (Section 3.1 and footnote 6).  :class:`SelectQuery` models exactly
that: a table name, an optional projection, and a conjunctive selection
predicate.  The categorizer additionally reads the query's per-attribute
conditions to seed numeric partitioning ranges (Section 5.1.3: "if the user
query Q contains a selection condition on A, vmin and vmax can be obtained
directly from Q").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.relational.expressions import (
    Conjunction,
    InPredicate,
    Predicate,
    RangePredicate,
    TruePredicate,
    normalize,
)
from repro.relational.table import RowSet, Table


@dataclass(frozen=True)
class SelectQuery:
    """A select(-project) query over a single (possibly pre-joined) table.

    Attributes:
        table_name: the relation queried.
        predicate: conjunctive WHERE clause; defaults to TRUE.
        projection: attribute names to keep, or None for ``SELECT *``.
    """

    table_name: str
    predicate: Predicate = field(default_factory=TruePredicate)
    projection: tuple[str, ...] | None = None

    def normalized(self) -> "SelectQuery":
        """Return an equivalent query with a canonical per-attribute predicate."""
        return SelectQuery(
            table_name=self.table_name,
            predicate=normalize(self.predicate),
            projection=self.projection,
        )

    def conditions(self) -> dict[str, Predicate]:
        """Return the canonical per-attribute selection conditions.

        The result maps each constrained attribute to its single In/Range
        predicate — the form Sections 4.2 and 5.1 consume.
        """
        canonical = normalize(self.predicate)
        if isinstance(canonical, TruePredicate):
            return {}
        parts = list(canonical) if isinstance(canonical, Conjunction) else [canonical]
        return {next(iter(part.attributes())): part for part in parts}

    def condition_on(self, attribute: str) -> Predicate | None:
        """Return the canonical condition on ``attribute``, or None."""
        return self.conditions().get(attribute)

    def range_on(self, attribute: str) -> tuple[float, float] | None:
        """Return (vmin, vmax) for a numeric condition on ``attribute``.

        Returns None when the query does not constrain the attribute with a
        range.  One-sided ranges keep their infinite bound; the caller
        (numeric partitioning) replaces infinities with data-derived bounds.
        """
        condition = self.condition_on(attribute)
        if isinstance(condition, RangePredicate):
            return condition.low, condition.high
        return None

    def values_on(self, attribute: str) -> frozenset[Any] | None:
        """Return the IN-set for a categorical condition, or None."""
        condition = self.condition_on(attribute)
        if isinstance(condition, InPredicate):
            return condition.values
        return None

    def execute(self, table: Table) -> RowSet:
        """Run this query against ``table`` and return the result view.

        Projection does not physically drop columns (the result is a view);
        it is recorded so renderers can honour it.

        Raises:
            ValueError: if the table's name does not match, or the predicate
                references unknown attributes.
        """
        if table.schema.name != self.table_name:
            raise ValueError(
                f"query targets table {self.table_name!r} but got "
                f"{table.schema.name!r}"
            )
        unknown = self.predicate.attributes() - set(table.schema.names())
        if unknown:
            raise ValueError(
                f"query references unknown attributes {sorted(unknown)}"
            )
        if self.projection is not None:
            for name in self.projection:
                table.schema.attribute(name)
        return table.select(self.predicate)

    def __str__(self) -> str:
        columns = "*" if self.projection is None else ", ".join(self.projection)
        where = (
            ""
            if isinstance(self.predicate, TruePredicate)
            else f" WHERE {self.predicate}"
        )
        return f"SELECT {columns} FROM {self.table_name}{where}"
