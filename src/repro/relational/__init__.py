"""In-memory relational engine: the storage substrate of the reproduction.

Provides typed column-oriented tables, selection predicates with the
overlap semantics of paper Section 4.2, SPJ query execution, per-attribute
statistics, and CSV round-trip.
"""

from repro.relational.csvio import read_csv, write_csv
from repro.relational.expressions import (
    ComparisonPredicate,
    Conjunction,
    InPredicate,
    IsNullPredicate,
    Predicate,
    RangePredicate,
    TruePredicate,
    normalize,
)
from repro.relational.join import DimensionJoin, join_star
from repro.relational.query import SelectQuery
from repro.relational.schema import Attribute, TableSchema
from repro.relational.statistics import (
    CategoricalStats,
    NumericStats,
    categorical_stats,
    numeric_stats,
    value_counts,
)
from repro.relational.table import Row, RowSet, Table
from repro.relational.types import AttributeKind, DataType

__all__ = [
    "Attribute",
    "AttributeKind",
    "CategoricalStats",
    "ComparisonPredicate",
    "Conjunction",
    "DataType",
    "DimensionJoin",
    "InPredicate",
    "IsNullPredicate",
    "NumericStats",
    "Predicate",
    "RangePredicate",
    "Row",
    "RowSet",
    "SelectQuery",
    "Table",
    "TableSchema",
    "TruePredicate",
    "categorical_stats",
    "join_star",
    "normalize",
    "numeric_stats",
    "read_csv",
    "value_counts",
    "write_csv",
]
