"""In-memory relational engine: the storage substrate of the reproduction.

Provides typed column-oriented tables, selection predicates with the
overlap semantics of paper Section 4.2, SPJ query execution, per-attribute
statistics, and CSV round-trip.
"""

from repro.relational.backends import (
    BACKEND_NAMES,
    ColumnStore,
    DictColumn,
    FloatColumn,
    IntColumn,
    RowStore,
    StorageBackend,
    make_backend,
)
from repro.relational.csvio import read_csv, write_csv
from repro.relational.sharded import AscendingIndices, ShardedBackend
from repro.relational.expressions import (
    ComparisonPredicate,
    Conjunction,
    InPredicate,
    IsNullPredicate,
    Predicate,
    RangePredicate,
    TruePredicate,
    comparison_operator,
    normalize,
)
from repro.relational.join import DimensionJoin, join_star
from repro.relational.query import SelectQuery
from repro.relational.schema import Attribute, TableSchema
from repro.relational.statistics import (
    CategoricalStats,
    NumericStats,
    categorical_stats,
    numeric_stats,
    value_counts,
)
from repro.relational.table import Row, RowSet, Table
from repro.relational.types import AttributeKind, DataType

__all__ = [
    "AscendingIndices",
    "Attribute",
    "AttributeKind",
    "BACKEND_NAMES",
    "CategoricalStats",
    "ColumnStore",
    "ComparisonPredicate",
    "Conjunction",
    "DataType",
    "DictColumn",
    "DimensionJoin",
    "FloatColumn",
    "InPredicate",
    "IntColumn",
    "IsNullPredicate",
    "NumericStats",
    "Predicate",
    "RangePredicate",
    "Row",
    "RowSet",
    "RowStore",
    "SelectQuery",
    "ShardedBackend",
    "StorageBackend",
    "Table",
    "TableSchema",
    "TruePredicate",
    "categorical_stats",
    "comparison_operator",
    "join_star",
    "make_backend",
    "normalize",
    "numeric_stats",
    "read_csv",
    "value_counts",
    "write_csv",
]
