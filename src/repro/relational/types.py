"""Type system for the in-memory relational engine.

The paper's categorizer distinguishes exactly two *kinds* of attributes:

* **categorical** attributes, whose category labels have the form
  ``A IN {v1, ..., vk}`` (paper Section 3.1), and
* **numeric** attributes, whose category labels have the form
  ``a1 <= A < a2``.

The storage layer additionally needs concrete value types so that values
parsed from SQL strings, generated synthetically, or loaded from CSV can be
validated and compared consistently.  This module defines both notions:
:class:`DataType` (the physical type of a column) and :class:`AttributeKind`
(the logical role an attribute plays in categorization).
"""

from __future__ import annotations

import enum
from typing import Any


class DataType(enum.Enum):
    """Physical type of a column in a :class:`~repro.relational.table.Table`.

    Members carry the Python type used for storage so conversion and
    validation logic can be written generically.
    """

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"

    @property
    def python_type(self) -> type:
        """Return the Python type used to store values of this data type."""
        return _PYTHON_TYPES[self]

    def coerce(self, value: Any) -> Any:
        """Convert ``value`` to this data type, raising on lossy mismatches.

        ``None`` is passed through unchanged (SQL NULL semantics).  Integers
        are accepted for FLOAT columns; exact floats (``4.0``) are accepted
        for INT columns; strings are parsed for INT/FLOAT/BOOL.

        Raises:
            TypeError: if the value cannot be represented in this type
                without loss.
        """
        if value is None:
            return None
        if self is DataType.INT:
            return _coerce_int(value)
        if self is DataType.FLOAT:
            return _coerce_float(value)
        if self is DataType.BOOL:
            return _coerce_bool(value)
        return _coerce_text(value)

    def is_numeric(self) -> bool:
        """Return True for types that support range predicates natively."""
        return self in (DataType.INT, DataType.FLOAT)


class AttributeKind(enum.Enum):
    """Logical role of an attribute in categorization (paper Section 3.1).

    ``CATEGORICAL`` attributes are partitioned into single-value categories;
    ``NUMERIC`` attributes are partitioned into contiguous range buckets.
    The kind is declared in the schema rather than inferred from the data
    type because an INT column (e.g. a zip code) may well be categorical.
    """

    CATEGORICAL = "categorical"
    NUMERIC = "numeric"


_PYTHON_TYPES = {
    DataType.INT: int,
    DataType.FLOAT: float,
    DataType.TEXT: str,
    DataType.BOOL: bool,
}


def _coerce_int(value: Any) -> int:
    if isinstance(value, bool):
        raise TypeError(f"cannot store bool {value!r} in an INT column")
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        raise TypeError(f"cannot store non-integral float {value!r} in an INT column")
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError as exc:
            raise TypeError(f"cannot parse {value!r} as INT") from exc
    raise TypeError(f"cannot store {type(value).__name__} in an INT column")


def _coerce_float(value: Any) -> float:
    if isinstance(value, bool):
        raise TypeError(f"cannot store bool {value!r} in a FLOAT column")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError as exc:
            raise TypeError(f"cannot parse {value!r} as FLOAT") from exc
    raise TypeError(f"cannot store {type(value).__name__} in a FLOAT column")


def _coerce_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "t", "1", "yes"):
            return True
        if lowered in ("false", "f", "0", "no"):
            return False
        raise TypeError(f"cannot parse {value!r} as BOOL")
    raise TypeError(f"cannot store {type(value).__name__} in a BOOL column")


def _coerce_text(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, (int, float, bool)):
        return str(value)
    raise TypeError(f"cannot store {type(value).__name__} in a TEXT column")
