"""Offline quality audit over telemetry sinks (``repro audit``).

Joins the events of one or more JSONL sink files (rotated segments
included — pass them all) per trace id and reports:

* **reconstruction** — how many requests the sink describes, how many
  joined completely, and any partial traces / orphaned events (the CI
  smoke's invariant is zero of both at sample rate 1.0);
* the **latency waterfall** (queue -> compute -> respond quantiles) from
  the front-end events;
* **rung / coalesce / shed / tightened distributions** — these totals
  equal the server's ``/metrics`` counters for the run when sampling
  is 1.0;
* **cache hit ratios** by table and technique from the service events;
* a **tree-quality digest** from the decision events: chosen-attribute
  frequencies, threshold-x elimination reasons, and the CostAll/CostOne
  deltas between each level's winner and runner-up (how contested the
  choices were).

``diff_reports`` compares two sinks (``--diff baseline.jsonl``) for
A/B-judging workload-model variants: same traffic, did the trees change,
and did the margins that picked them move?

Batch statements (``req-000042#1``) join to their batch root, so a
``/categorize_batch`` request audits as one request with N service
events.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.telemetry.events import DECISION, FRONTEND, META, SERVICE, SHARDS
from repro.telemetry.pipeline import trace_root

#: Trace ids listed verbatim in reports before truncating to a count.
MAX_LISTED_IDS = 10


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def load_events(paths: Iterable[Path | str]) -> tuple[list[dict], int]:
    """Parse sink files into events; returns ``(events, skipped_lines)``.

    ``meta`` lines and unparsable lines (a torn tail from a crash) are
    skipped, the latter counted.

    Raises:
        FileNotFoundError: a named sink file does not exist.
    """
    events: list[dict] = []
    skipped = 0
    for path in paths:
        text = Path(path).read_text(encoding="utf-8")
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(event, dict) or event.get("type") == META:
                continue
            events.append(event)
    return events, skipped


@dataclass
class TraceGroup:
    """Every event of one request, joined on the trace root."""

    root: str
    frontend: list[dict] = field(default_factory=list)
    service: list[dict] = field(default_factory=list)
    decisions: list[dict] = field(default_factory=list)
    shards: list[dict] = field(default_factory=list)
    other: list[dict] = field(default_factory=list)

    def add(self, event: dict) -> None:
        kind = event.get("type")
        if kind == FRONTEND:
            self.frontend.append(event)
        elif kind == SERVICE:
            self.service.append(event)
        elif kind == DECISION:
            self.decisions.append(event)
        elif kind == SHARDS:
            self.shards.append(event)
        else:
            self.other.append(event)

    @property
    def table(self) -> str | None:
        """The relation this request resolved to, when any event names it."""
        for event in (*self.frontend, *self.service, *self.shards):
            table = event.get("table")
            if isinstance(table, str) and table:
                return table
        return None

    @property
    def expects_service(self) -> bool:
        """True when a front-end event promises at least one service event."""
        return any(
            e.get("outcome") == "ok"
            and not e.get("coalesced")
            and e.get("route") in ("/categorize", "/categorize_batch")
            for e in self.frontend
        )

    def orphaned_events(self) -> int:
        """Decision/shards events with no service event to hang off."""
        if self.service:
            return 0
        return len(self.decisions) + len(self.shards)

    @property
    def partial(self) -> bool:
        return (self.expects_service and not self.service) or bool(
            self.orphaned_events()
        )


def group_traces(events: Iterable[dict]) -> dict[str, TraceGroup]:
    groups: dict[str, TraceGroup] = {}
    for event in events:
        trace_id = event.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            continue
        root = trace_root(trace_id)
        group = groups.get(root)
        if group is None:
            group = groups[root] = TraceGroup(root)
        group.add(event)
    return groups


def _quantiles(values: list[float]) -> dict[str, float]:
    if not values:
        return {"n": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "n": len(values),
        "mean": round(sum(values) / len(values), 3),
        "p50": round(percentile(values, 0.5), 3),
        "p95": round(percentile(values, 0.95), 3),
        "p99": round(percentile(values, 0.99), 3),
        "max": round(max(values), 3),
    }


def _delta_summary(values: list[float]) -> dict[str, float]:
    if not values:
        return {"n": 0, "mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "n": len(values),
        "mean": round(sum(values) / len(values), 3),
        "min": round(min(values), 3),
        "max": round(max(values), 3),
    }


def build_report(
    events: list[dict],
    skipped_lines: int = 0,
    files: list[str] | None = None,
    table: str | None = None,
) -> dict[str, Any]:
    """Aggregate events into the audit report (a JSON-ready dict).

    ``table`` narrows the report to requests that resolved to one
    relation (``repro audit --table``); requests whose events never name
    a table are dropped by the filter.
    """
    groups = group_traces(events)
    if table is not None:
        groups = {
            root: group
            for root, group in groups.items()
            if group.table == table
        }
        events = [
            event
            for group in groups.values()
            for bucket in (
                group.frontend,
                group.service,
                group.decisions,
                group.shards,
                group.other,
            )
            for event in bucket
        ]
    partial_ids = sorted(g.root for g in groups.values() if g.partial)
    orphaned = sum(g.orphaned_events() for g in groups.values())

    frontends = [e for g in groups.values() for e in g.frontend]
    services = [e for g in groups.values() for e in g.service]
    decisions = [e for g in groups.values() for e in g.decisions]
    shard_events = [e for g in groups.values() for e in g.shards]

    waterfall = {
        stage: _quantiles(
            [
                float(e[field_name])
                for e in frontends
                if isinstance(e.get(field_name), (int, float))
            ]
        )
        for stage, field_name in (
            ("queue", "queue_ms"),
            ("compute", "compute_ms"),
            ("respond", "respond_ms"),
        )
    }

    cache: dict[str, dict[str, Any]] = {}
    for event in services:
        key = f"{event.get('table')}/{event.get('technique')}"
        slot = cache.setdefault(key, {"hits": 0, "misses": 0})
        slot["hits" if event.get("cached") else "misses"] += 1
    for slot in cache.values():
        total = slot["hits"] + slot["misses"]
        slot["ratio"] = round(slot["hits"] / total, 4) if total else 0.0

    shard_ops: dict[str, dict[str, Any]] = {}
    for event in shard_events:
        op = str(event.get("op"))
        slot = shard_ops.setdefault(op, {"calls": 0, "ms": []})
        slot["calls"] += 1
        if isinstance(event.get("elapsed_ms"), (int, float)):
            slot["ms"].append(float(event["elapsed_ms"]))
    shards_summary = {
        op: {"calls": slot["calls"], **_quantiles(slot["ms"])}
        for op, slot in sorted(shard_ops.items())
    }

    chosen: Counter[str] = Counter()
    for event in services:
        for attribute in event.get("chosen") or ():
            chosen[str(attribute)] += 1
    eliminations: Counter[str] = Counter()
    delta_all: list[float] = []
    delta_one: list[float] = []
    contested = 0
    levels_seen = 0
    for event in decisions:
        for entry in event.get("eliminated") or ():
            if isinstance(entry, dict) and entry.get("attribute"):
                eliminations[str(entry["attribute"])] += 1
        for level in event.get("levels") or ():
            if not isinstance(level, dict):
                continue
            levels_seen += 1
            d_all, d_one = level.get("delta_cost_all"), level.get("delta_cost_one")
            if isinstance(d_all, (int, float)):
                delta_all.append(float(d_all))
                cost_all = level.get("cost_all")
                if (
                    isinstance(cost_all, (int, float))
                    and cost_all > 0
                    and d_all < 0.05 * cost_all
                ):
                    contested += 1
            if isinstance(d_one, (int, float)):
                delta_one.append(float(d_one))

    per_table: dict[str, dict[str, Any]] = {}
    for group in groups.values():
        name = group.table or "<unresolved>"
        slot = per_table.setdefault(
            name,
            {
                "requests": 0,
                "shed": 0,
                "coalesced": 0,
                "partial": 0,
                "rungs": Counter(),
            },
        )
        slot["requests"] += 1
        slot["shed"] += sum(
            1 for e in group.frontend if e.get("outcome") == "shed"
        )
        slot["coalesced"] += sum(1 for e in group.frontend if e.get("coalesced"))
        slot["partial"] += 1 if group.partial else 0
        slot["rungs"].update(str(e.get("rung")) for e in group.service)
    tables = {
        name: {**slot, "rungs": dict(slot["rungs"])}
        for name, slot in sorted(per_table.items())
    }

    return {
        "files": files or [],
        "table_filter": table,
        "events": len(events),
        "skipped_lines": skipped_lines,
        "requests": len(groups),
        "complete": len(groups) - len(partial_ids),
        "partial": len(partial_ids),
        "partial_trace_ids": partial_ids[:MAX_LISTED_IDS],
        "orphaned_events": orphaned,
        "tables": tables,
        "routes": dict(Counter(str(e.get("route")) for e in frontends)),
        "outcomes": dict(Counter(str(e.get("outcome")) for e in frontends)),
        "statuses": dict(Counter(str(e.get("status")) for e in frontends)),
        "waterfall_ms": waterfall,
        "rungs": dict(Counter(str(e.get("rung")) for e in services)),
        "shed": sum(1 for e in frontends if e.get("outcome") == "shed"),
        "coalesced": sum(1 for e in frontends if e.get("coalesced")),
        "tightened": sum(1 for e in frontends if e.get("tightened")),
        "cache": {key: cache[key] for key in sorted(cache)},
        "shards": shards_summary,
        "quality": {
            "service_events": len(services),
            "decision_events": len(decisions),
            "levels": levels_seen,
            "contested_levels": contested,
            "chosen_attributes": dict(chosen.most_common()),
            "eliminations": dict(eliminations.most_common()),
            "delta_cost_all": _delta_summary(delta_all),
            "delta_cost_one": _delta_summary(delta_one),
        },
    }


def audit_files(
    paths: Iterable[Path | str], table: str | None = None
) -> dict[str, Any]:
    """Load sink files and build their report in one step."""
    paths = [Path(p) for p in paths]
    events, skipped = load_events(paths)
    return build_report(
        events, skipped, files=[str(p) for p in paths], table=table
    )


# -- diff mode ---------------------------------------------------------------


def _fractions(counts: dict[str, int]) -> dict[str, float]:
    total = sum(counts.values())
    if not total:
        return {}
    return {key: round(value / total, 4) for key, value in counts.items()}


def diff_reports(current: dict[str, Any], baseline: dict[str, Any]) -> dict[str, Any]:
    """Compare two audit reports for A/B judging (current vs baseline).

    The comparison is distributional, not absolute: the two runs may
    differ in length, so rung mix and chosen-attribute mix are compared
    as fractions, cost deltas as means.
    """
    cur_chosen = current["quality"]["chosen_attributes"]
    base_chosen = baseline["quality"]["chosen_attributes"]
    attribute_shift = {
        attribute: {
            "current": _fractions(cur_chosen).get(attribute, 0.0),
            "baseline": _fractions(base_chosen).get(attribute, 0.0),
        }
        for attribute in sorted(set(cur_chosen) | set(base_chosen))
    }
    return {
        "requests": {"current": current["requests"], "baseline": baseline["requests"]},
        "rung_mix": {
            rung: {
                "current": _fractions(current["rungs"]).get(rung, 0.0),
                "baseline": _fractions(baseline["rungs"]).get(rung, 0.0),
            }
            for rung in sorted(set(current["rungs"]) | set(baseline["rungs"]))
        },
        "cache_ratio": {
            key: {
                "current": current["cache"].get(key, {}).get("ratio"),
                "baseline": baseline["cache"].get(key, {}).get("ratio"),
            }
            for key in sorted(set(current["cache"]) | set(baseline["cache"]))
        },
        "chosen_attributes": attribute_shift,
        "mean_delta_cost_all": {
            "current": current["quality"]["delta_cost_all"]["mean"],
            "baseline": baseline["quality"]["delta_cost_all"]["mean"],
        },
        "compute_p50_ms": {
            "current": current["waterfall_ms"]["compute"]["p50"],
            "baseline": baseline["waterfall_ms"]["compute"]["p50"],
        },
    }


# -- text rendering ----------------------------------------------------------


def format_report(report: dict[str, Any]) -> str:
    """Human-readable audit report (``--format text``)."""
    from repro.study.report import format_table

    sections: list[str] = []
    sections.append(
        format_table(
            ["metric", "value"],
            [
                ["events", report["events"]],
                ["skipped lines", report["skipped_lines"]],
                ["requests (trace roots)", report["requests"]],
                ["complete", report["complete"]],
                ["partial", report["partial"]],
                ["orphaned events", report["orphaned_events"]],
                ["shed (503)", report["shed"]],
                ["coalesced", report["coalesced"]],
                ["tightened deadlines", report["tightened"]],
            ],
            title="Reconstruction: " + (", ".join(report["files"]) or "<events>"),
        )
    )
    if report["partial_trace_ids"]:
        sections.append(
            "partial traces: " + ", ".join(report["partial_trace_ids"])
        )

    waterfall_rows = [
        [
            stage,
            stats["n"],
            f"{stats['mean']:.2f}",
            f"{stats['p50']:.2f}",
            f"{stats['p95']:.2f}",
            f"{stats['p99']:.2f}",
            f"{stats['max']:.2f}",
        ]
        for stage, stats in report["waterfall_ms"].items()
    ]
    sections.append(
        format_table(
            ["stage", "n", "mean", "p50", "p95", "p99", "max"],
            waterfall_rows,
            title="Latency waterfall (ms)",
        )
    )

    distribution_rows = [
        [f"rung {rung}", count] for rung, count in sorted(report["rungs"].items())
    ] + [
        [f"outcome {outcome}", count]
        for outcome, count in sorted(report["outcomes"].items())
    ]
    if distribution_rows:
        sections.append(
            format_table(
                ["series", "count"], distribution_rows, title="Distributions"
            )
        )

    tables = report.get("tables") or {}
    if tables:
        sections.append(
            format_table(
                ["table", "requests", "shed", "coalesced", "partial", "rungs"],
                [
                    [
                        name,
                        slot["requests"],
                        slot["shed"],
                        slot["coalesced"],
                        slot["partial"],
                        ", ".join(
                            f"{rung}: {count}"
                            for rung, count in sorted(slot["rungs"].items())
                        )
                        or "none",
                    ]
                    for name, slot in tables.items()
                ],
                title="Per-table",
            )
        )

    if report["cache"]:
        sections.append(
            format_table(
                ["table/technique", "hits", "misses", "ratio"],
                [
                    [key, slot["hits"], slot["misses"], f"{slot['ratio']:.3f}"]
                    for key, slot in report["cache"].items()
                ],
                title="Cache hit ratio",
            )
        )

    if report["shards"]:
        sections.append(
            format_table(
                ["op", "calls", "mean ms", "p95 ms", "max ms"],
                [
                    [
                        op,
                        stats["calls"],
                        f"{stats['mean']:.2f}",
                        f"{stats['p95']:.2f}",
                        f"{stats['max']:.2f}",
                    ]
                    for op, stats in report["shards"].items()
                ],
                title="Sharded kernels",
            )
        )

    quality = report["quality"]
    quality_rows = [
        ["service events", quality["service_events"]],
        ["decision events", quality["decision_events"]],
        ["levels traced", quality["levels"]],
        ["contested levels (<5% margin)", quality["contested_levels"]],
        [
            "mean delta CostAll (runner-up - chosen)",
            f"{quality['delta_cost_all']['mean']:.2f}",
        ],
        [
            "mean delta CostOne",
            f"{quality['delta_cost_one']['mean']:.2f}",
        ],
    ]
    sections.append(
        format_table(["metric", "value"], quality_rows, title="Tree quality digest")
    )
    if quality["chosen_attributes"]:
        sections.append(
            format_table(
                ["attribute", "levels chosen"],
                list(quality["chosen_attributes"].items()),
                title="Chosen attributes",
            )
        )
    if quality["eliminations"]:
        sections.append(
            format_table(
                ["attribute", "eliminated (threshold x)"],
                list(quality["eliminations"].items()),
                title="Eliminations",
            )
        )
    return "\n\n".join(sections)


def format_diff(diff: dict[str, Any]) -> str:
    """Human-readable A/B comparison (``--diff``)."""
    from repro.study.report import format_table

    def pair_rows(mapping: dict[str, dict[str, Any]]) -> list[list[Any]]:
        rows = []
        for key, sides in mapping.items():
            current, base = sides["current"], sides["baseline"]
            rows.append(
                [
                    key,
                    "-" if current is None else current,
                    "-" if base is None else base,
                ]
            )
        return rows

    sections = [
        format_table(
            ["metric", "current", "baseline"],
            [
                [
                    "requests",
                    diff["requests"]["current"],
                    diff["requests"]["baseline"],
                ],
                [
                    "mean delta CostAll",
                    diff["mean_delta_cost_all"]["current"],
                    diff["mean_delta_cost_all"]["baseline"],
                ],
                [
                    "compute p50 ms",
                    diff["compute_p50_ms"]["current"],
                    diff["compute_p50_ms"]["baseline"],
                ],
            ],
            title="Audit diff (current vs baseline)",
        ),
        format_table(
            ["rung", "current", "baseline"],
            pair_rows(diff["rung_mix"]),
            title="Rung mix (fractions)",
        ),
        format_table(
            ["attribute", "current", "baseline"],
            pair_rows(diff["chosen_attributes"]),
            title="Chosen-attribute mix (fractions)",
        ),
    ]
    if diff["cache_ratio"]:
        sections.append(
            format_table(
                ["table/technique", "current", "baseline"],
                pair_rows(diff["cache_ratio"]),
                title="Cache hit ratio",
            )
        )
    return "\n\n".join(sections)
