"""The request-telemetry pipeline: bounded queue, writer thread, JSONL sink.

Design constraints, in priority order:

1. **Never block a request thread.**  :meth:`TelemetryPipeline.emit`
   enqueues with ``put_nowait`` and returns; when the bounded queue is
   full the event is *dropped and counted* (``telemetry.dropped``), never
   waited on.  A wedged disk slows the writer thread, not the service.
2. **Near-zero cost when uninstalled.**  Every hook in the serving stack
   goes through the module-level helpers below, whose disabled path is a
   single global load and ``None`` check — the same discipline as
   :mod:`repro.perf.instrument`.
3. **Whole traces or nothing.**  Sampling is a *deterministic* function
   of the trace id (:meth:`TelemetryPipeline.sampled`), so the front end,
   the service, and the sharded backend independently agree on whether a
   request is in the sample — a trace never comes out half-shipped
   because two layers flipped different coins.  Batch statements share
   their root id's fate (``req-000042#3`` samples as ``req-000042``).

The sink is a :class:`RotatingJsonlSink`: one JSON object per line,
rotated by size (``events.jsonl`` -> ``events.jsonl.1`` ascending, newest
always in the bare path), each segment opened with a ``meta`` line naming
the schema.  ``fsync_policy`` trades durability for throughput:
``"never"`` (page cache only), ``"rotate"`` (fsync on rotation and close
— the default), ``"always"`` (fsync every write; for tests and audits of
the pipeline itself, not production traffic).

``close()`` drains the queue tail before closing the sink, so a clean
shutdown (the CLI's ``finally`` block) loses nothing that was accepted.
"""

from __future__ import annotations

import contextlib
import json
import os
import queue
import threading
import time
import zlib
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from repro import perf

#: Schema tag written on the meta line of every sink segment.
SCHEMA = "repro.telemetry.v1"

FSYNC_POLICIES = ("never", "rotate", "always")

_STOP = object()


def trace_root(trace_id: str) -> str:
    """The sampling root of a trace id (batch statements share it)."""
    return trace_id.split("#", 1)[0]


class RotatingJsonlSink:
    """Size-rotated JSON-lines file sink.

    Not thread-safe by itself — the pipeline's single writer thread owns
    it.  Rotation renames the active file to ``<path>.<n>`` (n ascending,
    so ``<path>`` is always the newest segment) and reopens; every opened
    segment starts with a ``{"type": "meta", ...}`` line so a consumer
    can verify the schema before trusting the rest.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        max_bytes: int = 16 * 1024 * 1024,
        fsync_policy: str = "rotate",
        clock: Callable[[], float] = time.time,
    ) -> None:
        if max_bytes < 1024:
            raise ValueError(f"max_bytes must be >= 1024, got {max_bytes}")
        if fsync_policy not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync_policy must be one of {FSYNC_POLICIES}, got {fsync_policy!r}"
            )
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.fsync_policy = fsync_policy
        self._clock = clock
        self._segment = 0
        self.rotated: list[Path] = []
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = self._open_segment()

    def _open_segment(self):
        file = open(self.path, "w", encoding="utf-8")
        meta = {
            "ts": self._clock(),
            "type": "meta",
            "schema": SCHEMA,
            "segment": self._segment,
        }
        file.write(json.dumps(meta) + "\n")
        self._segment += 1
        return file

    def write(self, events: Sequence[dict[str, Any]]) -> None:
        for event in events:
            self._file.write(json.dumps(event, default=str) + "\n")
        if self.fsync_policy == "always":
            self._file.flush()
            os.fsync(self._file.fileno())
        if self._file.tell() >= self.max_bytes:
            self._rotate()

    def _rotate(self) -> None:
        self._file.flush()
        if self.fsync_policy in ("rotate", "always"):
            os.fsync(self._file.fileno())
        self._file.close()
        rotated = self.path.with_name(f"{self.path.name}.{len(self.rotated) + 1}")
        self.path.rename(rotated)
        self.rotated.append(rotated)
        perf.count("telemetry.rotations")
        self._file = self._open_segment()

    def close(self) -> None:
        if self._file.closed:
            return
        self._file.flush()
        if self.fsync_policy in ("rotate", "always"):
            with contextlib.suppress(OSError):
                os.fsync(self._file.fileno())
        self._file.close()

    def segments(self) -> list[Path]:
        """Every segment written so far, oldest first (active one last)."""
        return [*self.rotated, self.path]


class TelemetryPipeline:
    """Bounded, non-blocking event shipper over one sink.

    Args:
        sink: anything with ``write(events)`` / ``close()`` — normally a
            :class:`RotatingJsonlSink`.
        sample_rate: fraction of trace roots shipped, in [0, 1].
        queue_capacity: bounded buffer between request threads and the
            writer; overflow drops (counted), never blocks.
        collect_decisions: when True, the service forces decision-trace
            collection on sampled cache misses so every sampled request
            ships its tree's reasoning; False ships only the cheap
            events (frontend/service/shards).
        clock: wall-clock source stamped on events (injectable in tests).
    """

    def __init__(
        self,
        sink: Any,
        sample_rate: float = 1.0,
        queue_capacity: int = 2048,
        collect_decisions: bool = True,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        if queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {queue_capacity}")
        self.sink = sink
        self.sample_rate = sample_rate
        self.collect_decisions = collect_decisions
        self._clock = clock
        self._queue: queue.Queue = queue.Queue(maxsize=queue_capacity)
        self._closed = False
        self.emitted = 0
        self.dropped = 0
        self.written = 0
        self.write_errors = 0
        self._writer = threading.Thread(
            target=self._drain, daemon=True, name="telemetry-writer"
        )
        self._writer.start()

    # -- request-thread side (never blocks) ---------------------------------

    def sampled(self, trace_id: str | None) -> bool:
        """Deterministic per-trace sampling decision (see module docs)."""
        if not trace_id:
            return False  # an untraceable event can never be joined
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        digest = zlib.crc32(trace_root(trace_id).encode("utf-8")) & 0xFFFFFFFF
        return digest / 4294967296.0 < rate

    def emit(self, type_: str, trace_id: str | None, **fields: Any) -> bool:
        """Enqueue one event; False when dropped (queue full / closed)."""
        if self._closed:
            return False
        event = {"ts": self._clock(), "type": type_, "trace_id": trace_id}
        event.update(fields)
        try:
            self._queue.put_nowait(event)
        except queue.Full:
            self.dropped += 1
            perf.count("telemetry.dropped")
            return False
        self.emitted += 1
        perf.count("telemetry.emitted")
        return True

    # -- writer side ---------------------------------------------------------

    def _drain(self) -> None:
        while True:
            event = self._queue.get()
            try:
                if event is _STOP:
                    return
                try:
                    self.sink.write([event])
                except Exception:
                    self.write_errors += 1
                    perf.count("telemetry.write_errors")
                else:
                    self.written += 1
            finally:
                self._queue.task_done()

    # -- lifecycle ------------------------------------------------------------

    def flush(self, timeout_s: float = 5.0) -> bool:
        """Wait (bounded) for everything accepted so far to reach the sink."""
        deadline = time.monotonic() + timeout_s
        while self._queue.unfinished_tasks and time.monotonic() < deadline:
            time.sleep(0.002)
        return self._queue.unfinished_tasks == 0

    def close(self, timeout_s: float = 5.0) -> bool:
        """Flush the tail, stop the writer, close the sink.

        Returns False when the writer could not drain in time (a wedged
        sink); the pipeline is closed regardless — it must never hold a
        shutdown hostage.
        """
        if self._closed:
            return True
        self._closed = True
        drained = True
        try:
            self._queue.put(_STOP, timeout=timeout_s)
        except queue.Full:
            drained = False
        self._writer.join(timeout_s)
        drained = drained and not self._writer.is_alive()
        with contextlib.suppress(Exception):
            self.sink.close()
        return drained

    def stats(self) -> dict[str, int]:
        return {
            "emitted": self.emitted,
            "dropped": self.dropped,
            "written": self.written,
            "write_errors": self.write_errors,
        }


# -- module-level runtime (the hooks' fast path) ----------------------------

_ACTIVE: TelemetryPipeline | None = None

#: Trace id of the sampled request being served on this thread/context.
#: Set only inside the service while a *sampled* request computes, so
#: deep layers (the sharded backend) can emit without plumbing ids
#: through every signature.
_SCOPE: ContextVar[str | None] = ContextVar("repro_telemetry_scope", default=None)


def install(pipeline: TelemetryPipeline) -> TelemetryPipeline:
    """Make ``pipeline`` the process-wide event destination."""
    global _ACTIVE
    _ACTIVE = pipeline
    return pipeline


def uninstall() -> TelemetryPipeline | None:
    """Detach (but do not close) the active pipeline; returns it."""
    global _ACTIVE
    pipeline, _ACTIVE = _ACTIVE, None
    return pipeline


def active() -> TelemetryPipeline | None:
    """The installed pipeline, or None (the common, free case)."""
    return _ACTIVE


@contextlib.contextmanager
def installed(pipeline: TelemetryPipeline) -> Iterator[TelemetryPipeline]:
    """Scoped install/uninstall for tests."""
    install(pipeline)
    try:
        yield pipeline
    finally:
        uninstall()


def emit(type_: str, trace_id: str | None, **fields: Any) -> bool:
    """Emit one event iff a pipeline is installed and the trace sampled."""
    pipeline = _ACTIVE
    if pipeline is None or not pipeline.sampled(trace_id):
        return False
    return pipeline.emit(type_, trace_id, **fields)


@contextlib.contextmanager
def scope(trace_id: str) -> Iterator[None]:
    """Mark this context as serving a sampled request (see ``_SCOPE``)."""
    token = _SCOPE.set(trace_id)
    try:
        yield
    finally:
        _SCOPE.reset(token)


def scoped_trace_id() -> str | None:
    """The sampled request this context serves, or None (one-check fast)."""
    if _ACTIVE is None:
        return None
    return _SCOPE.get()
