"""Event schema (``repro.telemetry.v1``) and digest builders.

One request that samples in produces up to four event types, all joined
by ``trace_id`` (batch statements carry ``<root>#<position>`` ids and
join on the root):

``frontend``
    Emitted by the HTTP front end after the response bytes are written.
    Fields: ``frontend`` (``async`` | ``threading``), ``route``,
    ``table`` (the resolved relation, None when resolution failed),
    ``status``, ``outcome`` (``ok`` | ``shed`` | ``invalid`` | ``stalled``
    | ``error``), the latency waterfall ``queue_ms`` (arrival ->
    admitted), ``compute_ms`` (admitted -> service returned),
    ``respond_ms`` (service returned -> bytes written), and the admission
    story: ``pressure``, ``tightened``, ``deadline_ms`` (the effective,
    possibly tightened deadline), ``coalesced`` + ``leader_trace_id``
    for singleflight followers.

``service``
    Emitted by :class:`~repro.serving.service.CategorizationService` per
    served statement: ``table``, ``technique``, ``backend``, ``sql``
    (normalized), ``rung``, ``epoch``, ``cached``, ``elapsed_ms``,
    ``rows``, ``categories``, ``chosen`` (per-level attributes),
    ``degraded`` (reason, or None).

``decision``
    The :class:`~repro.core.trace.DecisionTrace` digest
    (:func:`decision_digest`) for freshly computed trees: threshold-x
    eliminations and, per level, the chosen attribute's CostAll/CostOne
    plus the runner-up deltas — the fields the audit tool's quality
    digest aggregates.  The full trace (every candidate's node
    evaluations) stays available via the ``trace: true`` request flag;
    shipping all of it per sampled request would swamp the sink.

``shards``
    One per parallelized kernel call on the sharded backend: ``table``,
    ``op`` (``select`` | ``bucket`` | ``groupby``), ``shards``, per-shard
    ``shard_ms``, and the parent-side ``elapsed_ms``.

Every event also carries ``ts`` (wall-clock seconds).  Segments start
with a ``{"type": "meta", "schema": "repro.telemetry.v1", ...}`` line.
"""

from __future__ import annotations

from typing import Any

from repro.core.trace import DecisionTrace

FRONTEND = "frontend"
SERVICE = "service"
DECISION = "decision"
SHARDS = "shards"
META = "meta"


def decision_digest(trace: DecisionTrace) -> dict[str, Any]:
    """Compress a decision trace to the audit tool's quality fields.

    Per level: the chosen attribute's CostAll/CostOne, the best viable
    runner-up, and the cost deltas between them (how contested the choice
    was — a tiny ``delta_cost_all`` means a different workload model
    could plausibly flip the level).
    """
    levels = []
    for level in trace.levels:
        chosen = None
        if level.chosen is not None:
            try:
                chosen = level.candidate(level.chosen)
            except KeyError:
                chosen = None
        runner_up = None
        if chosen is not None:
            viable = sorted(
                (
                    c
                    for c in level.candidates
                    if c.viable and c.attribute != chosen.attribute
                ),
                key=lambda c: c.cost_all,
            )
            runner_up = viable[0] if viable else None
        levels.append(
            {
                "level": level.level,
                "oversized_nodes": level.oversized_nodes,
                "candidates": len(level.candidates),
                "chosen": level.chosen,
                "cost_all": chosen.cost_all if chosen else None,
                "cost_one": chosen.cost_one if chosen else None,
                "runner_up": runner_up.attribute if runner_up else None,
                "delta_cost_all": (
                    round(runner_up.cost_all - chosen.cost_all, 6)
                    if chosen and runner_up
                    else None
                ),
                "delta_cost_one": (
                    round(runner_up.cost_one - chosen.cost_one, 6)
                    if chosen and runner_up
                    else None
                ),
            }
        )
    return {
        "technique": trace.technique,
        "elimination_threshold": trace.elimination_threshold,
        "served_rung": trace.served_rung,
        "eliminated": [
            {"attribute": e.attribute, "usage_fraction": e.usage_fraction}
            for e in trace.eliminated
        ],
        "levels": levels,
    }
