"""Request-scoped telemetry: durable trace/decision events + offline audit.

The serving stack's counters (:mod:`repro.perf`) say *how much*; this
package records *which request got which tree, and why* — the ROADMAP's
observability gap.  A sampled request leaves a correlated JSONL record
across every layer it touched:

* the front end's admission story and latency waterfall (``frontend``),
* the service's cache/epoch/rung outcome (``service``),
* the engine's decision trace digest (``decision``),
* the sharded backend's per-shard kernel timings (``shards``),

all joined by the existing per-request trace id, shipped through a
bounded non-blocking writer (:class:`TelemetryPipeline`) to a rotating
sink (:class:`RotatingJsonlSink`), and analyzed offline by ``repro
audit`` (:mod:`repro.telemetry.audit`).

Enable on a server with ``repro serve --telemetry-sink events.jsonl
[--telemetry-sample 0.1]``; in code::

    from repro import telemetry
    pipeline = telemetry.TelemetryPipeline(
        telemetry.RotatingJsonlSink("events.jsonl"), sample_rate=0.1)
    telemetry.install(pipeline)
    ...
    telemetry.uninstall()
    pipeline.close()

With nothing installed every hook is one global load and a ``None``
check — the hot path stays within the <2% overhead budget (see
docs/observability.md for measured numbers).
"""

from repro.telemetry.events import (
    DECISION,
    FRONTEND,
    META,
    SERVICE,
    SHARDS,
    decision_digest,
)
from repro.telemetry.pipeline import (
    FSYNC_POLICIES,
    SCHEMA,
    RotatingJsonlSink,
    TelemetryPipeline,
    active,
    emit,
    install,
    installed,
    scope,
    scoped_trace_id,
    trace_root,
    uninstall,
)

__all__ = [
    "DECISION",
    "FRONTEND",
    "FSYNC_POLICIES",
    "META",
    "RotatingJsonlSink",
    "SCHEMA",
    "SERVICE",
    "SHARDS",
    "TelemetryPipeline",
    "active",
    "decision_digest",
    "emit",
    "install",
    "installed",
    "scope",
    "scoped_trace_id",
    "trace_root",
    "uninstall",
]
