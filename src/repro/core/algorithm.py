"""The categorization algorithm (Section 5, Figure 6).

``CategorizeResults`` builds the tree level by level: at each level it
collects the categories with more than ``M`` tuples, evaluates every
remaining candidate attribute by partitioning each such category and
scoring ``COST_A = Σ_{C∈S} P(C) · CostAll(Tree(C, A))``, attaches the
partitions of the argmin attribute, and recurses — one attribute per
level, never repeating an attribute (Section 3.1's validity constraints).

The module provides the shared level-by-level engine
(:class:`LevelByLevelCategorizer`) parameterized over two policies —
*how to partition* on an attribute and *how to choose* the level's
attribute — and the paper's full cost-based instantiation
(:class:`CostBasedCategorizer`).  The No-Cost / Attr-Cost baselines of
Section 6.1 instantiate the same engine with degraded policies (see
:mod:`repro.core.baselines`), exactly as the paper describes ("the 'No
cost' technique uses the same level-by-level categorization algorithm").
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Protocol, Sequence

from repro import perf
from repro.core.config import CategorizerConfig, PAPER_CONFIG
from repro.core.cost import CostModel
from repro.core.labels import CategoryLabel
from repro.core.partition.categorical import CategoricalPartitioner
from repro.core.partition.numeric import NumericPartitioner
from repro.core.probability import ProbabilityEstimator
from repro.core.trace import (
    MAX_CHILD_PROBABILITIES,
    MAX_NODE_DETAILS,
    CandidateDecision,
    DecisionTrace,
    EliminatedAttribute,
    LevelTrace,
    NodeEvaluation,
)
from repro.core.tree import CategoryNode, CategoryTree
from repro.relational.query import SelectQuery
from repro.relational.table import RowSet
from repro.workload.preprocess import WorkloadStatistics

Partitioning = list[tuple[CategoryLabel, RowSet]]


class Partitioner(Protocol):
    """A per-(level, attribute) partitioning policy."""

    def partition(self, rows: RowSet) -> Partitioning: ...


class LevelPartitionings(Mapping[str, list[Partitioning]]):
    """Per-attribute candidate partitionings for one level, computed lazily.

    ``partitionings[attribute]`` builds the attribute's partitioner and
    partitions every oversized node on first access, then serves the cached
    result.  Choose-policies that inspect every candidate (the cost-based
    argmin) pay exactly what they paid before; policies that stop early —
    No-Cost takes the first attribute that refines any node, a fixed order
    only ever looks at its head — no longer pay for partitionings they
    never look at.
    """

    def __init__(
        self,
        categorizer: "LevelByLevelCategorizer",
        available: Sequence[str],
        oversized: list[CategoryNode],
        query: SelectQuery | None,
        root_rows: RowSet,
    ) -> None:
        self._categorizer = categorizer
        self._available = tuple(available)
        self._available_set = frozenset(available)
        self._oversized = oversized
        self._query = query
        self._root_rows = root_rows
        self._computed: dict[str, list[Partitioning]] = {}

    def __getitem__(self, attribute: str) -> list[Partitioning]:
        if attribute not in self._available_set:
            raise KeyError(attribute)
        cached = self._computed.get(attribute)
        if cached is None:
            perf.count("categorize.partitionings_computed")
            partitioner = self._categorizer._make_partitioner(
                attribute, self._query, self._root_rows
            )
            cached = self._computed[attribute] = [
                partitioner.partition(node.rows) for node in self._oversized
            ]
        return cached

    def __iter__(self):
        return iter(self._available)

    def __len__(self) -> int:
        return len(self._available)

    @property
    def computed_attributes(self) -> frozenset[str]:
        """The attributes whose partitionings were actually materialized."""
        return frozenset(self._computed)


class LevelByLevelCategorizer:
    """The Figure 6 engine, shared by the cost-based algorithm and baselines.

    Subclasses override :meth:`_candidate_attributes`,
    :meth:`_make_partitioner` and :meth:`_choose_attribute`.
    """

    name = "abstract"

    def __init__(
        self,
        statistics: WorkloadStatistics,
        config: CategorizerConfig = PAPER_CONFIG,
        estimator: ProbabilityEstimator | None = None,
    ) -> None:
        """Args:
            statistics: preprocessed workload count tables.
            config: algorithm tunables (M, K, x, m, ...).
            estimator: probability estimator; defaults to the paper's
                independence-assuming :class:`ProbabilityEstimator`.  Pass
                a :class:`~repro.core.correlation.CorrelationAwareEstimator`
                to enable the Section 5.2 conditional estimation.
        """
        self.statistics = statistics
        self.config = config
        self.estimator = estimator or ProbabilityEstimator(statistics)
        self.cost_model = CostModel(self.estimator, config)

    # -- public API -------------------------------------------------------------

    def categorize(
        self,
        rows: RowSet,
        query: SelectQuery | None = None,
        *,
        collect_trace: bool = False,
        checkpoint: Callable[[], bool] | None = None,
    ) -> CategoryTree:
        """Build a category tree over the result set ``rows`` of ``query``.

        Terminates when every category holds at most ``M`` tuples, when the
        candidate attributes are exhausted, or when no remaining attribute
        can refine any oversized category.

        With ``collect_trace=True`` the returned tree additionally carries
        a :class:`~repro.core.trace.DecisionTrace` on
        ``tree.decision_trace``: per level, every candidate attribute with
        its estimated CostAll/CostOne, the Pw/P probabilities behind them,
        the threshold-``x`` eliminated set, and the chosen attribute.
        Tracing scores every candidate under both cost scenarios, so it
        forfeits the lazy partitioning skip — keep it off on hot paths.

        ``checkpoint``, when given, is consulted before each level is
        built; returning False stops the tree from growing further and the
        levels already attached are returned with ``tree.truncated`` set.
        This is the deadline hook the serving layer's degradation ladder
        uses (:mod:`repro.serving.degrade`): a budget that runs out
        mid-build keeps the work already done instead of discarding it.
        """
        perf.count("categorize.calls")
        with perf.span("categorize"):
            root = CategoryNode(rows)
            tree = CategoryTree(root, query=query, technique=self.name)
            available = list(self._candidate_attributes(rows, query))
            trace: DecisionTrace | None = None
            if collect_trace:
                trace = DecisionTrace(
                    technique=self.name,
                    elimination_threshold=self.config.elimination_threshold,
                    eliminated=self._eliminated_attributes(rows, query),
                )
                tree.decision_trace = trace
            frontier: list[CategoryNode] = [root]
            threshold = self.config.max_tuples_per_category

            for _level in range(1, self.config.max_levels + 1):
                oversized = [
                    node for node in frontier if node.tuple_count > threshold
                ]
                if not oversized or not available:
                    break
                if checkpoint is not None and not checkpoint():
                    tree.truncated = True
                    perf.count("categorize.checkpoint_stops")
                    break
                with perf.span("categorize.level"):
                    # Candidate partitionings are materialized on demand:
                    # the choose-policy decides which attributes ever get
                    # partitioned (see LevelPartitionings).
                    partitionings = LevelPartitionings(
                        self, available, oversized, query, rows
                    )
                    chosen = self._choose_attribute(
                        oversized, available, partitionings
                    )
                    if trace is not None:
                        trace.levels.append(
                            self._trace_level(
                                len(trace.levels) + 1,
                                oversized,
                                available,
                                partitionings,
                                chosen,
                            )
                        )
                    if chosen is None:
                        break
                    frontier = self._attach_level(
                        oversized, chosen, partitionings[chosen]
                    )
                    perf.count("categorize.levels")
                    perf.count(
                        "categorize.partitionings_avoided",
                        len(available) - len(partitionings.computed_attributes),
                    )
                available.remove(chosen)
                if not frontier:
                    break
            return tree

    # -- level mechanics ------------------------------------------------------------

    @staticmethod
    def _attach_level(
        oversized: list[CategoryNode],
        attribute: str,
        partitionings: list[Partitioning],
    ) -> list[CategoryNode]:
        """Attach the chosen attribute's partitions; return the new frontier.

        A node whose partitioning has fewer than two categories is left a
        leaf: a single pass-through category would add a label with no
        discriminating power.
        """
        new_frontier: list[CategoryNode] = []
        for node, partitioning in zip(oversized, partitionings):
            if len(partitioning) < 2:
                continue
            new_frontier.extend(node.add_children(attribute, partitioning))
        return new_frontier

    def _level_cost(
        self,
        oversized: list[CategoryNode],
        attribute: str,
        partitionings: list[Partitioning],
    ) -> float:
        """``COST_A = Σ_{C∈S} P(C) · CostAll(Tree(C, A))`` (Figure 6).

        Children are scored as leaves (their own subdivision is decided at
        later levels).  An attribute that refines no node scores infinity.
        """
        if not any(len(partitioning) >= 2 for partitioning in partitionings):
            return math.inf
        total = 0.0
        for node, partitioning in zip(oversized, partitionings):
            p_node = self.estimator.exploration_probability(node)
            if len(partitioning) < 2:
                # The node stays a leaf under this attribute.
                total += p_node * node.tuple_count
                continue
            children = [
                (
                    self.estimator.exploration_probability_of_label(
                        label, context=node
                    ),
                    len(child_rows),
                )
                for label, child_rows in partitioning
            ]
            total += p_node * self.cost_model.one_level_cost_all(
                node.tuple_count, attribute, children, context=node
            )
        return total

    # -- decision tracing -----------------------------------------------------------

    def _trace_level(
        self,
        level: int,
        oversized: list[CategoryNode],
        available: list[str],
        partitionings: Mapping[str, list[Partitioning]],
        chosen: str | None,
    ) -> LevelTrace:
        """Score every candidate under both scenarios for the decision trace.

        Recomputed independently of the choose-policy, so the trace shows
        what the paper's cost model says about each candidate even when a
        degraded baseline policy (No-Cost, Attr-Cost) ignored it.  The
        ALL-scenario aggregation below is exactly :meth:`_level_cost`.
        """
        with perf.span("categorize.trace"):
            candidates = tuple(
                self._trace_candidate(attribute, oversized, partitionings[attribute])
                for attribute in available
            )
            return LevelTrace(
                level=level,
                oversized_nodes=len(oversized),
                oversized_tuples=sum(node.tuple_count for node in oversized),
                candidates=candidates,
                chosen=chosen,
            )

    def _trace_candidate(
        self,
        attribute: str,
        oversized: list[CategoryNode],
        partitionings: list[Partitioning],
    ) -> CandidateDecision:
        """One candidate's CostAll/CostOne aggregation with its Pw/P inputs."""
        refines = any(len(partitioning) >= 2 for partitioning in partitionings)
        evaluations: list[NodeEvaluation] = []
        total_all = 0.0
        total_one = 0.0
        frac = self.config.frac
        for node, partitioning in zip(oversized, partitionings):
            p_node = self.estimator.exploration_probability(node)
            if len(partitioning) < 2:
                # The node stays a leaf under this attribute (cf. _level_cost).
                pw = 1.0
                node_all = float(node.tuple_count)
                node_one = frac * node.tuple_count
                children: list[float] = []
            else:
                pw = self.estimator.showtuples_probability_for(
                    attribute, context=node
                )
                children = [
                    self.estimator.exploration_probability_of_label(
                        label, context=node
                    )
                    for label, _ in partitioning
                ]
                labels_and_sizes = [
                    (p, len(child_rows))
                    for p, (_, child_rows) in zip(children, partitioning)
                ]
                node_all = self.cost_model.one_level_cost_all(
                    node.tuple_count, attribute, labels_and_sizes, context=node
                )
                node_one = self.cost_model.one_level_cost_one(
                    node.tuple_count, attribute, labels_and_sizes, context=node
                )
            total_all += p_node * node_all
            total_one += p_node * node_one
            if len(evaluations) < MAX_NODE_DETAILS:
                evaluations.append(
                    NodeEvaluation(
                        node=node.display(),
                        tuples=node.tuple_count,
                        p_node=p_node,
                        pw=pw,
                        categories=len(partitioning),
                        child_probabilities=tuple(
                            children[:MAX_CHILD_PROBABILITIES]
                        ),
                        children_truncated=len(children) > MAX_CHILD_PROBABILITIES,
                        cost_all=node_all,
                        cost_one=node_one,
                    )
                )
        return CandidateDecision(
            attribute=attribute,
            cost_all=total_all if refines else math.inf,
            cost_one=total_one if refines else math.inf,
            usage_fraction=self.statistics.usage_fraction(attribute),
            category_count=sum(len(p) for p in partitionings),
            refined_nodes=sum(1 for p in partitionings if len(p) >= 2),
            nodes=tuple(evaluations),
            nodes_truncated=len(oversized) > MAX_NODE_DETAILS,
        )

    def _eliminated_attributes(
        self, rows: RowSet, query: SelectQuery | None
    ) -> tuple[EliminatedAttribute, ...]:
        """Attributes the candidate policy refused, for the decision trace.

        The base engine has no elimination; the cost-based subclass
        reports the Section 5.1.1 threshold-``x`` rejects.
        """
        return ()

    # -- policy hooks --------------------------------------------------------------

    def _candidate_attributes(
        self, rows: RowSet, query: SelectQuery | None
    ) -> Sequence[str]:
        raise NotImplementedError

    def _make_partitioner(
        self, attribute: str, query: SelectQuery | None, root_rows: RowSet
    ) -> Partitioner:
        raise NotImplementedError

    def _choose_attribute(
        self,
        oversized: list[CategoryNode],
        available: list[str],
        partitionings: Mapping[str, list[Partitioning]],
    ) -> str | None:
        """Pick the level's attribute; ``partitionings`` is lazy — only the
        entries actually subscripted are ever computed."""
        raise NotImplementedError


class CostBasedCategorizer(LevelByLevelCategorizer):
    """The paper's algorithm: cost-based attribute choice AND partitioning.

    * Candidate attributes survive the Section 5.1.1 elimination:
      ``NAttr(A)/N >= x``.
    * Categorical attributes get single-value categories ordered by
      decreasing occ(v) (Section 5.1.2).
    * Numeric attributes get buckets at the top necessary workload
      splitpoints, ascending (Section 5.1.3).
    * Each level's attribute minimizes ``COST_A`` (Figure 6).
    """

    name = "cost-based"

    def _candidate_attributes(
        self, rows: RowSet, query: SelectQuery | None
    ) -> Sequence[str]:
        schema = rows.table.schema
        threshold = self.config.elimination_threshold
        retained = [
            attribute.name
            for attribute in schema
            if self.statistics.usage_fraction(attribute.name) >= threshold
        ]
        # Most-used first, so ties in COST_A resolve toward attributes with
        # more workload evidence.
        retained.sort(
            key=lambda name: (-self.statistics.usage_fraction(name), name)
        )
        return retained

    def _eliminated_attributes(
        self, rows: RowSet, query: SelectQuery | None
    ) -> tuple[EliminatedAttribute, ...]:
        threshold = self.config.elimination_threshold
        return tuple(
            EliminatedAttribute(
                attribute=attribute.name,
                usage_fraction=self.statistics.usage_fraction(attribute.name),
            )
            for attribute in rows.table.schema
            if self.statistics.usage_fraction(attribute.name) < threshold
        )

    def _make_partitioner(
        self, attribute: str, query: SelectQuery | None, root_rows: RowSet
    ) -> Partitioner:
        schema_attribute = root_rows.table.schema.attribute(attribute)
        if schema_attribute.is_categorical:
            return CategoricalPartitioner(
                attribute,
                self.statistics,
                query=query,
                include_missing=self.config.include_missing_category,
                use_index=self.config.enable_caches,
            )
        return NumericPartitioner(
            attribute,
            self.statistics,
            self.config,
            query=query,
            root_rows=root_rows,
            use_cache=self.config.enable_caches,
        )

    def _choose_attribute(
        self,
        oversized: list[CategoryNode],
        available: list[str],
        partitionings: Mapping[str, list[Partitioning]],
    ) -> str | None:
        best_attribute: str | None = None
        best_cost = math.inf
        for attribute in available:
            cost = self._level_cost(oversized, attribute, partitionings[attribute])
            if cost < best_cost:
                best_attribute, best_cost = attribute, cost
        return best_attribute
