"""Exhaustive search over categorizations (the Section 5 gold standard).

"We can enumerate all the permissible category trees on R, compute their
costs and pick the tree Topt with the minimum cost.  This enumerative
algorithm will produce the cost-optimal tree but could be prohibitively
expensive" — which is why the paper develops the greedy Figure 6
algorithm.  This module implements the enumeration over the part of the
space the greedy algorithm actually approximates: the assignment of
categorizing attributes to levels.  For every permutation of every subset
of the candidate attributes, a tree is built with that fixed level order
(using the paper's own per-level partitioners) and costed; the minimum is
the reference optimum.

Intended for small attribute sets (k attributes cost Σᵢ P(k, i) orders —
1,956 trees at k = 6); it exists so tests and benches can measure how far
the greedy algorithm lands from optimal.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.algorithm import CostBasedCategorizer, Partitioning
from repro.core.config import CategorizerConfig, PAPER_CONFIG
from repro.core.cost import CostModel
from repro.core.probability import ProbabilityEstimator
from repro.core.tree import CategoryNode, CategoryTree
from repro.relational.query import SelectQuery
from repro.relational.table import RowSet
from repro.workload.preprocess import WorkloadStatistics


class FixedOrderCategorizer(CostBasedCategorizer):
    """Builds a tree using a prescribed attribute-per-level order.

    Partitionings are the cost-based ones (Sections 5.1.2 / 5.1.3); only
    the attribute *choice* is overridden.  Used by the enumerator and
    handy on its own when a designer wants to pin the hierarchy.
    """

    name = "fixed-order"

    def __init__(
        self,
        statistics: WorkloadStatistics,
        order: Sequence[str],
        config: CategorizerConfig = PAPER_CONFIG,
    ) -> None:
        super().__init__(statistics, config)
        self.order = tuple(order)

    def _candidate_attributes(
        self, rows: RowSet, query: SelectQuery | None
    ) -> Sequence[str]:
        return list(self.order)

    def _choose_attribute(
        self,
        oversized: list[CategoryNode],
        available: list[str],
        partitionings: Mapping[str, list[Partitioning]],
    ) -> str | None:
        # ``available`` preserves the prescribed order; take its head if it
        # can refine anything, else stop (a fixed order has no fallback).
        if not available:
            return None
        head = available[0]
        if any(len(p) >= 2 for p in partitionings[head]):
            return head
        return None


@dataclass(frozen=True)
class EnumerationResult:
    """Outcome of an exhaustive attribute-order search."""

    best_tree: CategoryTree
    best_order: tuple[str, ...]
    best_cost: float
    trees_evaluated: int
    costs_by_order: dict[tuple[str, ...], float]


def enumerate_optimal_tree(
    rows: RowSet,
    query: SelectQuery | None,
    statistics: WorkloadStatistics,
    config: CategorizerConfig = PAPER_CONFIG,
    max_orders: int = 10_000,
) -> EnumerationResult:
    """Find the min-CostAll tree over all attribute-to-level assignments.

    Candidate attributes are the Section 5.1.1 survivors (same as the
    greedy algorithm sees).  Every permutation of every non-empty subset
    is tried; orders that are a prefix of an already-built deeper order
    still get evaluated independently because partitioning stops early
    when all nodes fit in M — identical trees simply cost the same.

    Args:
        max_orders: guardrail; exceeding it raises rather than silently
            truncating the search (a partial enumeration is not an
            optimum).

    Raises:
        ValueError: when the candidate set would require more than
            ``max_orders`` orders.
    """
    probe = CostBasedCategorizer(statistics, config)
    candidates = list(probe._candidate_attributes(rows, query))
    total_orders = _count_orders(len(candidates))
    if total_orders > max_orders:
        raise ValueError(
            f"{len(candidates)} candidate attributes require {total_orders} "
            f"orders > max_orders={max_orders}; restrict the schema or raise "
            "the limit"
        )

    cost_model = CostModel(ProbabilityEstimator(statistics), config)
    best_tree: CategoryTree | None = None
    best_order: tuple[str, ...] = ()
    best_cost = math.inf
    costs: dict[tuple[str, ...], float] = {}
    evaluated = 0

    for length in range(1, len(candidates) + 1):
        for order in itertools.permutations(candidates, length):
            tree = FixedOrderCategorizer(statistics, order, config).categorize(
                rows, query
            )
            cost = cost_model.tree_cost_all(tree)
            costs[order] = cost
            evaluated += 1
            if cost < best_cost:
                best_tree, best_order, best_cost = tree, order, cost

    if best_tree is None:  # no candidates at all: the bare-root tree
        best_tree = CategoryTree(CategoryNode(rows), query=query, technique="optimal")
        best_cost = cost_model.tree_cost_all(best_tree)
    return EnumerationResult(
        best_tree=best_tree,
        best_order=best_order,
        best_cost=best_cost,
        trees_evaluated=evaluated,
        costs_by_order=costs,
    )


def _count_orders(attribute_count: int) -> int:
    """Σ over non-empty subset sizes of P(n, k)."""
    return sum(
        math.perm(attribute_count, k) for k in range(1, attribute_count + 1)
    )
