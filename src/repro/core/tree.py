"""The category tree: nodes, structure invariants, traversal (Section 3.1).

A :class:`CategoryTree` is the paper's "valid hierarchical categorization
T" — a recursive partitioning of the result set R where each level uses one
categorizing attribute, each node carries a label and a tuple-set, and
sibling order is semantically meaningful (the user reads labels top-down).

Nodes reference their tuples as :class:`~repro.relational.table.RowSet`
views over the shared result table, so the whole tree costs O(|R| · depth)
integers, never copies of tuple data.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.core.labels import CategoryLabel
from repro.relational.query import SelectQuery
from repro.relational.table import RowSet


class CategoryNode:
    """One category C: a label, a tuple-set, and an ordered child list.

    The root has ``label is None`` (the implicit "ALL" node of Figure 1).
    ``child_attribute`` is the paper's *subcategorizing attribute* SA(C):
    the attribute whose values partition this node's children.  It is None
    exactly when the node is a leaf.
    """

    __slots__ = ("label", "rows", "parent", "children", "child_attribute")

    def __init__(
        self,
        rows: RowSet,
        label: CategoryLabel | None = None,
        parent: "CategoryNode | None" = None,
    ) -> None:
        self.label = label
        self.rows = rows
        self.parent = parent
        self.children: list[CategoryNode] = []
        self.child_attribute: str | None = None

    # -- structure -----------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        """True if this node has no subcategories (SHOWTUPLES is forced)."""
        return not self.children

    @property
    def is_root(self) -> bool:
        """True for the ALL node."""
        return self.parent is None

    @property
    def tuple_count(self) -> int:
        """``|tset(C)|``."""
        return len(self.rows)

    @property
    def level(self) -> int:
        """Depth of this node; the root is level 0."""
        depth = 0
        node = self
        while node.parent is not None:
            depth += 1
            node = node.parent
        return depth

    @property
    def categorizing_attribute(self) -> str | None:
        """CA(C): the attribute this node's own label constrains."""
        return self.label.attribute if self.label is not None else None

    def add_children(
        self, attribute: str, partitions: Sequence[tuple[CategoryLabel, RowSet]]
    ) -> list["CategoryNode"]:
        """Attach ordered subcategories partitioned on ``attribute``.

        The order of ``partitions`` is preserved — it is the presentation
        order the cost model and the exploration models read.

        Raises:
            ValueError: if the node already has children, a label is on the
                wrong attribute, or a partition is empty (the algorithms
                remove empty categories before attaching).
        """
        if self.children:
            raise ValueError("node already has children")
        for label, rows in partitions:
            if label.attribute != attribute:
                raise ValueError(
                    f"label {label.display()!r} is on {label.attribute!r}, "
                    f"expected {attribute!r}"
                )
            if not rows:
                raise ValueError(f"empty category {label.display()!r}")
        self.child_attribute = attribute
        for label, rows in partitions:
            self.children.append(CategoryNode(rows=rows, label=label, parent=self))
        return self.children

    # -- paths and traversal ---------------------------------------------------

    def path_labels(self) -> list[CategoryLabel]:
        """Labels on the path root → this node (the full path predicate)."""
        labels: list[CategoryLabel] = []
        node = self
        while node is not None and node.label is not None:
            labels.append(node.label)
            node = node.parent  # type: ignore[assignment]
        labels.reverse()
        return labels

    def walk(self) -> Iterator["CategoryNode"]:
        """Yield this node and all descendants, pre-order, siblings in order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def display(self) -> str:
        """The node's label text ('ALL' for the root)."""
        return self.label.display() if self.label is not None else "ALL"

    def __repr__(self) -> str:
        return (
            f"CategoryNode({self.display()!r}, tuples={self.tuple_count}, "
            f"children={len(self.children)})"
        )


class CategoryTree:
    """A complete categorization of one query's result set."""

    def __init__(
        self,
        root: CategoryNode,
        query: SelectQuery | None = None,
        technique: str = "unspecified",
    ) -> None:
        if not root.is_root:
            raise ValueError("tree root must have no parent")
        self.root = root
        self.query = query
        self.technique = technique
        #: Set by ``categorize(collect_trace=True)`` — the per-level
        #: decision record (see :mod:`repro.core.trace`); None otherwise.
        self.decision_trace = None
        #: True when a ``categorize(checkpoint=...)`` budget stopped the
        #: build early: the tree holds the levels attached so far.
        self.truncated = False

    # -- global views -----------------------------------------------------------

    def nodes(self) -> Iterator[CategoryNode]:
        """All nodes, pre-order."""
        return self.root.walk()

    def categories(self) -> Iterator[CategoryNode]:
        """All non-root nodes (the actual categories)."""
        for node in self.nodes():
            if not node.is_root:
                yield node

    def leaves(self) -> Iterator[CategoryNode]:
        """All leaf nodes."""
        return (node for node in self.nodes() if node.is_leaf)

    @property
    def result_size(self) -> int:
        """``|R|``: the size of the categorized result set."""
        return self.root.tuple_count

    def node_count(self) -> int:
        """Total number of nodes, including the root."""
        return sum(1 for _ in self.nodes())

    def category_count(self) -> int:
        """Total number of categories (labels a user could examine)."""
        return self.node_count() - 1

    def depth(self) -> int:
        """Number of levels below the root."""
        return max((node.level for node in self.nodes()), default=0)

    def level_attributes(self) -> list[str]:
        """The categorizing attribute of each level, root-down.

        Valid categorizations use one attribute per level (Section 3.1);
        :meth:`validate` enforces this, and this accessor reports it.
        """
        attributes: list[str] = []
        frontier = [self.root]
        while frontier:
            used = {n.child_attribute for n in frontier if n.child_attribute}
            if not used:
                break
            if len(used) > 1:
                raise ValueError(
                    f"level uses multiple categorizing attributes: {sorted(used)}"
                )
            attributes.append(next(iter(used)))
            frontier = [c for n in frontier for c in n.children]
        return attributes

    # -- invariants ---------------------------------------------------------------

    def validate(self) -> None:
        """Check every structural invariant of Section 3.1.

        * children partition a subset of the parent's tuples disjointly;
        * every tuple under a child satisfies the child's label;
        * all nodes at one level share a categorizing attribute;
        * no attribute repeats across levels.

        Raises:
            ValueError: describing the first violated invariant.  Intended
            for tests and for validating externally constructed trees; the
            built-in algorithms construct valid trees by construction.
        """
        self.level_attributes()  # raises on mixed-attribute levels
        attributes = self.level_attributes()
        if len(set(attributes)) != len(attributes):
            raise ValueError(f"categorizing attribute repeats: {attributes}")
        for node in self.nodes():
            self._validate_children(node)

    @staticmethod
    def _validate_children(node: CategoryNode) -> None:
        if not node.children:
            return
        seen: set[int] = set()
        parent_indices = set(node.rows.indices)
        for child in node.children:
            child_indices = set(child.rows.indices)
            if not child_indices <= parent_indices:
                raise ValueError(
                    f"child {child.display()!r} contains tuples outside its parent"
                )
            if child_indices & seen:
                raise ValueError(
                    f"child {child.display()!r} overlaps a sibling"
                )
            seen |= child_indices
            for row in child.rows:
                if not child.label.matches(row):
                    raise ValueError(
                        f"tuple {row.as_dict()} violates label "
                        f"{child.label.display()!r}"
                    )

    # -- queries over the structure ---------------------------------------------

    def find(self, predicate: Callable[[CategoryNode], bool]) -> CategoryNode | None:
        """Return the first node (pre-order) satisfying ``predicate``."""
        for node in self.nodes():
            if predicate(node):
                return node
        return None

    def max_leaf_size(self) -> int:
        """Largest leaf tuple-set — ≤ M when enough attributes existed."""
        return max((leaf.tuple_count for leaf in self.leaves()), default=0)

    def __repr__(self) -> str:
        return (
            f"CategoryTree(technique={self.technique!r}, "
            f"categories={self.category_count()}, depth={self.depth()}, "
            f"result_size={self.result_size})"
        )
