"""Configuration for the categorizer.

Collects every tunable the paper names, with the paper's values as
defaults:

* ``M`` — maximum tuples per un-partitioned category; "We choose M=20 in
  our user study" (Section 5.2).
* ``x`` — attribute-elimination threshold; "if we use x=0.4, only 6
  attributes ... are retained" (Section 5.1.1).
* ``K`` — cost of examining a category label relative to a data tuple
  (Equation 1).  The paper keeps it symbolic; default 1.0.
* ``m`` — bucket count for numeric partitioning, "specified by the system
  designer" (Section 5.1.3); default 5, or automatic when
  ``auto_bucket_count`` is set ("the goodness metric may be used as a
  basis for automatically determining m").
* ``frac`` — expected fraction of a tuple set scanned before the first
  relevant tuple (Equation 2); the paper keeps it symbolic; default 0.5
  (uniformly-placed single relevant tuple).
* separation intervals — the splitpoint grid spacing per numeric
  attribute; "5000, 100 and 5" for price, square footage and year built
  (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping


#: The paper's separation intervals for the ListProperty numeric attributes,
#: extended with natural grids for the two attributes it does not list.
LIST_PROPERTY_SEPARATION_INTERVALS: Mapping[str, float] = {
    "price": 5_000.0,
    "squarefootage": 100.0,
    "yearbuilt": 5.0,
    "bedroomcount": 1.0,
    "bathcount": 0.5,
}

#: The six attributes x = 0.4 retains on the paper's workload
#: (Section 5.1.1) — also the No-Cost baseline's predefined attribute set.
PAPER_RETAINED_ATTRIBUTES: tuple[str, ...] = (
    "neighborhood",
    "propertytype",
    "bedroomcount",
    "price",
    "yearbuilt",
    "squarefootage",
)


@dataclass(frozen=True)
class CategorizerConfig:
    """All categorizer tunables, immutable, with paper defaults.

    Attributes:
        max_tuples_per_category: ``M`` — a node is partitioned iff it holds
            more than this many tuples.
        label_cost: ``K`` — relative cost of examining one category label.
        elimination_threshold: ``x`` — attributes with NAttr(A)/N below this
            are never considered as categorizing attributes.
        bucket_count: ``m`` — number of numeric buckets per partitioning.
        auto_bucket_count: when True, ``m`` is chosen per partitioning from
            the goodness distribution instead of taken from ``bucket_count``.
        max_auto_buckets: upper bound on automatically chosen ``m``.
        frac: expected fraction of a tuple set scanned before the first
            relevant tuple, for Equation (2).
        min_bucket_tuples: a splitpoint is "unnecessary" (Section 5.1.3 /
            5.2) if a bucket it creates would hold fewer than this many of
            the node's tuples.
        include_missing_category: when True, partitioners append an
            "attribute: unknown" category holding the NULL-valued tuples
            (which the paper's label grammar cannot place) so they stay
            reachable by drill-down.
        separation_intervals: per-attribute splitpoint grid spacing.
        max_levels: safety bound on tree depth (the attribute no-repeat rule
            already bounds it; this guards degenerate schemas).
        enable_caches: allow the hot-path caches (the table groupby-index
            partitioning fast path; see docs/performance.md).  On by
            default — disable only to measure the uncached baseline; trees
            are identical either way.
    """

    max_tuples_per_category: int = 20
    label_cost: float = 1.0
    elimination_threshold: float = 0.4
    bucket_count: int = 5
    auto_bucket_count: bool = False
    max_auto_buckets: int = 12
    frac: float = 0.5
    min_bucket_tuples: int = 1
    include_missing_category: bool = False
    separation_intervals: Mapping[str, float] = field(
        default_factory=lambda: dict(LIST_PROPERTY_SEPARATION_INTERVALS)
    )
    max_levels: int = 16
    enable_caches: bool = True

    def __post_init__(self) -> None:
        if self.max_tuples_per_category < 1:
            raise ValueError(f"M must be >= 1, got {self.max_tuples_per_category}")
        if self.label_cost <= 0:
            raise ValueError(f"K must be positive, got {self.label_cost}")
        if not 0.0 <= self.elimination_threshold <= 1.0:
            raise ValueError(
                f"x must be in [0, 1], got {self.elimination_threshold}"
            )
        if self.bucket_count < 2:
            raise ValueError(f"m must be >= 2, got {self.bucket_count}")
        if not 0.0 <= self.frac <= 1.0:
            raise ValueError(f"frac must be in [0, 1], got {self.frac}")
        if self.min_bucket_tuples < 1:
            raise ValueError(
                f"min_bucket_tuples must be >= 1, got {self.min_bucket_tuples}"
            )
        if self.max_levels < 1:
            raise ValueError(f"max_levels must be >= 1, got {self.max_levels}")

    def separation_interval(self, attribute: str) -> float:
        """Grid spacing for ``attribute`` (1.0 when unconfigured)."""
        return float(self.separation_intervals.get(attribute, 1.0))

    def with_overrides(self, **changes) -> "CategorizerConfig":
        """Return a copy with the given fields replaced (ablation helper)."""
        return replace(self, **changes)


#: The configuration used throughout the paper's experiments.
PAPER_CONFIG = CategorizerConfig()
