"""Category ordering (Section 5.1.2 and Appendix A).

The paper proves (Appendix A) that among all orderings of a node's
subcategories, ``CostOne`` is minimized by presenting them in increasing
``1/P(Ci) + CostOne(Ci)``.  Because computing CostOne(Ci) is expensive for
multilevel trees, the paper adopts the heuristic of ordering by decreasing
``P(Ci)`` — "tantamount to assuming equality of CostOne(Ci)'s".

Both orderings are implemented so the heuristic's optimality gap can be
measured (the ordering ablation bench).  Numeric buckets are exempt: the
paper always presents them in ascending value order.
"""

from __future__ import annotations

import math
from typing import Sequence, TypeVar

T = TypeVar("T")


def order_by_probability(
    items: Sequence[T], probabilities: Sequence[float]
) -> list[T]:
    """The paper's heuristic: decreasing P(Ci), stable for ties.

    Args:
        items: the categories (any payload).
        probabilities: P(Ci), aligned with ``items``.
    """
    if len(items) != len(probabilities):
        raise ValueError(
            f"{len(items)} items but {len(probabilities)} probabilities"
        )
    indexed = sorted(
        range(len(items)), key=lambda i: (-probabilities[i], i)
    )
    return [items[i] for i in indexed]


def order_optimal_one(
    items: Sequence[T],
    probabilities: Sequence[float],
    costs_one: Sequence[float],
) -> list[T]:
    """The Appendix A optimal ordering: increasing 1/P(Ci) + CostOne(Ci).

    Categories with P = 0 sort last (1/P = ∞): the user will never drill
    into them, so their position only wastes label examinations.
    """
    if not len(items) == len(probabilities) == len(costs_one):
        raise ValueError("items, probabilities, costs_one must align")
    def key(i: int) -> tuple[float, int]:
        p = probabilities[i]
        score = math.inf if p <= 0 else (1.0 / p) + costs_one[i]
        return (score, i)
    return [items[i] for i in sorted(range(len(items)), key=key)]


def expected_cost_one_of_ordering(
    probabilities: Sequence[float],
    costs_one: Sequence[float],
    label_cost: float = 1.0,
) -> float:
    """The SHOWCAT term of Equation (2) for a given presentation order.

    ``Σᵢ Πⱼ₌₁..ᵢ₋₁ (1 − P(Cⱼ)) · P(Cᵢ) · (K·i + CostOne(Cᵢ))`` — the
    quantity Appendix A's exchange argument minimizes.  Used by tests to
    verify the optimal ordering really is optimal, and by the ordering
    ablation bench.
    """
    total = 0.0
    none_explored = 1.0
    for position, (p, cost) in enumerate(zip(probabilities, costs_one), start=1):
        total += none_explored * p * (label_cost * position + cost)
        none_explored *= 1.0 - p
    return total
