"""Single-value partitioning for categorical attributes (Section 5.1.2).

"We only consider single-value partitionings ... one category Ci
corresponding to each value vi ... the only factor that impacts the cost of
a single-valued partitioning is the order in which the categories are
presented."  The cost-optimal ONE-scenario order is increasing
``1/P(Ci) + CostOne(Ci)`` (Appendix A); the paper adopts the
``P(Ci)``-descending heuristic, which for single-value categories is
occurrence-count-descending: "we simply sort the values in the IN clause in
the decreasing order of occ(vi)".

The value inventory comes from the user query's IN clause when present
(those are the values R can contain), otherwise from the data itself.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.labels import CategoricalLabel, CategoryLabel, MissingLabel
from repro.relational.query import SelectQuery
from repro.relational.table import RowSet
from repro.workload.preprocess import WorkloadStatistics


class CategoricalPartitioner:
    """Partitions nodes on one categorical attribute, occ-ordered.

    Per Figure 6 the ordered single-category list (SCL) is computed once
    per level; each node is then partitioned into the non-empty categories
    in that same order.  Instantiate once per (level, attribute).
    """

    def __init__(
        self,
        attribute: str,
        statistics: WorkloadStatistics,
        query: SelectQuery | None = None,
        universe: Sequence[Any] | None = None,
        include_missing: bool = False,
    ) -> None:
        """Args:
            attribute: the categorizing attribute A.
            statistics: workload count tables (for occ(v)).
            query: the user query; its IN clause on A, if any, fixes the
                value universe.
            universe: explicit value universe overriding both query and
                data (used when the caller has already computed it).
            include_missing: append an "unknown" category for NULL-valued
                tuples (last, after every real value).
        """
        self.attribute = attribute
        self.statistics = statistics
        self.include_missing = include_missing
        self._universe: list[Any] | None = None
        if universe is not None:
            self._universe = list(universe)
        elif query is not None:
            values = query.values_on(attribute)
            if values is not None:
                self._universe = sorted(values, key=repr)

    def ordered_values(self, rows: RowSet) -> list[Any]:
        """The SCL value order: the universe sorted by decreasing occ(v).

        When no universe was fixed by the query, the distinct values of the
        attribute in ``rows`` serve as the universe.
        """
        universe = (
            self._universe
            if self._universe is not None
            else sorted(rows.distinct_values(self.attribute), key=repr)
        )
        occurrence = self.statistics.occurrence_counts(self.attribute)
        return occurrence.order_by_occurrence(universe)

    def partition(self, rows: RowSet) -> list[tuple[CategoricalLabel, RowSet]]:
        """Partition ``rows`` into ordered non-empty single-value categories.

        Tuples whose value is NULL or outside the universe fall under no
        category (they match no label), mirroring Section 3.1's definition
        of tset via label predicates.
        """
        ordered = self.ordered_values(rows)
        allowed = set(ordered)
        missing_key = object()  # sentinel distinct from every real value

        def classify(value):
            if value is None:
                return missing_key if self.include_missing else None
            return value if value in allowed else None

        buckets = rows.partition_by_attribute(self.attribute, classify)
        partitioning: list[tuple[CategoryLabel, object]] = [
            (CategoricalLabel(self.attribute, (value,)), buckets[value])
            for value in ordered
            if value in buckets and len(buckets[value]) > 0
        ]
        if self.include_missing and missing_key in buckets:
            partitioning.append(
                (MissingLabel(self.attribute), buckets[missing_key])
            )
        return partitioning

    def exploration_probability(self, value: Any) -> float:
        """``P(Ci) = occ(vi) / NAttr(A)`` for the single-value category of vi."""
        n_attr = self.statistics.n_attr(self.attribute)
        if n_attr == 0:
            return 0.0
        return self.statistics.occ(self.attribute, value) / n_attr
