"""Single-value partitioning for categorical attributes (Section 5.1.2).

"We only consider single-value partitionings ... one category Ci
corresponding to each value vi ... the only factor that impacts the cost of
a single-valued partitioning is the order in which the categories are
presented."  The cost-optimal ONE-scenario order is increasing
``1/P(Ci) + CostOne(Ci)`` (Appendix A); the paper adopts the
``P(Ci)``-descending heuristic, which for single-value categories is
occurrence-count-descending: "we simply sort the values in the IN clause in
the decreasing order of occ(vi)".

The value inventory comes from the user query's IN clause when present
(those are the values R can contain), otherwise from the data itself.

Two bucketing strategies produce identical partitionings:

* the **scan path** walks the node's column values once (O(|node|) calls
  into a per-row classifier), and
* the **index path** intersects the table's cached value→row-indices
  groupby index (:meth:`repro.relational.table.Table.groupby_index`) with
  the node's index set — C-speed comprehensions instead of per-row Python
  calls.  The index is built once per (table, attribute) and reused across
  levels, nodes and repeated ``categorize`` calls.

The index path wins when the node covers a sizable share of the rows whose
values it partitions on (always true at the root level); for small deep
nodes the posting lists dwarf the node and the scan path is chosen
instead.  :meth:`CategoricalPartitioner.partition` picks per node.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro import perf
from repro.core.labels import CategoricalLabel, CategoryLabel, MissingLabel
from repro.relational.query import SelectQuery
from repro.relational.table import RowSet
from repro.workload.preprocess import WorkloadStatistics

#: The index path iterates candidate posting lists instead of node rows;
#: per element it is several times cheaper than the scan path's classifier
#: call, so it is chosen while posting-list volume <= this factor × |node|.
INDEX_PATH_ADVANTAGE = 4


class CategoricalPartitioner:
    """Partitions nodes on one categorical attribute, occ-ordered.

    Per Figure 6 the ordered single-category list (SCL) is computed once
    per level; each node is then partitioned into the non-empty categories
    in that same order.  Instantiate once per (level, attribute).
    """

    def __init__(
        self,
        attribute: str,
        statistics: WorkloadStatistics,
        query: SelectQuery | None = None,
        universe: Sequence[Any] | None = None,
        include_missing: bool = False,
        use_index: bool = True,
    ) -> None:
        """Args:
            attribute: the categorizing attribute A.
            statistics: workload count tables (for occ(v)).
            query: the user query; its IN clause on A, if any, fixes the
                value universe.
            universe: explicit value universe overriding both query and
                data (used when the caller has already computed it).
            include_missing: append an "unknown" category for NULL-valued
                tuples (last, after every real value).
            use_index: allow the table groupby-index fast path (disable
                only for measurement baselines).
        """
        self.attribute = attribute
        self.statistics = statistics
        self.include_missing = include_missing
        self.use_index = use_index
        self._universe: list[Any] | None = None
        if universe is not None:
            self._universe = list(universe)
        elif query is not None:
            values = query.values_on(attribute)
            if values is not None:
                self._universe = sorted(values, key=repr)

    def ordered_values(self, rows: RowSet) -> list[Any]:
        """The SCL value order: the universe sorted by decreasing occ(v).

        When no universe was fixed by the query, the distinct values of the
        attribute in ``rows`` serve as the universe.
        """
        universe = (
            self._universe
            if self._universe is not None
            else sorted(rows.distinct_values(self.attribute), key=repr)
        )
        occurrence = self.statistics.occurrence_counts(self.attribute)
        return occurrence.order_by_occurrence(universe)

    def partition(self, rows: RowSet) -> list[tuple[CategoricalLabel, RowSet]]:
        """Partition ``rows`` into ordered non-empty single-value categories.

        Tuples whose value is NULL or outside the universe fall under no
        category (they match no label), mirroring Section 3.1's definition
        of tset via label predicates.  Both execution paths (see module
        docstring) return identical partitionings.
        """
        perf.count("partition.categorical.calls")
        with perf.span("partition.categorical"):
            ordered = self.ordered_values(rows)
            if not self.use_index:
                perf.count("partition.categorical.scan_path")
                return self._partition_via_scan(rows, ordered)
            # The partitioning is a pure function of (view, universe order,
            # missing policy); cache it on the view so repeated categorize
            # calls — and repeated cost evaluations — reuse it wholesale.
            key = (
                "partition.categorical",
                self.attribute,
                tuple(ordered),
                self.include_missing,
            )
            return list(
                rows.derive(key, lambda: self._build_partitioning(rows, ordered))
            )

    # -- execution paths ------------------------------------------------------

    def _build_partitioning(
        self, rows: RowSet, ordered: list[Any]
    ) -> list[tuple[CategoryLabel, RowSet]]:
        if self._index_path_profitable(rows, ordered):
            perf.count("partition.categorical.index_path")
            return self._partition_via_index(rows, ordered)
        perf.count("partition.categorical.scan_path")
        return self._partition_via_scan(rows, ordered)

    def _index_path_profitable(self, rows: RowSet, ordered: list[Any]) -> bool:
        """Decide per node whether the groupby-index path is the cheaper one."""
        if not rows.is_ascending:
            return False  # index path emits table order; keep outputs identical
        if len(rows) == len(rows.table):
            return True  # posting lists ARE the buckets: no filtering at all
        index = rows.table.groupby_index(self.attribute)
        candidate_volume = sum(len(index.get(value, ())) for value in ordered)
        if self.include_missing:
            candidate_volume += len(index.get(None, ()))
        return candidate_volume <= INDEX_PATH_ADVANTAGE * len(rows)

    def _partition_via_index(
        self, rows: RowSet, ordered: list[Any]
    ) -> list[tuple[CategoryLabel, RowSet]]:
        index = rows.table.groupby_index(self.attribute)
        table = rows.table
        whole_table = len(rows) == len(table)
        members = None if whole_table else set(rows.indices)
        partitioning: list[tuple[CategoryLabel, RowSet]] = []
        for value in ordered:
            posting = index.get(value)
            if not posting:
                continue
            ids: Sequence[int] = (
                posting
                if members is None
                else [i for i in posting if i in members]
            )
            if ids:
                partitioning.append(
                    (CategoricalLabel(self.attribute, (value,)), RowSet(table, ids))
                )
        if self.include_missing:
            posting = index.get(None)
            if posting:
                ids = (
                    posting
                    if members is None
                    else [i for i in posting if i in members]
                )
                if ids:
                    partitioning.append(
                        (MissingLabel(self.attribute), RowSet(table, ids))
                    )
        return partitioning

    def _partition_via_scan(
        self, rows: RowSet, ordered: list[Any]
    ) -> list[tuple[CategoryLabel, RowSet]]:
        allowed = set(ordered)
        missing_key = object()  # sentinel distinct from every real value

        def classify(value):
            if value is None:
                return missing_key if self.include_missing else None
            return value if value in allowed else None

        buckets = rows.partition_by_attribute(self.attribute, classify)
        partitioning: list[tuple[CategoryLabel, RowSet]] = [
            (CategoricalLabel(self.attribute, (value,)), buckets[value])
            for value in ordered
            if value in buckets and len(buckets[value]) > 0
        ]
        if self.include_missing and missing_key in buckets:
            partitioning.append(
                (MissingLabel(self.attribute), buckets[missing_key])
            )
        return partitioning

    def exploration_probability(self, value: Any) -> float:
        """``P(Ci) = occ(vi) / NAttr(A)`` for the single-value category of vi."""
        n_attr = self.statistics.n_attr(self.attribute)
        if n_attr == 0:
            return 0.0
        return self.statistics.occ(self.attribute, value) / n_attr
