"""Partitioning strategies: categorical (5.1.2), numeric (5.1.3), ordering (App. A)."""

from repro.core.partition.categorical import CategoricalPartitioner
from repro.core.partition.numeric import (
    NumericPartitioner,
    bucketize,
    equi_width_partition,
)
from repro.core.partition.ordering import (
    expected_cost_one_of_ordering,
    order_by_probability,
    order_optimal_one,
)

__all__ = [
    "CategoricalPartitioner",
    "NumericPartitioner",
    "bucketize",
    "equi_width_partition",
    "expected_cost_one_of_ordering",
    "order_by_probability",
    "order_optimal_one",
]
