"""Range partitioning for numeric attributes (Section 5.1.3).

The splitpoint heuristic: a gridpoint ``v`` where many workload query
ranges *begin or end* separates users who want the left bucket from users
who want the right one, so its goodness score is ``SUM(start_v, end_v)``.
To produce ``m`` buckets we take the top ``m−1`` splitpoints by goodness,
"leaving out the ones that are unnecessary" — a splitpoint being
unnecessary for a node when a bucket it creates "contains too few tuples".
Categories are always presented "in ascending order of the values of the
split points" (Example 5.1).

The module also provides the equi-width partitioning used by the No-Cost
baseline (Section 6.1: buckets "of width 5 times the width of the
separation interval").
"""

from __future__ import annotations

import bisect
import math
from array import array
from typing import Sequence

from repro import perf
from repro.core.config import CategorizerConfig
from repro.core.labels import MissingLabel, NumericLabel
from repro.relational.query import SelectQuery
from repro.relational.table import RowSet
from repro.workload.preprocess import WorkloadStatistics


class NumericPartitioner:
    """Partitions nodes on one numeric attribute using workload splitpoints.

    Per Figure 6 the goodness-sorted splitpoint list (SPL) is computed once
    per level from the result set's value range; per node, the top
    *necessary* splitpoints are selected and the node's tuples bucketed.
    Instantiate once per (level, attribute).
    """

    def __init__(
        self,
        attribute: str,
        statistics: WorkloadStatistics,
        config: CategorizerConfig,
        query: SelectQuery | None = None,
        root_rows: RowSet | None = None,
        use_cache: bool = True,
    ) -> None:
        """Args:
            attribute: the categorizing attribute A.
            statistics: workload count tables (SplitPoints table for A).
            config: bucket count m, necessity threshold, auto-m settings.
            query: the user query; a finite range on A fixes (vmin, vmax)
                directly ("vmin and vmax can be obtained directly from Q").
            root_rows: the result set R, used to derive data bounds when
                the query leaves either end open.
            use_cache: memoize bounds, sorted values and partitionings on
                the RowSets they derive from (disable only for measurement
                baselines).
        """
        self.attribute = attribute
        self.statistics = statistics
        self.config = config
        self.use_cache = use_cache
        self.vmin, self.vmax = self._resolve_range(query, root_rows)
        table = statistics.splitpoints_table(attribute)
        self._splitpoints_by_goodness = (
            table.best_splitpoints(self.vmin, self.vmax)
            if self.vmin < self.vmax
            else []
        )

    def _resolve_range(
        self, query: SelectQuery | None, root_rows: RowSet | None
    ) -> tuple[float, float]:
        """Determine (vmin, vmax) from the query, falling back to the data."""
        low = high = None
        if query is not None:
            bounds = query.range_on(self.attribute)
            if bounds is not None:
                query_low, query_high = bounds
                low = None if math.isinf(query_low) else float(query_low)
                high = None if math.isinf(query_high) else float(query_high)
        if (low is None or high is None) and root_rows is not None:
            # (vmin, vmax) is re-resolved from the same root rows at every
            # level; cache the column scan on the view.
            observed = (
                root_rows.derive(
                    ("min_max", self.attribute),
                    lambda: root_rows.min_max(self.attribute),
                )
                if self.use_cache
                else root_rows.min_max(self.attribute)
            )
            if observed is not None:
                data_low, data_high = float(observed[0]), float(observed[1])
                low = data_low if low is None else low
                high = data_high if high is None else high
        if low is None or high is None:
            # No information at all: an empty range yields no splitpoints
            # and partition() degenerates to a single bucket.
            return 0.0, 0.0
        return low, max(low, high)

    # -- splitpoint selection ------------------------------------------------

    def select_splitpoints(self, rows: RowSet) -> list[float]:
        """Choose the top necessary splitpoints for this node (Section 5.1.3).

        Walks the SPL in decreasing goodness, skipping any point that would
        create a bucket with fewer than ``config.min_bucket_tuples`` of the
        node's tuples, until m−1 points are selected or the SPL runs out.
        """
        # The sorted scan is memoized as a packed array('d'): the memo
        # lives as long as the node's RowSet (one per tree node per
        # attribute), and at paper scale the packed form keeps hundreds of
        # thousands of boxed floats off the heap; bisect works on it
        # unchanged.
        values = (
            rows.derive(
                ("sorted_values", self.attribute),
                lambda: array(
                    "d",
                    sorted(
                        v for v in rows.values(self.attribute) if v is not None
                    ),
                ),
            )
            if self.use_cache
            else sorted(v for v in rows.values(self.attribute) if v is not None)
        )
        if not values:
            return []
        target = self._target_splitpoint_count()
        selected: list[float] = []
        for candidate in self._splitpoints_by_goodness:
            if len(selected) >= target:
                break
            if self._is_necessary(candidate, selected, values):
                bisect.insort(selected, candidate)
        return selected

    def _target_splitpoint_count(self) -> int:
        """m − 1, from config or from the goodness distribution (auto mode)."""
        if not self.config.auto_bucket_count:
            return self.config.bucket_count - 1
        table = self.statistics.splitpoints_table(self.attribute)
        rows = table.rows_in_range(self.vmin, self.vmax)
        scores = [row.goodness for row in rows if row.goodness > 0]
        if not scores:
            return self.config.bucket_count - 1
        threshold = sum(scores) / len(scores)
        strong = sum(1 for score in scores if score >= threshold)
        return max(1, min(strong, self.config.max_auto_buckets - 1))

    def _is_necessary(
        self, candidate: float, selected: list[float], sorted_values: "Sequence[float]"
    ) -> bool:
        """True unless the candidate creates a too-small bucket.

        With the already-selected points in place, ``candidate`` splits one
        existing bucket into two; it is unnecessary if either side would
        hold fewer than the configured minimum of this node's tuples.
        """
        position = bisect.bisect_left(selected, candidate)
        left_edge = selected[position - 1] if position > 0 else self.vmin
        right_edge = selected[position] if position < len(selected) else self.vmax
        left_count = bisect.bisect_left(sorted_values, candidate) - bisect.bisect_left(
            sorted_values, left_edge
        )
        if position == len(selected):
            # Rightmost bucket is closed at vmax.
            right_count = bisect.bisect_right(
                sorted_values, right_edge
            ) - bisect.bisect_left(sorted_values, candidate)
        else:
            right_count = bisect.bisect_left(
                sorted_values, right_edge
            ) - bisect.bisect_left(sorted_values, candidate)
        minimum = self.config.min_bucket_tuples
        return left_count >= minimum and right_count >= minimum

    # -- partitioning ------------------------------------------------------------

    def partition(self, rows: RowSet) -> list[tuple[NumericLabel, RowSet]]:
        """Bucket ``rows`` on the selected splitpoints, ascending, non-empty.

        Returns a single-bucket "partitioning" (no refinement) when no
        splitpoint is both available and necessary — the caller treats a
        one-child partitioning as a failure to subdivide.
        """
        perf.count("partition.numeric.calls")
        with perf.span("partition.numeric"):
            splitpoints = self.select_splitpoints(rows)
            if not self.use_cache:
                return self._build_partitioning(rows, splitpoints)
            # The bucketing is a pure function of (view, boundaries,
            # missing policy); boundaries capture every way the workload
            # statistics influence the outcome, so a stats update changes
            # the key rather than staling the entry.
            key = (
                "partition.numeric",
                self.attribute,
                self.vmin,
                self.vmax,
                tuple(splitpoints),
                self.config.include_missing_category,
            )
            return list(
                rows.derive(
                    key, lambda: self._build_partitioning(rows, splitpoints)
                )
            )

    def _build_partitioning(
        self, rows: RowSet, splitpoints: list[float]
    ) -> list[tuple[NumericLabel, RowSet]]:
        partitioning = bucketize(
            self.attribute, rows, self.vmin, self.vmax, splitpoints
        )
        if self.config.include_missing_category:
            label = MissingLabel(self.attribute)
            missing = rows.select(label.to_predicate())
            if len(missing) > 0:
                partitioning.append((label, missing))
        return partitioning

    def exploration_probability(self, label: NumericLabel) -> float:
        """``P(Ci) = NOverlap(Ci) / NAttr(A)`` for a bucket label."""
        n_attr = self.statistics.n_attr(self.attribute)
        if n_attr == 0:
            return 0.0
        overlap = self.statistics.n_overlap_range(
            self.attribute, label.low, label.high, high_inclusive=label.high_inclusive
        )
        return overlap / n_attr


def bucketize(
    attribute: str,
    rows: RowSet,
    vmin: float,
    vmax: float,
    splitpoints: list[float],
) -> list[tuple[NumericLabel, RowSet]]:
    """Build ordered non-empty buckets from boundary points.

    Buckets are half-open ``[a, b)`` except the last, which closes at vmax
    so the maximum value is included.  Tuples outside ``[vmin, vmax]`` (or
    NULL) belong to no bucket.
    """
    boundaries = [vmin, *sorted(splitpoints), vmax]
    labels = []
    for i in range(len(boundaries) - 1):
        is_last = i == len(boundaries) - 2
        labels.append(
            NumericLabel(
                attribute,
                boundaries[i],
                boundaries[i + 1],
                high_inclusive=is_last,
            )
        )

    buckets = rows.partition_by_buckets(attribute, boundaries)
    return [
        (labels[i], buckets[i]) for i in range(len(labels)) if i in buckets
    ]


def equi_width_partition(
    attribute: str,
    rows: RowSet,
    vmin: float,
    vmax: float,
    width: float,
) -> list[tuple[NumericLabel, RowSet]]:
    """The No-Cost baseline's partitioning (Section 6.1).

    Splits ``(vmin, vmax]`` at every multiple of ``width`` ("for price, the
    range is split at every multiple of 25000"), then removes empty
    buckets.
    """
    if width <= 0:
        raise ValueError(f"bucket width must be positive, got {width}")
    splitpoints: list[float] = []
    point = math.floor(vmin / width) * width + width
    while point < vmax:
        if point > vmin:
            splitpoints.append(point)
        point += width
    return bucketize(attribute, rows, vmin, vmax, splitpoints)
