"""Category labels: the predicates describing tree nodes (Section 3.1).

"Associated with each node C is a category label ... label(C) has the
following structure: if the categorizing attribute A is categorical,
label(C) is of the form 'A ∈ B'; if numeric, 'a1 <= A < a2'."

Labels serve three roles, all implemented here:

* **membership** — deciding which of the parent's tuples fall under the
  node (:meth:`CategoryLabel.matches`);
* **overlap with workload conditions** — the NOverlap ingredient of the
  exploration probability P(C) (Section 4.2), and the drill-down rule of
  synthetic explorations (Section 6.2)
  (:meth:`CategoryLabel.overlaps_condition`);
* **display** — the text the user reads ("Price: 200K-225K"),
  (:meth:`CategoryLabel.display`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.relational.expressions import (
    InPredicate,
    IsNullPredicate,
    Predicate,
    RangePredicate,
)


class CategoryLabel:
    """Base class for category labels."""

    attribute: str

    def matches(self, row: Mapping[str, Any]) -> bool:
        """True if the tuple belongs under this category."""
        raise NotImplementedError

    def to_predicate(self) -> Predicate:
        """The label as a relational predicate (for tset computation)."""
        raise NotImplementedError

    def overlaps_condition(self, condition: Predicate | None) -> bool:
        """True if a query's condition on this attribute admits this category.

        ``None`` (the query does not constrain the attribute) counts as
        overlap: a user with no condition on A is interested in all values
        of A (Section 4.2).
        """
        raise NotImplementedError

    def display(self) -> str:
        """Human-readable rendering, in the style of Figure 1."""
        raise NotImplementedError


@dataclass(frozen=True)
class CategoricalLabel(CategoryLabel):
    """``A ∈ B`` for a categorical attribute.

    ``values`` is usually a single value (Section 5.1.2 considers only
    single-value partitionings: "the category labels are simple and easy to
    examine") but the model supports multi-value sets.
    """

    attribute: str
    values: frozenset[Any]

    def __init__(self, attribute: str, values) -> None:
        object.__setattr__(self, "attribute", attribute)
        object.__setattr__(
            self,
            "values",
            frozenset(values) if not isinstance(values, frozenset) else values,
        )
        if not self.values:
            raise ValueError(f"label on {attribute!r} needs at least one value")

    def matches(self, row: Mapping[str, Any]) -> bool:
        return row.get(self.attribute) in self.values

    def to_predicate(self) -> InPredicate:
        return InPredicate(self.attribute, sorted(self.values, key=repr))

    def overlaps_condition(self, condition: Predicate | None) -> bool:
        if condition is None:
            return True
        if isinstance(condition, InPredicate):
            return bool(self.values & condition.values)
        raise TypeError(
            f"cannot test categorical label {self.attribute!r} against "
            f"{type(condition).__name__}"
        )

    @property
    def single_value(self) -> Any:
        """The one value of a single-value label.

        Raises:
            ValueError: for multi-value labels.
        """
        if len(self.values) != 1:
            raise ValueError(f"label {self.display()!r} is not single-value")
        return next(iter(self.values))

    def display(self) -> str:
        rendered = ", ".join(str(v) for v in sorted(self.values, key=str))
        return f"{self.attribute}: {rendered}"

    def __str__(self) -> str:
        return self.display()


@dataclass(frozen=True)
class NumericLabel(CategoryLabel):
    """``a1 <= A < a2`` for a numeric attribute.

    The topmost bucket of a partitioning closes its upper end
    (``high_inclusive=True``) so the attribute's maximum value is not
    orphaned — the half-open chain of Section 3.1 with an inclusive cap.
    """

    attribute: str
    low: float
    high: float
    high_inclusive: bool = False

    def __post_init__(self) -> None:
        if math.isnan(self.low) or math.isnan(self.high):
            raise ValueError("label bounds may not be NaN")
        if self.low > self.high:
            raise ValueError(
                f"empty label range on {self.attribute!r}: "
                f"[{self.low}, {self.high})"
            )

    def matches(self, row: Mapping[str, Any]) -> bool:
        value = row.get(self.attribute)
        if value is None:
            return False
        if self.high_inclusive:
            return self.low <= value <= self.high
        return self.low <= value < self.high

    def to_predicate(self) -> RangePredicate:
        return RangePredicate(
            self.attribute, self.low, self.high, high_inclusive=self.high_inclusive
        )

    def overlaps_condition(self, condition: Predicate | None) -> bool:
        if condition is None:
            return True
        if isinstance(condition, RangePredicate):
            return self.to_predicate().overlaps(condition)
        raise TypeError(
            f"cannot test numeric label {self.attribute!r} against "
            f"{type(condition).__name__}"
        )

    def display(self) -> str:
        return (
            f"{self.attribute}: {_format_bound(self.low)}"
            f"-{_format_bound(self.high)}"
        )

    def __str__(self) -> str:
        return self.display()


@dataclass(frozen=True)
class MissingLabel(CategoryLabel):
    """``A is unknown`` — the category of tuples with a NULL value.

    The paper's label grammar cannot place NULL tuples (neither ``A ∈ B``
    nor ``a1 <= A < a2`` matches them), so without this label they silently
    drop out of every level partitioned on A and become unreachable by
    drill-down.  When ``CategorizerConfig.include_missing_category`` is
    set, partitioners append this category last.

    Its exploration probability under the workload is always 0 — no
    selection condition can ask for NULL — which correctly models that
    only browsing (SHOWTUPLES) users encounter these tuples.
    """

    attribute: str

    def matches(self, row: Mapping[str, Any]) -> bool:
        return row.get(self.attribute) is None

    def to_predicate(self) -> IsNullPredicate:
        return IsNullPredicate(self.attribute)

    def overlaps_condition(self, condition: Predicate | None) -> bool:
        # A query constraining the attribute can never want NULLs; an
        # unconstrained query is interested in every category, this one
        # included.
        return condition is None

    def display(self) -> str:
        return f"{self.attribute}: unknown"

    def __str__(self) -> str:
        return self.display()


def _format_bound(value: float) -> str:
    """Render a bound compactly: 225000 -> '225K', 1500000 -> '1.5M'."""
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    if value == 0:
        return "0"
    for divisor, suffix in ((1_000_000, "M"), (1_000, "K")):
        if abs(value) >= divisor and value % (divisor / 10) == 0:
            scaled = value / divisor
            return f"{scaled:g}{suffix}"
    return f"{value:g}"
