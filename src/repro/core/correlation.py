"""Correlation-aware probability estimation (Section 5.2's improvement).

The Figure 6 algorithm "relies on the assumption that the values the user
is interested in for one attribute are independent of those she is
interested in for another attribute; the quality of the categorization
can be improved by weakening this independence assumption and leveraging
the correlations captured in the workload."  This module implements that
improvement.

Instead of the marginal ``P(C) = NOverlap(C)/NAttr(CA(C))``, the
:class:`CorrelationAwareEstimator` conditions on the node's full path
predicate: among the workload queries compatible with every ancestor
label of C (a query with no condition on an attribute is compatible with
any label on it), it takes the fraction — restricted to queries that do
constrain CA(C) — whose condition on CA(C) overlaps label(C).  A buyer
who searches Bellevue tends to search higher price bands than one who
searches the Bronx; the conditional estimate sees that, the marginal one
cannot.

When too few workload queries support a conditional estimate it falls
back to the marginal (``min_support``), so sparse paths degrade
gracefully to the paper's estimator instead of to noise.
"""

from __future__ import annotations

from repro.core.labels import CategoryLabel
from repro.core.probability import ProbabilityEstimator
from repro.core.tree import CategoryNode
from repro.workload.log import Workload
from repro.workload.model import WorkloadQuery
from repro.workload.preprocess import WorkloadStatistics


class JointWorkloadIndex:
    """Query-level index supporting conditional overlap counting.

    Holds the normalized workload queries and filters index lists by
    label compatibility; the estimator threads these lists down the tree
    so each node's eligible set is computed once from its parent's.
    """

    def __init__(self, workload: Workload) -> None:
        self._queries: list[WorkloadQuery] = list(workload)

    def __len__(self) -> int:
        return len(self._queries)

    def all_indices(self) -> list[int]:
        """Indices of every workload query."""
        return list(range(len(self._queries)))

    def query(self, index: int) -> WorkloadQuery:
        return self._queries[index]

    def compatible(self, indices: list[int], label: CategoryLabel) -> list[int]:
        """Filter ``indices`` to queries compatible with ``label``.

        A query is compatible when it has no condition on the label's
        attribute (interested in all values) or its condition overlaps
        the label.
        """
        attribute = label.attribute
        kept = []
        for i in indices:
            condition = self._queries[i].conditions.get(attribute)
            if label.overlaps_condition(condition):
                kept.append(i)
        return kept

    def constraining(self, indices: list[int], attribute: str) -> list[int]:
        """Filter ``indices`` to queries with a condition on ``attribute``."""
        return [i for i in indices if self._queries[i].constrains(attribute)]


class CorrelationAwareEstimator(ProbabilityEstimator):
    """Conditional P(C)/Pw(C) estimation over the joint workload.

    Drop-in replacement for :class:`ProbabilityEstimator`: pass it to a
    categorizer (``CostBasedCategorizer(stats, config, estimator=...)``)
    or a :class:`~repro.core.cost.CostModel`.
    """

    def __init__(
        self,
        statistics: WorkloadStatistics,
        workload: Workload,
        min_support: int = 30,
    ) -> None:
        super().__init__(statistics)
        if min_support < 1:
            raise ValueError(f"min_support must be >= 1, got {min_support}")
        self.index = JointWorkloadIndex(workload)
        self.min_support = min_support
        self._eligible_cache: dict[int, list[int]] = {}

    # -- eligible-set plumbing ------------------------------------------------

    def _eligible(self, node: CategoryNode | None) -> list[int]:
        """Workload queries compatible with the node's full path predicate."""
        if node is None or node.label is None:
            return self.index.all_indices()
        cached = self._eligible_cache.get(id(node))
        if cached is None:
            parent_eligible = self._eligible(node.parent)
            cached = self.index.compatible(parent_eligible, node.label)
            self._eligible_cache[id(node)] = cached
        return cached

    # -- probabilities ------------------------------------------------------------

    def exploration_probability(self, node: CategoryNode) -> float:
        if node.label is None:
            return 1.0
        return self.exploration_probability_of_label(
            node.label, context=node.parent
        )

    def exploration_probability_of_label(
        self, label: CategoryLabel, context: CategoryNode | None = None
    ) -> float:
        """P(C) conditioned on the context node's path, when supported."""
        if context is None:
            return super().exploration_probability_of_label(label)
        eligible = self._eligible(context)
        constraining = self.index.constraining(eligible, label.attribute)
        if len(constraining) < self.min_support:
            return super().exploration_probability_of_label(label)
        overlapping = self.index.compatible(constraining, label)
        return len(overlapping) / len(constraining)

    def showtuples_probability(self, node: CategoryNode) -> float:
        if node.is_leaf:
            return 1.0
        assert node.child_attribute is not None
        return self.showtuples_probability_for(
            node.child_attribute, context=node
        )

    def showtuples_probability_for(
        self, subcategorizing_attribute: str, context: CategoryNode | None = None
    ) -> float:
        """Pw conditioned on the path: 1 − (constraining share among eligible)."""
        if context is None:
            return super().showtuples_probability_for(subcategorizing_attribute)
        eligible = self._eligible(context)
        if len(eligible) < self.min_support:
            return super().showtuples_probability_for(subcategorizing_attribute)
        constraining = self.index.constraining(
            eligible, subcategorizing_attribute
        )
        return 1.0 - len(constraining) / len(eligible)
