"""The comparison techniques of Section 6.1: No-Cost and Attr-Cost.

Both reuse the Figure 6 level-by-level engine but degrade one or both
policies:

* **No-Cost** — "selects the categorizing attribute at each level
  arbitrarily (without replacement) from a predefined set ... The
  partitioning based on a categorical attribute simply produces single
  valued categories in arbitrary order while that based on a numeric
  attribute partitions the range into equal width buckets of width 5 times
  the width of the separation interval ... all the empty categories are
  removed."
* **Attr-Cost** — "selects the attribute with the lowest cost as the
  categorizing attribute at each level but considers only those
  partitionings considered by the 'No cost' technique."

The paper's finding that Attr-Cost is often *worse* than No-Cost
("cost-based attribute selection is beneficial only when used in
conjunction with a cost-based intra-level partitioning") is one of the
shapes the benchmark suite checks.
"""

from __future__ import annotations

import math
import random
from typing import Any, Mapping, Sequence

from repro.core.algorithm import LevelByLevelCategorizer, Partitioner, Partitioning
from repro.core.config import (
    CategorizerConfig,
    PAPER_CONFIG,
    PAPER_RETAINED_ATTRIBUTES,
)
from repro.core.labels import CategoricalLabel
from repro.core.partition.numeric import NumericPartitioner, equi_width_partition
from repro.core.tree import CategoryNode
from repro.relational.query import SelectQuery
from repro.relational.table import RowSet
from repro.workload.preprocess import WorkloadStatistics


class ArbitraryOrderCategoricalPartitioner:
    """No-Cost categorical partitioning: single-value categories, value order.

    "Arbitrary" must still be deterministic for reproducibility; sorting by
    value is an order chosen with no reference to the workload, which is
    the property the baseline needs.
    """

    def __init__(
        self,
        attribute: str,
        query: SelectQuery | None = None,
    ) -> None:
        self.attribute = attribute
        self._universe: list[Any] | None = None
        if query is not None:
            values = query.values_on(attribute)
            if values is not None:
                self._universe = sorted(values, key=repr)

    def partition(self, rows: RowSet) -> Partitioning:
        universe = (
            self._universe
            if self._universe is not None
            else sorted(rows.distinct_values(self.attribute), key=repr)
        )
        allowed = set(universe)
        buckets = rows.partition_by_attribute(
            self.attribute, lambda value: value if value in allowed else None
        )
        return [
            (CategoricalLabel(self.attribute, (value,)), buckets[value])
            for value in universe
            if value in buckets and len(buckets[value]) > 0
        ]


class EquiWidthNumericPartitioner:
    """No-Cost numeric partitioning: equal-width buckets, empty ones removed."""

    def __init__(
        self,
        attribute: str,
        statistics: WorkloadStatistics,
        config: CategorizerConfig,
        query: SelectQuery | None = None,
        root_rows: RowSet | None = None,
    ) -> None:
        self.attribute = attribute
        self.width = 5.0 * config.separation_interval(attribute)
        # Reuse the cost-based partitioner's (vmin, vmax) resolution only.
        resolver = NumericPartitioner(
            attribute, statistics, config, query=query, root_rows=root_rows
        )
        self.vmin, self.vmax = resolver.vmin, resolver.vmax

    def partition(self, rows: RowSet) -> Partitioning:
        if self.vmin >= self.vmax:
            return []
        return equi_width_partition(
            self.attribute, rows, self.vmin, self.vmax, self.width
        )


class _NoCostPartitioningMixin(LevelByLevelCategorizer):
    """Shared policy: predefined attribute set + No-Cost partitionings."""

    def __init__(
        self,
        statistics: WorkloadStatistics,
        config: CategorizerConfig = PAPER_CONFIG,
        attribute_set: Sequence[str] = PAPER_RETAINED_ATTRIBUTES,
        order_seed: int | None = 13,
    ) -> None:
        """Args:
            attribute_set: the predefined categorizing attributes (the paper
                uses neighborhood, property-type, bedroomcount, price,
                year-built and square-footage).
            order_seed: seeds the "arbitrary" attribute order — each
                categorize() call draws a fresh shuffle from this stream,
                as an indifferent (workload-blind) designer would pick.
                Pass None to use the predefined order verbatim.
        """
        super().__init__(statistics, config)
        self.attribute_set = tuple(attribute_set)
        self._order_rng = (
            random.Random(order_seed) if order_seed is not None else None
        )

    def _candidate_attributes(
        self, rows: RowSet, query: SelectQuery | None
    ) -> Sequence[str]:
        schema_names = set(rows.table.schema.names())
        candidates = [a for a in self.attribute_set if a in schema_names]
        if self._order_rng is not None:
            self._order_rng.shuffle(candidates)
        return candidates

    def _make_partitioner(
        self, attribute: str, query: SelectQuery | None, root_rows: RowSet
    ) -> Partitioner:
        schema_attribute = root_rows.table.schema.attribute(attribute)
        if schema_attribute.is_categorical:
            return ArbitraryOrderCategoricalPartitioner(attribute, query=query)
        return EquiWidthNumericPartitioner(
            attribute,
            self.statistics,
            self.config,
            query=query,
            root_rows=root_rows,
        )


class NoCostCategorizer(_NoCostPartitioningMixin):
    """The No-Cost baseline: arbitrary attribute order, naive partitionings."""

    name = "no-cost"

    def _choose_attribute(
        self,
        oversized: list[CategoryNode],
        available: list[str],
        partitionings: Mapping[str, list[Partitioning]],
    ) -> str | None:
        # "Arbitrarily (without replacement)": take the next attribute in
        # the (possibly shuffled) predefined order that refines any node.
        for attribute in available:
            if any(len(p) >= 2 for p in partitionings[attribute]):
                return attribute
        return None


class AttrCostCategorizer(_NoCostPartitioningMixin):
    """The Attr-Cost baseline: cost-chosen attribute, naive partitionings."""

    name = "attr-cost"

    def _choose_attribute(
        self,
        oversized: list[CategoryNode],
        available: list[str],
        partitionings: Mapping[str, list[Partitioning]],
    ) -> str | None:
        best_attribute: str | None = None
        best_cost = math.inf
        for attribute in available:
            cost = self._level_cost(oversized, attribute, partitionings[attribute])
            if cost < best_cost:
                best_attribute, best_cost = attribute, cost
        return best_attribute
