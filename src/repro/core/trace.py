"""Per-query decision traces: the categorizer's reasoning, made inspectable.

The Figure 6 algorithm makes one consequential decision per level — which
attribute minimizes ``COST_A`` — from inputs the runtime otherwise throws
away: the per-candidate ``CostAll``/``CostOne`` estimates, the workload
probabilities ``Pw`` (SHOWTUPLES) and ``P(C)`` (exploration) behind them,
and the attributes the Section 5.1.1 threshold-``x`` elimination removed
before the comparison even started.  A :class:`DecisionTrace` is the
structured record of all of it, built by
:meth:`LevelByLevelCategorizer.categorize(collect_trace=True)
<repro.core.algorithm.LevelByLevelCategorizer.categorize>` and attached
to the returned tree as ``tree.decision_trace``.

The trace is diagnostic, not hot-path: collecting it materializes every
candidate partitioning (defeating the lazy-skip optimization) and scores
each candidate under both cost scenarios.  Serve with it off; turn it on
per query when a tree needs explaining (``repro categorize --explain``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

#: Per-candidate node details kept in the trace (totals use every node).
MAX_NODE_DETAILS = 6

#: Child exploration probabilities kept per node evaluation.
MAX_CHILD_PROBABILITIES = 16


@dataclass(frozen=True)
class NodeEvaluation:
    """One oversized node scored under one candidate attribute.

    ``p_node`` is the node's exploration probability P(C); ``pw`` the
    SHOWTUPLES probability Pw the candidate attribute would induce on it;
    ``child_probabilities`` the P(Ci) of the candidate partitioning's
    categories in presentation order (capped at
    :data:`MAX_CHILD_PROBABILITIES`).  ``cost_all``/``cost_one`` are the
    node's one-level Equation (1)/(2) costs, children as leaves.
    """

    node: str
    tuples: int
    p_node: float
    pw: float
    categories: int
    child_probabilities: tuple[float, ...]
    children_truncated: bool
    cost_all: float
    cost_one: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "node": self.node,
            "tuples": self.tuples,
            "p_node": self.p_node,
            "pw": self.pw,
            "categories": self.categories,
            "child_probabilities": list(self.child_probabilities),
            "children_truncated": self.children_truncated,
            "cost_all": self.cost_all,
            "cost_one": self.cost_one,
        }


@dataclass(frozen=True)
class CandidateDecision:
    """One candidate attribute's full showing at one level.

    ``cost_all`` is the level score ``COST_A = Σ P(C)·CostAll(Tree(C, A))``
    the argmin runs on; ``cost_one`` is the same aggregation under the ONE
    scenario (Equation 2), recorded so a surprising choice can be checked
    against both ends of the scenario spectrum.  Infinite costs mark an
    attribute that refined no oversized node.
    """

    attribute: str
    cost_all: float
    cost_one: float
    usage_fraction: float
    category_count: int
    refined_nodes: int
    nodes: tuple[NodeEvaluation, ...]
    nodes_truncated: bool

    @property
    def viable(self) -> bool:
        """False when the attribute could not refine any oversized node."""
        return math.isfinite(self.cost_all)

    def as_dict(self) -> dict[str, Any]:
        return {
            "attribute": self.attribute,
            "cost_all": self.cost_all,
            "cost_one": self.cost_one,
            "usage_fraction": self.usage_fraction,
            "category_count": self.category_count,
            "refined_nodes": self.refined_nodes,
            "viable": self.viable,
            "nodes": [node.as_dict() for node in self.nodes],
            "nodes_truncated": self.nodes_truncated,
        }


@dataclass(frozen=True)
class EliminatedAttribute:
    """An attribute removed by the ``NAttr(A)/N >= x`` elimination."""

    attribute: str
    usage_fraction: float

    def as_dict(self) -> dict[str, Any]:
        return {"attribute": self.attribute, "usage_fraction": self.usage_fraction}


@dataclass(frozen=True)
class LevelTrace:
    """The complete comparison behind one level's attribute choice."""

    level: int
    oversized_nodes: int
    oversized_tuples: int
    candidates: tuple[CandidateDecision, ...]
    chosen: str | None

    def candidate(self, attribute: str) -> CandidateDecision:
        """The record for one attribute.

        Raises:
            KeyError: if the attribute was not a candidate at this level.
        """
        for candidate in self.candidates:
            if candidate.attribute == attribute:
                return candidate
        raise KeyError(attribute)

    def as_dict(self) -> dict[str, Any]:
        return {
            "level": self.level,
            "oversized_nodes": self.oversized_nodes,
            "oversized_tuples": self.oversized_tuples,
            "candidates": [c.as_dict() for c in self.candidates],
            "chosen": self.chosen,
        }


@dataclass
class DecisionTrace:
    """Everything the categorizer decided for one query, level by level.

    ``trace_id`` and ``served_rung`` are request-correlation fields set by
    the serving layer (:mod:`repro.serving.service`): the per-request
    trace ID ties this trace to the request's perf spans and response, and
    the served rung records which step of the degradation ladder actually
    answered (``full``, ``truncated``, ``single_level``, ``showtuples``).
    Both stay None for offline/CLI categorizations.
    """

    technique: str
    elimination_threshold: float
    eliminated: tuple[EliminatedAttribute, ...] = ()
    levels: list[LevelTrace] = field(default_factory=list)
    trace_id: str | None = None
    served_rung: str | None = None

    def chosen_attributes(self) -> list[str]:
        """The per-level winners, root-down (skipping refused levels)."""
        return [level.chosen for level in self.levels if level.chosen is not None]

    def as_dict(self) -> dict[str, Any]:
        """The whole trace as a JSON-ready dict (the export schema)."""
        return {
            "technique": self.technique,
            "elimination_threshold": self.elimination_threshold,
            "trace_id": self.trace_id,
            "served_rung": self.served_rung,
            "eliminated": [e.as_dict() for e in self.eliminated],
            "levels": [level.as_dict() for level in self.levels],
        }

    def render(self) -> str:
        """Human-readable report: elimination, then one table per level."""
        # Imported here: repro.study pulls in the algorithm module, whose
        # import of this module must not recurse through it.
        from repro.study.report import format_table

        sections: list[str] = []
        if self.eliminated:
            sections.append(
                format_table(
                    ["attribute", "NAttr/N", f"threshold x = {self.elimination_threshold}"],
                    [
                        [e.attribute, f"{e.usage_fraction:.3f}", "eliminated"]
                        for e in sorted(self.eliminated, key=lambda e: e.attribute)
                    ],
                    title="Eliminated before comparison (Section 5.1.1)",
                )
            )
        for level in self.levels:
            rows = []
            for candidate in sorted(
                level.candidates, key=lambda c: (not c.viable, c.cost_all)
            ):
                pw_values = [n.pw for n in candidate.nodes]
                mean_pw = sum(pw_values) / len(pw_values) if pw_values else 0.0
                rows.append(
                    [
                        candidate.attribute,
                        "-" if not candidate.viable else f"{candidate.cost_all:.1f}",
                        "-" if not candidate.viable else f"{candidate.cost_one:.1f}",
                        f"{candidate.usage_fraction:.2f}",
                        f"{mean_pw:.2f}",
                        candidate.category_count,
                        f"{candidate.refined_nodes}/{level.oversized_nodes}",
                        "<- chosen" if candidate.attribute == level.chosen else "",
                    ]
                )
            sections.append(
                format_table(
                    ["attribute", "CostAll", "CostOne", "NAttr/N", "Pw",
                     "categories", "nodes refined", ""],
                    rows,
                    title=(
                        f"Level {level.level}: {level.oversized_nodes} oversized "
                        f"nodes ({level.oversized_tuples} tuples)"
                        + ("" if level.chosen else " — no attribute chosen")
                    ),
                )
            )
        if not sections:
            return "(no categorization decisions: nothing was oversized)"
        return "\n\n".join(sections)
