"""JSON serialization of category trees.

The paper's system shipped trees to a web treeview; any real deployment
needs a wire format.  ``tree_to_dict`` produces a UI-ready nested
structure (labels, display strings, counts, optional cost annotations);
``tree_from_dict`` reconstructs a tree against the original result set by
re-applying the serialized labels — so a tree can round-trip through a
cache or an API boundary without shipping tuple data.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.core.cost import CostModel
from repro.core.labels import (
    CategoricalLabel,
    CategoryLabel,
    MissingLabel,
    NumericLabel,
)
from repro.core.tree import CategoryNode, CategoryTree
from repro.relational.query import SelectQuery
from repro.relational.table import RowSet
from repro.sql.compiler import parse_query
from repro.sql.formatter import format_query


def tree_to_dict(tree: CategoryTree, cost_model: CostModel | None = None) -> dict:
    """Serialize a tree to a JSON-compatible dict.

    Args:
        cost_model: when given, each node carries its P(C), Pw(C),
            CostAll and CostOne annotations.
    """
    annotations = cost_model.annotate(tree) if cost_model is not None else None
    return {
        "technique": tree.technique,
        "query": format_query(tree.query) if tree.query is not None else None,
        "result_size": tree.result_size,
        "root": _node_to_dict(tree.root, annotations),
    }


def tree_to_json(tree: CategoryTree, cost_model: CostModel | None = None, **kwargs) -> str:
    """Serialize a tree to a JSON string (kwargs go to ``json.dumps``)."""
    return json.dumps(tree_to_dict(tree, cost_model), **kwargs)


def tree_from_dict(payload: dict, rows: RowSet) -> CategoryTree:
    """Rebuild a tree from its dict form against the original result set.

    Tuple sets are recomputed by re-applying each node's label to its
    parent's rows, so the reconstruction is exact whenever ``rows`` is the
    same result set the tree was built over.

    Raises:
        ValueError: if the payload's result size does not match ``rows``
            (a sign the wrong result set was supplied), or a node's
            recorded tuple count disagrees with the recomputed tset.
    """
    if payload["result_size"] != len(rows):
        raise ValueError(
            f"payload was built over {payload['result_size']} tuples but "
            f"got a result set of {len(rows)}"
        )
    root = CategoryNode(rows)
    _rebuild_children(root, payload["root"], rows)
    query = (
        parse_query(payload["query"]) if payload.get("query") else None
    )
    return CategoryTree(root, query=query, technique=payload.get("technique", "unspecified"))


def tree_from_json(text: str, rows: RowSet) -> CategoryTree:
    """Rebuild a tree from its JSON string form."""
    return tree_from_dict(json.loads(text), rows)


# -- node encoding ------------------------------------------------------------


def _node_to_dict(node: CategoryNode, annotations: dict | None) -> dict:
    payload: dict[str, Any] = {
        "label": _label_to_dict(node.label),
        "display": node.display(),
        "tuple_count": node.tuple_count,
    }
    if annotations is not None:
        costs = annotations[id(node)]
        payload["costs"] = {
            "exploration_probability": costs.exploration_probability,
            "showtuples_probability": costs.showtuples_probability,
            "cost_all": costs.cost_all,
            "cost_one": costs.cost_one,
        }
    if node.children:
        payload["child_attribute"] = node.child_attribute
        payload["children"] = [
            _node_to_dict(child, annotations) for child in node.children
        ]
    return payload


def _label_to_dict(label: CategoryLabel | None) -> dict | None:
    if label is None:
        return None
    if isinstance(label, CategoricalLabel):
        return {
            "kind": "categorical",
            "attribute": label.attribute,
            "values": sorted(label.values, key=repr),
        }
    if isinstance(label, NumericLabel):
        return {
            "kind": "numeric",
            "attribute": label.attribute,
            "low": _encode_bound(label.low),
            "high": _encode_bound(label.high),
            "high_inclusive": label.high_inclusive,
        }
    if isinstance(label, MissingLabel):
        return {"kind": "missing", "attribute": label.attribute}
    raise TypeError(f"cannot serialize label type {type(label).__name__}")


def _label_from_dict(payload: dict) -> CategoryLabel:
    if payload["kind"] == "categorical":
        return CategoricalLabel(payload["attribute"], payload["values"])
    if payload["kind"] == "numeric":
        return NumericLabel(
            payload["attribute"],
            _decode_bound(payload["low"]),
            _decode_bound(payload["high"]),
            high_inclusive=payload["high_inclusive"],
        )
    if payload["kind"] == "missing":
        return MissingLabel(payload["attribute"])
    raise ValueError(f"unknown label kind {payload['kind']!r}")


def _encode_bound(value: float):
    """JSON has no infinity; encode unbounded ends as strings."""
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _decode_bound(value) -> float:
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)


def _rebuild_children(node: CategoryNode, payload: dict, rows: RowSet) -> None:
    children = payload.get("children")
    if not children:
        return
    attribute = payload["child_attribute"]
    partitions = []
    for child_payload in children:
        label = _label_from_dict(child_payload["label"])
        child_rows = rows.select(label.to_predicate())
        if len(child_rows) != child_payload["tuple_count"]:
            raise ValueError(
                f"category {label.display()!r}: payload says "
                f"{child_payload['tuple_count']} tuples, result set yields "
                f"{len(child_rows)}"
            )
        partitions.append((label, child_rows))
    attached = node.add_children(attribute, partitions)
    for child_node, child_payload in zip(attached, children):
        _rebuild_children(child_node, child_payload, child_node.rows)
