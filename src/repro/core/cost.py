"""The analytical cost models: Equations (1) and (2) of Section 4.1.

Information overload cost is "the total number of items (category labels
and data tuples) examined by the user", estimated in expectation over the
non-deterministic choices of the exploration models:

Equation (1), ALL scenario::

    CostAll(C) = Pw(C)·|tset(C)|
               + (1 − Pw(C)) · ( K·n + Σᵢ P(Cᵢ)·CostAll(Cᵢ) )

Equation (2), ONE scenario::

    CostOne(C) = Pw(C)·frac(C)·|tset(C)|
               + (1 − Pw(C)) · Σᵢ ( Πⱼ₍ⱼ₌₁..ᵢ₋₁₎ (1 − P(Cⱼ)) · P(Cᵢ)
                                     · ( K·i + CostOne(Cᵢ) ) )

Leaves use Pw = 1, so both equations degenerate to the SHOWTUPLES term.
``CostAll(T)`` / ``CostOne(T)`` are the root costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import perf
from repro.core.config import CategorizerConfig
from repro.core.probability import ProbabilityEstimator
from repro.core.tree import CategoryNode, CategoryTree


@dataclass(frozen=True)
class NodeCosts:
    """Per-node cost annotation produced by :meth:`CostModel.annotate`."""

    exploration_probability: float
    showtuples_probability: float
    cost_all: float
    cost_one: float


class CostModel:
    """Evaluates CostAll / CostOne of trees and subtrees."""

    def __init__(
        self, estimator: ProbabilityEstimator, config: CategorizerConfig
    ) -> None:
        self.estimator = estimator
        self.config = config

    # -- Equation (1) -----------------------------------------------------------

    def cost_all(self, node: CategoryNode) -> float:
        """``CostAll(C)``: expected items examined to find *all* relevant tuples."""
        if node.is_leaf:
            return float(node.tuple_count)
        pw = self.estimator.showtuples_probability(node)
        showcat = self.config.label_cost * len(node.children) + sum(
            self.estimator.exploration_probability(child) * self.cost_all(child)
            for child in node.children
        )
        return pw * node.tuple_count + (1.0 - pw) * showcat

    def tree_cost_all(self, tree: CategoryTree) -> float:
        """``CostAll(T) = CostAll(root)``."""
        perf.count("cost.tree_cost_all")
        with perf.span("cost.tree_cost_all"):
            return self.cost_all(tree.root)

    # -- Equation (2) -------------------------------------------------------------

    def cost_one(self, node: CategoryNode) -> float:
        """``CostOne(C)``: expected items examined to find the *first* relevant tuple."""
        if node.is_leaf:
            return self.config.frac * node.tuple_count
        pw = self.estimator.showtuples_probability(node)
        showcat = 0.0
        none_explored_so_far = 1.0
        for position, child in enumerate(node.children, start=1):
            p_child = self.estimator.exploration_probability(child)
            first_explored = none_explored_so_far * p_child
            showcat += first_explored * (
                self.config.label_cost * position + self.cost_one(child)
            )
            none_explored_so_far *= 1.0 - p_child
        return (
            pw * self.config.frac * node.tuple_count + (1.0 - pw) * showcat
        )

    def tree_cost_one(self, tree: CategoryTree) -> float:
        """``CostOne(T) = CostOne(root)``."""
        perf.count("cost.tree_cost_one")
        with perf.span("cost.tree_cost_one"):
            return self.cost_one(tree.root)

    # -- intermediate scenarios ------------------------------------------------

    def cost_few(self, node: CategoryNode, k: int) -> float:
        """Expected items examined to find ``k`` relevant tuples.

        The paper models only the two ends of the scenario spectrum and
        notes intermediate scenarios "fall in between these two ends"
        (Section 3.2).  This estimate interpolates accordingly:
        ``CostFew(C, k) = CostOne(C) + (1 − 1/k)·(CostAll(C) − CostOne(C))``
        — exact at k = 1, approaching CostAll as the user wants more of
        the relevant set.  It is a modeling heuristic (the exact
        expectation depends on the distribution of relevant tuples across
        categories, which the workload does not reveal); the replay-level
        counterpart :func:`repro.explore.exploration.replay_few` is exact.

        Raises:
            ValueError: for ``k < 1``.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        one = self.cost_one(node)
        if k == 1:
            return one
        return one + (1.0 - 1.0 / k) * (self.cost_all(node) - one)

    def tree_cost_few(self, tree: CategoryTree, k: int) -> float:
        """``CostFew(T, k) = CostFew(root, k)``."""
        return self.cost_few(tree.root, k)

    # -- helpers -------------------------------------------------------------------

    def one_level_cost_all(
        self,
        parent_tuple_count: int,
        attribute: str,
        child_labels_and_sizes: list[tuple[float, int]],
        context: "CategoryNode | None" = None,
    ) -> float:
        """Equation (1) for a candidate 1-level partitioning, children as leaves.

        This is the quantity the attribute-selection step of Figure 6
        evaluates for every (node, candidate attribute) pair:
        ``CostAll(Tree(C, A))`` where each subcategory Ci is (for now) a
        leaf, so ``CostAll(Ci) = |tset(Ci)|``.

        Args:
            parent_tuple_count: ``|tset(C)|``.
            attribute: the candidate subcategorizing attribute A.
            child_labels_and_sizes: per child, its exploration probability
                P(Ci) and tuple count |tset(Ci)|, in presentation order.
            context: the node being partitioned, for path-conditional
                estimators (ignored by the default estimator).
        """
        perf.count("cost.one_level_evals")
        pw = self.estimator.showtuples_probability_for(attribute, context=context)
        showcat = self.config.label_cost * len(child_labels_and_sizes) + sum(
            p * size for p, size in child_labels_and_sizes
        )
        return pw * parent_tuple_count + (1.0 - pw) * showcat

    def one_level_cost_one(
        self,
        parent_tuple_count: int,
        attribute: str,
        child_labels_and_sizes: list[tuple[float, int]],
        context: "CategoryNode | None" = None,
    ) -> float:
        """Equation (2) for a candidate 1-level partitioning, children as leaves.

        The ONE-scenario counterpart of :meth:`one_level_cost_all`, used by
        decision traces (:mod:`repro.core.trace`) so each candidate
        attribute reports both ends of the scenario spectrum.  Each
        subcategory Ci is a leaf, so ``CostOne(Ci) = frac·|tset(Ci)|``.
        """
        perf.count("cost.one_level_evals", scenario="one")
        pw = self.estimator.showtuples_probability_for(attribute, context=context)
        frac = self.config.frac
        k = self.config.label_cost
        showcat = 0.0
        none_explored_so_far = 1.0
        for position, (p, size) in enumerate(child_labels_and_sizes, start=1):
            showcat += none_explored_so_far * p * (k * position + frac * size)
            none_explored_so_far *= 1.0 - p
        return pw * frac * parent_tuple_count + (1.0 - pw) * showcat

    def annotate(self, tree: CategoryTree) -> dict[int, NodeCosts]:
        """Compute all four quantities for every node, keyed by ``id(node)``.

        One bottom-up pass, so the whole-tree annotation is O(#nodes)
        instead of the O(#nodes · depth) of calling :meth:`cost_all` per
        node.  Useful for rendering and debugging.
        """
        annotations: dict[int, NodeCosts] = {}
        self._annotate_node(tree.root, annotations)
        return annotations

    def _annotate_node(
        self, node: CategoryNode, annotations: dict[int, NodeCosts]
    ) -> NodeCosts:
        for child in node.children:
            self._annotate_node(child, annotations)
        if node.is_leaf:
            costs = NodeCosts(
                exploration_probability=self.estimator.exploration_probability(node),
                showtuples_probability=1.0,
                cost_all=float(node.tuple_count),
                cost_one=self.config.frac * node.tuple_count,
            )
            annotations[id(node)] = costs
            return costs

        pw = self.estimator.showtuples_probability(node)
        k = self.config.label_cost
        children = [annotations[id(child)] for child in node.children]

        showcat_all = k * len(children) + sum(
            c.exploration_probability * c.cost_all for c in children
        )
        cost_all = pw * node.tuple_count + (1.0 - pw) * showcat_all

        showcat_one = 0.0
        none_explored = 1.0
        for position, child_costs in enumerate(children, start=1):
            p = child_costs.exploration_probability
            showcat_one += none_explored * p * (k * position + child_costs.cost_one)
            none_explored *= 1.0 - p
        cost_one = pw * self.config.frac * node.tuple_count + (1.0 - pw) * showcat_one

        costs = NodeCosts(
            exploration_probability=self.estimator.exploration_probability(node),
            showtuples_probability=pw,
            cost_all=cost_all,
            cost_one=cost_one,
        )
        annotations[id(node)] = costs
        return costs
