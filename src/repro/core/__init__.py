"""The paper's contribution: cost-based automatic categorization.

Category trees (Section 3), the CostAll/CostOne models (Section 4), the
workload-driven probability estimator (Section 4.2), the partitioning
heuristics and the level-by-level algorithm (Section 5), and the
No-Cost/Attr-Cost baselines (Section 6.1).
"""

from repro.core.algorithm import (
    CostBasedCategorizer,
    LevelByLevelCategorizer,
    Partitioner,
    Partitioning,
)
from repro.core.baselines import (
    ArbitraryOrderCategoricalPartitioner,
    AttrCostCategorizer,
    EquiWidthNumericPartitioner,
    NoCostCategorizer,
)
from repro.core.config import (
    CategorizerConfig,
    LIST_PROPERTY_SEPARATION_INTERVALS,
    PAPER_CONFIG,
    PAPER_RETAINED_ATTRIBUTES,
)
from repro.core.correlation import CorrelationAwareEstimator, JointWorkloadIndex
from repro.core.cost import CostModel, NodeCosts
from repro.core.explain import (
    ExplainingCategorizer,
    Explanation,
    LevelDecision,
    explain_categorization,
)
from repro.core.enumerate import (
    EnumerationResult,
    FixedOrderCategorizer,
    enumerate_optimal_tree,
)
from repro.core.labels import (
    CategoricalLabel,
    CategoryLabel,
    MissingLabel,
    NumericLabel,
)
from repro.core.partition import (
    CategoricalPartitioner,
    NumericPartitioner,
    bucketize,
    equi_width_partition,
    expected_cost_one_of_ordering,
    order_by_probability,
    order_optimal_one,
)
from repro.core.probability import ProbabilityEstimator
from repro.core.serialize import (
    tree_from_dict,
    tree_from_json,
    tree_to_dict,
    tree_to_json,
)
from repro.core.tree import CategoryNode, CategoryTree

__all__ = [
    "ArbitraryOrderCategoricalPartitioner",
    "AttrCostCategorizer",
    "CategoricalLabel",
    "CategoricalPartitioner",
    "CategorizerConfig",
    "CategoryLabel",
    "CategoryNode",
    "CategoryTree",
    "CorrelationAwareEstimator",
    "CostBasedCategorizer",
    "CostModel",
    "EnumerationResult",
    "EquiWidthNumericPartitioner",
    "ExplainingCategorizer",
    "Explanation",
    "FixedOrderCategorizer",
    "JointWorkloadIndex",
    "LIST_PROPERTY_SEPARATION_INTERVALS",
    "LevelByLevelCategorizer",
    "LevelDecision",
    "MissingLabel",
    "NoCostCategorizer",
    "NodeCosts",
    "NumericLabel",
    "NumericPartitioner",
    "PAPER_CONFIG",
    "PAPER_RETAINED_ATTRIBUTES",
    "Partitioner",
    "Partitioning",
    "ProbabilityEstimator",
    "bucketize",
    "enumerate_optimal_tree",
    "explain_categorization",
    "equi_width_partition",
    "expected_cost_one_of_ordering",
    "order_by_probability",
    "order_optimal_one",
    "tree_from_dict",
    "tree_from_json",
    "tree_to_dict",
    "tree_to_json",
]
