"""Workload-driven probability estimation (Section 4.2).

Two probabilities parameterize the cost models:

* **SHOWTUPLES probability** ``Pw(C)``: given that the user explores C, the
  probability she browses C's tuples directly instead of its subcategory
  labels.  "The SHOWCAT probability of C is NAttr(SA(C))/N", so
  ``Pw(C) = 1 − NAttr(SA(C))/N``; for a leaf, ``Pw(C) = 1``.
* **Exploration probability** ``P(C)``: the probability the user explores C
  upon examining its label, ``P(C) = NOverlap(C) / NAttr(CA(C))`` — the
  fraction of attribute-interested workload users whose condition on CA(C)
  overlaps label(C).

Both are pure functions of the label / subcategorizing attribute and the
precomputed :class:`~repro.workload.preprocess.WorkloadStatistics`.
"""

from __future__ import annotations

from repro.core.labels import (
    CategoricalLabel,
    CategoryLabel,
    MissingLabel,
    NumericLabel,
)
from repro.core.tree import CategoryNode
from repro.workload.preprocess import WorkloadStatistics


class ProbabilityEstimator:
    """Computes P(C) and Pw(C) from workload statistics."""

    def __init__(self, statistics: WorkloadStatistics) -> None:
        self.statistics = statistics

    # -- SHOWTUPLES probability ------------------------------------------------

    def showtuples_probability(self, node: CategoryNode) -> float:
        """``Pw(C)`` for a tree node: 1 for leaves, else 1 − NAttr(SA(C))/N."""
        if node.is_leaf:
            return 1.0
        assert node.child_attribute is not None
        return self.showtuples_probability_for(node.child_attribute)

    def showtuples_probability_for(
        self, subcategorizing_attribute: str, context: "CategoryNode | None" = None
    ) -> float:
        """``Pw`` of a non-leaf node whose children partition on the attribute.

        ``context`` (the node being partitioned) is accepted so that
        correlation-aware subclasses can condition on the node's path; the
        independence-assuming base estimator ignores it (Section 4.2).
        """
        return 1.0 - self.statistics.usage_fraction(subcategorizing_attribute)

    # -- exploration probability ---------------------------------------------------

    def exploration_probability(self, node: CategoryNode) -> float:
        """``P(C)`` for a tree node; the root is always explored (P = 1)."""
        if node.label is None:
            return 1.0
        return self.exploration_probability_of_label(node.label)

    def exploration_probability_of_label(
        self, label: CategoryLabel, context: "CategoryNode | None" = None
    ) -> float:
        """``P(C) = NOverlap(C) / NAttr(CA(C))`` for a label.

        ``context`` (the would-be parent node) is accepted for
        correlation-aware subclasses; ignored here (independence
        assumption of Section 4.2).

        When no workload query constrains the attribute (NAttr = 0) the
        ratio is undefined; we return 0.0 — such attributes offer no
        evidence that any category would be selectively explored, and the
        elimination step (Section 5.1.1) discards them anyway.
        """
        n_attr = self.statistics.n_attr(label.attribute)
        if n_attr == 0:
            return 0.0
        return self.n_overlap(label) / n_attr

    def n_overlap(self, label: CategoryLabel) -> int:
        """``NOverlap(C)``: workload queries overlapping the label."""
        if isinstance(label, MissingLabel):
            return 0  # no selection condition can ask for NULL
        if isinstance(label, CategoricalLabel):
            return self.statistics.n_overlap_values(label.attribute, label.values)
        if isinstance(label, NumericLabel):
            return self.statistics.n_overlap_range(
                label.attribute,
                label.low,
                label.high,
                high_inclusive=label.high_inclusive,
            )
        raise TypeError(f"unknown label type {type(label).__name__}")
