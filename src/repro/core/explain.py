"""Explain a categorization: why each level's attribute won.

The Figure 6 algorithm makes one consequential decision per level — which
attribute minimizes ``COST_A`` — and then discards the comparison.  For
debugging a surprising tree ("why is it categorizing by bedrooms and not
price?") that comparison *is* the answer.  :class:`ExplainingCategorizer`
is the cost-based algorithm with a flight recorder: it builds the
identical tree while retaining, per level, every candidate attribute's
COST_A and the sizes involved, renderable as a report.
"""

from __future__ import annotations

from typing import Mapping

import math
from dataclasses import dataclass, field

from repro.core.algorithm import CostBasedCategorizer, Partitioning
from repro.core.tree import CategoryNode, CategoryTree
from repro.relational.query import SelectQuery
from repro.relational.table import RowSet
from repro.study.report import format_table
from repro.workload.preprocess import WorkloadStatistics


@dataclass(frozen=True)
class CandidateRecord:
    """One candidate attribute's showing at one level."""

    attribute: str
    cost: float
    usage_fraction: float
    category_count: int
    refined_nodes: int

    @property
    def viable(self) -> bool:
        """False when the attribute could not refine any oversized node."""
        return math.isfinite(self.cost)


@dataclass(frozen=True)
class LevelDecision:
    """The full comparison behind one level's attribute choice."""

    level: int
    oversized_nodes: int
    oversized_tuples: int
    candidates: tuple[CandidateRecord, ...]
    chosen: str | None

    def margin(self) -> float:
        """Winner's advantage over the runner-up (1.0 = none), inf if alone."""
        viable = sorted(c.cost for c in self.candidates if c.viable)
        if len(viable) < 2 or viable[0] == 0:
            return math.inf
        return viable[1] / viable[0]


@dataclass
class Explanation:
    """The tree plus the decision log that produced it."""

    tree: CategoryTree
    decisions: list[LevelDecision] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable per-level report."""
        sections: list[str] = []
        for decision in self.decisions:
            rows = []
            for candidate in sorted(
                decision.candidates, key=lambda c: (not c.viable, c.cost)
            ):
                marker = "<- chosen" if candidate.attribute == decision.chosen else ""
                rows.append(
                    [
                        candidate.attribute,
                        "-" if not candidate.viable else f"{candidate.cost:.1f}",
                        f"{candidate.usage_fraction:.2f}",
                        candidate.category_count,
                        f"{candidate.refined_nodes}/{decision.oversized_nodes}",
                        marker,
                    ]
                )
            sections.append(
                format_table(
                    ["attribute", "COST_A", "NAttr/N", "categories",
                     "nodes refined", ""],
                    rows,
                    title=(
                        f"Level {decision.level}: {decision.oversized_nodes} "
                        f"oversized nodes ({decision.oversized_tuples} tuples)"
                    ),
                )
            )
        return "\n\n".join(sections)


class ExplainingCategorizer(CostBasedCategorizer):
    """Cost-based categorization that records every level's comparison.

    Produces trees identical to :class:`CostBasedCategorizer` (same
    policies, same tie-breaking); call :meth:`explain` instead of
    ``categorize`` to get the decision log alongside the tree.
    """

    name = "cost-based"

    def __init__(self, statistics: WorkloadStatistics, *args, **kwargs) -> None:
        super().__init__(statistics, *args, **kwargs)
        self._decisions: list[LevelDecision] = []

    def explain(
        self, rows: RowSet, query: SelectQuery | None = None
    ) -> Explanation:
        """Categorize ``rows`` and return the tree with its decision log."""
        self._decisions = []
        tree = self.categorize(rows, query)
        return Explanation(tree=tree, decisions=list(self._decisions))

    def _choose_attribute(
        self,
        oversized: list[CategoryNode],
        available: list[str],
        partitionings: Mapping[str, list[Partitioning]],
    ) -> str | None:
        candidates = []
        best_attribute: str | None = None
        best_cost = math.inf
        for attribute in available:
            cost = self._level_cost(oversized, attribute, partitionings[attribute])
            candidates.append(
                CandidateRecord(
                    attribute=attribute,
                    cost=cost,
                    usage_fraction=self.statistics.usage_fraction(attribute),
                    category_count=sum(
                        len(p) for p in partitionings[attribute]
                    ),
                    refined_nodes=sum(
                        1 for p in partitionings[attribute] if len(p) >= 2
                    ),
                )
            )
            if cost < best_cost:
                best_attribute, best_cost = attribute, cost
        self._decisions.append(
            LevelDecision(
                level=len(self._decisions) + 1,
                oversized_nodes=len(oversized),
                oversized_tuples=sum(n.tuple_count for n in oversized),
                candidates=tuple(candidates),
                chosen=best_attribute,
            )
        )
        return best_attribute


def explain_categorization(
    rows: RowSet,
    query: SelectQuery | None,
    statistics: WorkloadStatistics,
    config=None,
) -> Explanation:
    """One-call convenience: categorize and explain.

    Args follow :class:`CostBasedCategorizer`; ``config`` defaults to the
    paper configuration.
    """
    from repro.core.config import PAPER_CONFIG

    categorizer = ExplainingCategorizer(statistics, config or PAPER_CONFIG)
    return categorizer.explain(rows, query)
