"""Explain a categorization: why each level's attribute won.

The Figure 6 algorithm makes one consequential decision per level — which
attribute minimizes ``COST_A``.  For debugging a surprising tree ("why is
it categorizing by bedrooms and not price?") that comparison *is* the
answer.  :class:`ExplainingCategorizer` presents it as a compact per-level
report.

Since the observability work, the underlying record comes from the
engine's own decision tracing
(``categorize(collect_trace=True)`` / :mod:`repro.core.trace`) — this
module is a thin view over that trace, kept for its established API and
its cost-ranked rendering.  Use the trace directly when you also need the
CostOne estimates, the Pw/P probability inputs, or the eliminated set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.algorithm import CostBasedCategorizer
from repro.core.trace import DecisionTrace
from repro.core.tree import CategoryTree
from repro.relational.query import SelectQuery
from repro.relational.table import RowSet
from repro.study.report import format_table
from repro.workload.preprocess import WorkloadStatistics


@dataclass(frozen=True)
class CandidateRecord:
    """One candidate attribute's showing at one level."""

    attribute: str
    cost: float
    usage_fraction: float
    category_count: int
    refined_nodes: int

    @property
    def viable(self) -> bool:
        """False when the attribute could not refine any oversized node."""
        return math.isfinite(self.cost)


@dataclass(frozen=True)
class LevelDecision:
    """The full comparison behind one level's attribute choice."""

    level: int
    oversized_nodes: int
    oversized_tuples: int
    candidates: tuple[CandidateRecord, ...]
    chosen: str | None

    def margin(self) -> float:
        """Winner's advantage over the runner-up (1.0 = none), inf if alone."""
        viable = sorted(c.cost for c in self.candidates if c.viable)
        if len(viable) < 2 or viable[0] == 0:
            return math.inf
        return viable[1] / viable[0]


@dataclass
class Explanation:
    """The tree plus the decision log that produced it."""

    tree: CategoryTree
    decisions: list[LevelDecision] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable per-level report."""
        sections: list[str] = []
        for decision in self.decisions:
            rows = []
            for candidate in sorted(
                decision.candidates, key=lambda c: (not c.viable, c.cost)
            ):
                marker = "<- chosen" if candidate.attribute == decision.chosen else ""
                rows.append(
                    [
                        candidate.attribute,
                        "-" if not candidate.viable else f"{candidate.cost:.1f}",
                        f"{candidate.usage_fraction:.2f}",
                        candidate.category_count,
                        f"{candidate.refined_nodes}/{decision.oversized_nodes}",
                        marker,
                    ]
                )
            sections.append(
                format_table(
                    ["attribute", "COST_A", "NAttr/N", "categories",
                     "nodes refined", ""],
                    rows,
                    title=(
                        f"Level {decision.level}: {decision.oversized_nodes} "
                        f"oversized nodes ({decision.oversized_tuples} tuples)"
                    ),
                )
            )
        return "\n\n".join(sections)


def decisions_from_trace(trace: DecisionTrace) -> list[LevelDecision]:
    """Project an engine :class:`DecisionTrace` onto the compact records."""
    return [
        LevelDecision(
            level=level.level,
            oversized_nodes=level.oversized_nodes,
            oversized_tuples=level.oversized_tuples,
            candidates=tuple(
                CandidateRecord(
                    attribute=candidate.attribute,
                    cost=candidate.cost_all,
                    usage_fraction=candidate.usage_fraction,
                    category_count=candidate.category_count,
                    refined_nodes=candidate.refined_nodes,
                )
                for candidate in level.candidates
            ),
            chosen=level.chosen,
        )
        for level in trace.levels
    ]


class ExplainingCategorizer(CostBasedCategorizer):
    """Cost-based categorization that reports every level's comparison.

    Produces trees identical to :class:`CostBasedCategorizer` (same
    policies, same tie-breaking); call :meth:`explain` instead of
    ``categorize`` to get the decision log alongside the tree.  The log
    is the engine's own decision trace, projected onto
    :class:`LevelDecision` records.
    """

    name = "cost-based"

    def explain(
        self, rows: RowSet, query: SelectQuery | None = None
    ) -> Explanation:
        """Categorize ``rows`` and return the tree with its decision log."""
        tree = self.categorize(rows, query, collect_trace=True)
        return Explanation(
            tree=tree, decisions=decisions_from_trace(tree.decision_trace)
        )


def explain_categorization(
    rows: RowSet,
    query: SelectQuery | None,
    statistics: WorkloadStatistics,
    config=None,
) -> Explanation:
    """One-call convenience: categorize and explain.

    Args follow :class:`CostBasedCategorizer`; ``config`` defaults to the
    paper configuration.
    """
    from repro.core.config import PAPER_CONFIG

    categorizer = ExplainingCategorizer(statistics, config or PAPER_CONFIG)
    return categorizer.explain(rows, query)
