"""Generator for the synthetic ``ListProperty`` relation.

The paper's dataset is "a single table called ListProperty ... 1.7 million
rows ... location (neighborhood, city, state, zipcode), price, bedroomcount,
bathcount, year-built, property-type ... and square-footage" (Section 6.1).
This module produces a schema-identical synthetic table at configurable
scale: listings are distributed over the geography of
:mod:`repro.data.geography` with correlated attribute values from
:mod:`repro.data.distributions`.

The generator is deterministic under a seed, so every experiment in the
benchmark suite is reproducible run to run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.data.distributions import (
    sample_bathrooms,
    sample_bedrooms,
    sample_price,
    sample_property_type,
    sample_square_footage,
    sample_year_built,
    weighted_choice,
)
from repro.data.geography import ALL_REGIONS, Neighborhood, Region
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import AttributeKind, DataType


def list_property_schema() -> TableSchema:
    """Return the schema of the synthetic ListProperty table.

    Attribute kinds follow the paper: neighborhood/city/state/zipcode/
    property-type are categorical; price/bedroomcount/bathcount/year-built/
    square-footage are numeric.  Zipcode is an INT but *categorical* — an
    example of why kind is declared, not inferred.
    """
    return TableSchema(
        name="ListProperty",
        attributes=(
            Attribute("neighborhood", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("city", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("state", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("zipcode", DataType.INT, AttributeKind.CATEGORICAL),
            Attribute("price", DataType.INT, AttributeKind.NUMERIC),
            Attribute("bedroomcount", DataType.INT, AttributeKind.NUMERIC),
            Attribute("bathcount", DataType.FLOAT, AttributeKind.NUMERIC),
            Attribute("yearbuilt", DataType.INT, AttributeKind.NUMERIC),
            Attribute("propertytype", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("squarefootage", DataType.INT, AttributeKind.NUMERIC),
        ),
    )


@dataclass(frozen=True)
class ListPropertyGenerator:
    """Deterministic generator for a synthetic ListProperty table.

    Attributes:
        rows: number of listings to generate.
        seed: PRNG seed; the same (rows, seed, regions) always yields an
            identical table.
        regions: the markets to draw from; defaults to the full geography.
        null_rates: per-attribute probability of a NULL value (listings
            missing year-built or square footage are common in real feeds).
            Defaults to no NULLs, matching the paper's "non-null
            attributes" statement; set rates to exercise the
            missing-category machinery.
    """

    rows: int = 50_000
    seed: int = 7
    regions: tuple[Region, ...] = ALL_REGIONS
    null_rates: Mapping[str, float] = field(default_factory=dict)
    backend: str = "rows"
    backend_options: Mapping[str, Any] | None = None

    def generate(self) -> Table:
        """Build and return the table.

        Listings are allocated to regions proportionally to total city
        weight, then to neighborhoods by neighborhood weight, so market
        sizes are skewed the way real inventory is (Seattle ≫ Sammamish).
        The listings stream straight into :meth:`Table.from_rows` (one
        bulk column load) rather than a per-row ``insert`` loop.
        """
        if self.rows <= 0:
            raise ValueError(f"rows must be positive, got {self.rows}")
        rng = random.Random(self.seed)
        region_weights = [
            sum(city.weight for city in region.cities) for region in self.regions
        ]
        zipcodes = _ZipcodeAssigner(self.seed)

        def listings():
            for _ in range(self.rows):
                region = weighted_choice(rng, list(self.regions), region_weights)
                neighborhood = weighted_choice(
                    rng,
                    list(region.neighborhoods),
                    [n.weight for n in region.neighborhoods],
                )
                listing = self._generate_listing(rng, region, neighborhood, zipcodes)
                for attribute, rate in self.null_rates.items():
                    if rate > 0 and rng.random() < rate:
                        listing[attribute] = None
                yield listing

        return Table.from_rows(
            list_property_schema(),
            listings(),
            backend=self.backend,
            backend_options=self.backend_options,
        )

    def _generate_listing(
        self,
        rng: random.Random,
        region: Region,
        neighborhood: Neighborhood,
        zipcodes: "_ZipcodeAssigner",
    ) -> dict:
        city = region.city(neighborhood.city)
        price = sample_price(rng, city.base_price, city.price_sigma, neighborhood.price_factor)
        property_type = sample_property_type(rng, city.condo_share)
        bedrooms = sample_bedrooms(rng, price, city.base_price, property_type)
        return {
            "neighborhood": neighborhood.name,
            "city": city.name,
            "state": city.state,
            "zipcode": zipcodes.zipcode_for(neighborhood.name),
            "price": price,
            "bedroomcount": bedrooms,
            "bathcount": sample_bathrooms(rng, bedrooms),
            "yearbuilt": sample_year_built(rng, city.median_year_built, property_type),
            "propertytype": property_type,
            "squarefootage": sample_square_footage(rng, bedrooms, property_type),
        }


class _ZipcodeAssigner:
    """Assigns each neighborhood a stable synthetic 5-digit zipcode."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed ^ 0x5A1D)
        self._assigned: dict[str, int] = {}
        self._used: set[int] = set()

    def zipcode_for(self, neighborhood_name: str) -> int:
        """Return the zipcode of a neighborhood, allocating on first use."""
        if neighborhood_name not in self._assigned:
            while True:
                candidate = self._rng.randint(10_000, 99_999)
                if candidate not in self._used:
                    break
            self._used.add(candidate)
            self._assigned[neighborhood_name] = candidate
        return self._assigned[neighborhood_name]


def generate_homes(
    rows: int = 50_000,
    seed: int = 7,
    backend: str = "rows",
    backend_options: Mapping[str, Any] | None = None,
) -> Table:
    """Convenience wrapper: generate the default synthetic ListProperty table."""
    return ListPropertyGenerator(
        rows=rows, seed=seed, backend=backend, backend_options=backend_options
    ).generate()
