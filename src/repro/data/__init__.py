"""Synthetic dataset substrate: the MSN House&Home stand-in.

Generates a schema-identical ``ListProperty`` relation (paper Section 6.1)
over a fixed US housing geography, with correlated, realistically skewed
attribute values, fully deterministic under a seed.
"""

from repro.data.geography import (
    ALL_REGIONS,
    AUSTIN,
    BAY_AREA,
    CHICAGO,
    NYC,
    SEATTLE_BELLEVUE,
    City,
    Neighborhood,
    Region,
    region_by_name,
    region_of_neighborhood,
)
from repro.data.homes import ListPropertyGenerator, generate_homes, list_property_schema
from repro.data.star import (
    listing_fact_schema,
    location_dimension_schema,
    normalize_homes,
    widen_star,
)

__all__ = [
    "ALL_REGIONS",
    "AUSTIN",
    "BAY_AREA",
    "CHICAGO",
    "City",
    "ListPropertyGenerator",
    "NYC",
    "Neighborhood",
    "Region",
    "SEATTLE_BELLEVUE",
    "generate_homes",
    "list_property_schema",
    "listing_fact_schema",
    "location_dimension_schema",
    "normalize_homes",
    "widen_star",
    "region_by_name",
    "region_of_neighborhood",
]
