"""Seeded samplers for realistic home-listing attribute values.

Real listing data is heavily structured: prices are log-normal within a
market and *round* (clustered at 5K grid points, which is why the paper's
splitpoint heuristic works); bedrooms and square footage are positively
correlated with price; condos are smaller and newer than single-family
homes.  These samplers encode that structure so the synthetic dataset
presents the categorizer with the same statistical texture the MSN data
did, while remaining fully deterministic under a seed.
"""

from __future__ import annotations

import math
import random


#: Property types used by the dataset and workload generators.
PROPERTY_TYPES = ("Single Family Home", "Condo/Townhome", "Multi-Family", "Land")

#: Share of listings per property type conditioned on the city condo share.
_NON_CONDO_SPLIT = {"Single Family Home": 0.82, "Multi-Family": 0.10, "Land": 0.08}


def sample_price(
    rng: random.Random, base_price: float, sigma: float, price_factor: float = 1.0
) -> int:
    """Sample a listing price: log-normal around the market, snapped to 5K.

    The 5K snapping mirrors how sellers actually price homes and is what
    concentrates workload range endpoints on a coarse grid — the property
    the paper's SplitPoints table (separation interval 5000 for price)
    relies on.
    """
    mu = math.log(base_price * price_factor)
    price = rng.lognormvariate(mu, sigma)
    price = min(max(price, 30_000), 5_000_000)
    return int(round(price / 5_000) * 5_000)


def sample_property_type(rng: random.Random, condo_share: float) -> str:
    """Sample a property type given the city's condo share."""
    if rng.random() < condo_share:
        return "Condo/Townhome"
    roll = rng.random()
    cumulative = 0.0
    for name, share in _NON_CONDO_SPLIT.items():
        cumulative += share / sum(_NON_CONDO_SPLIT.values())
        if roll < cumulative:
            return name
    return "Single Family Home"


def sample_bedrooms(rng: random.Random, price: float, base_price: float, property_type: str) -> int:
    """Sample a bedroom count, increasing with relative price.

    Condos skew small; land parcels have zero bedrooms.
    """
    if property_type == "Land":
        return 0
    affluence = price / base_price
    center = 2.0 + 1.4 * math.log1p(affluence)
    if property_type == "Condo/Townhome":
        center -= 1.0
    bedrooms = int(round(rng.gauss(center, 0.9)))
    return min(max(bedrooms, 1), 9)


def sample_bathrooms(rng: random.Random, bedrooms: int) -> float:
    """Sample a bathroom count correlated with bedrooms, in 0.5 steps."""
    if bedrooms == 0:
        return 0.0
    center = 1.0 + 0.55 * (bedrooms - 1)
    baths = rng.gauss(center, 0.5)
    baths = min(max(baths, 1.0), 7.0)
    return round(baths * 2) / 2


def sample_square_footage(rng: random.Random, bedrooms: int, property_type: str) -> int:
    """Sample square footage correlated with bedrooms, snapped to 50 sqft.

    The 100-sqft separation interval used by the paper's SplitPoints table
    for square footage assumes this kind of coarse clustering.
    """
    if property_type == "Land":
        return 0
    base = 550 + 480 * bedrooms
    sqft = rng.gauss(base, base * 0.22)
    sqft = min(max(sqft, 350), 12_000)
    return int(round(sqft / 50) * 50)


def sample_year_built(rng: random.Random, median_year: int, property_type: str) -> int:
    """Sample a construction year around the city's median era.

    Condos skew newer (most US condo stock post-dates 1970).
    """
    center = median_year + (12 if property_type == "Condo/Townhome" else 0)
    year = int(round(rng.gauss(center, 22)))
    return min(max(year, 1880), 2004)


def weighted_choice(rng: random.Random, items: list, weights: list[float]):
    """Pick one item with the given relative weights.

    ``random.Random.choices`` exists, but a single-draw helper reads better
    at call sites and avoids allocating a one-element list per sample.
    """
    total = sum(weights)
    roll = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if roll < cumulative:
            return item
    return items[-1]
