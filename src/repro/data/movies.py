"""A second domain: a synthetic movie catalog with its own search workload.

"Our solution is general and presents a domain-independent approach to
addressing the information overload problem" (Section 1).  One synthetic
domain cannot witness that claim; this module provides a structurally
different second one — a movie catalog — with the same deliverables as
:mod:`repro.data.homes` / :mod:`repro.workload.generator`: a deterministic
relation generator and a persona-based SQL search log whose statistics
exhibit the skew the categorizer feeds on (genre popularity, round-number
year ranges, rating floors).

Used by ``examples/movies.py`` and the cross-domain benchmark
(``benchmarks/test_ablation_cross_domain.py``).
"""

from __future__ import annotations

import random
from typing import Any, Mapping

from repro.data.distributions import weighted_choice
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import AttributeKind, DataType
from repro.workload.log import Workload


#: Genres with relative catalog share and search popularity (they differ:
#: documentaries are plentiful but rarely searched, thrillers the reverse).
GENRES: tuple[tuple[str, float, float], ...] = (
    # (name, catalog weight, search weight)
    ("Drama", 5.0, 2.5),
    ("Comedy", 4.0, 3.5),
    ("Action", 3.0, 4.5),
    ("Thriller", 2.0, 4.0),
    ("Documentary", 3.0, 0.8),
    ("Horror", 1.5, 2.5),
    ("Sci-Fi", 1.5, 3.0),
    ("Romance", 2.0, 1.8),
    ("Animation", 1.2, 2.2),
    ("Western", 0.5, 0.4),
)

#: Languages with catalog share.
LANGUAGES: tuple[tuple[str, float], ...] = (
    ("English", 7.0),
    ("French", 1.0),
    ("Spanish", 1.0),
    ("Japanese", 0.8),
    ("Korean", 0.6),
    ("German", 0.5),
    ("Hindi", 0.7),
)

#: Ratings boards.
CERTIFICATES = ("G", "PG", "PG-13", "R")


def movie_schema() -> TableSchema:
    """The Movies relation: 3 categorical + 4 numeric attributes."""
    return TableSchema(
        "Movies",
        (
            Attribute("genre", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("language", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("certificate", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("year", DataType.INT, AttributeKind.NUMERIC),
            Attribute("runtime", DataType.INT, AttributeKind.NUMERIC),
            Attribute("rating", DataType.FLOAT, AttributeKind.NUMERIC),
            Attribute("votes", DataType.INT, AttributeKind.NUMERIC),
        ),
    )


#: Separation intervals for the movie domain's numeric attributes.
MOVIE_SEPARATION_INTERVALS = {
    "year": 5.0,
    "runtime": 10.0,
    "rating": 0.5,
    "votes": 10_000.0,
}


def generate_movies(
    rows: int = 20_000,
    seed: int = 3,
    backend: str = "rows",
    backend_options: Mapping[str, Any] | None = None,
) -> Table:
    """Generate the synthetic movie catalog, deterministic under ``seed``."""
    if rows <= 0:
        raise ValueError(f"rows must be positive, got {rows}")
    rng = random.Random(seed)
    genre_names = [g for g, _, _ in GENRES]
    genre_weights = [w for _, w, _ in GENRES]
    language_names = [l for l, _ in LANGUAGES]
    language_weights = [w for _, w in LANGUAGES]

    def movies():
        for _ in range(rows):
            genre = weighted_choice(rng, genre_names, genre_weights)
            year = min(2004, max(1920, int(rng.gauss(1985, 18))))
            rating = round(min(9.8, max(1.0, rng.gauss(6.2, 1.2))), 1)
            # Popular, well-rated, recent movies accumulate votes.
            votes_scale = 10 ** rng.uniform(2.0, 5.5)
            votes = int(votes_scale * (0.4 + rating / 10) * (0.5 + (year - 1920) / 170))
            runtime = int(round(rng.gauss(108, 18) / 5) * 5)
            yield {
                "genre": genre,
                "language": weighted_choice(rng, language_names, language_weights),
                "certificate": rng.choice(CERTIFICATES),
                "year": year,
                "runtime": max(60, min(240, runtime)),
                "rating": rating,
                "votes": max(50, votes),
            }

    return Table.from_rows(
        movie_schema(), movies(), backend=backend, backend_options=backend_options
    )


def generate_movie_workload(queries: int = 8_000, seed: int = 5) -> Workload:
    """Persona-based movie searches, as SQL strings.

    Attribute usage is calibrated so an x = 0.4 elimination keeps genre,
    rating and year — the attributes movie browsing actually pivots on —
    and discards votes/certificate/runtime.
    """
    if queries <= 0:
        raise ValueError(f"queries must be positive, got {queries}")
    rng = random.Random(seed)
    genre_names = [g for g, _, _ in GENRES]
    genre_search_weights = [w for _, _, w in GENRES]
    statements = []
    for _ in range(queries):
        parts: list[str] = []
        if rng.random() < 0.85:
            count = rng.choice((1, 1, 1, 2, 3))
            chosen: list[str] = []
            remaining = list(zip(genre_names, genre_search_weights))
            for _ in range(count):
                names = [n for n, _ in remaining]
                weights = [w for _, w in remaining]
                pick = weighted_choice(rng, names, weights)
                chosen.append(pick)
                remaining = [(n, w) for n, w in remaining if n != pick]
            rendered = ", ".join(f"'{g}'" for g in chosen)
            parts.append(f"genre IN ({rendered})")
        if rng.random() < 0.65:
            floor = rng.choice((6.0, 6.5, 7.0, 7.0, 7.5, 8.0))
            parts.append(f"rating >= {floor}")
        if rng.random() < 0.55:
            low = rng.choice((1960, 1970, 1980, 1990, 1990, 1995, 2000))
            if rng.random() < 0.5:
                parts.append(f"year >= {low}")
            else:
                parts.append(f"year BETWEEN {low} AND {min(2004, low + rng.choice((5, 10, 10, 20)))}")
        if rng.random() < 0.30:
            parts.append(f"language IN ('{weighted_choice(rng, [l for l, _ in LANGUAGES], [w for _, w in LANGUAGES])}')")
        if rng.random() < 0.20:
            parts.append(f"runtime <= {rng.choice((100, 120, 120, 150))}")
        if rng.random() < 0.15:
            parts.append(f"votes >= {rng.choice((1000, 10000, 100000))}")
        if rng.random() < 0.10:
            parts.append(f"certificate IN ('{rng.choice(CERTIFICATES)}')")
        if not parts:
            parts.append("rating >= 7.0")
        statements.append("SELECT * FROM Movies WHERE " + " AND ".join(parts))
    return Workload.from_sql_strings(statements)
