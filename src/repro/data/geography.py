"""US housing-market geography for the synthetic ListProperty dataset.

The paper's dataset covers homes "available for sale in the whole of the
United States" and its experiments broaden queries to *regions* such as
"Seattle/Bellevue" and "NYC - Manhattan, Bronx" (Section 6.2).  This module
defines a fixed geography — regions containing cities containing
neighborhoods — rich enough to reproduce those broadening semantics, with
per-region market parameters (price level, spread, construction era) used
by the value samplers.

The geography is deliberately static data, not random: region/city/
neighborhood names are the join keys between the dataset generator, the
workload generator, and the task definitions of the user study, and all
three must agree.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Neighborhood:
    """A neighborhood: the finest location granularity in the dataset.

    Attributes:
        name: rendered as ``"<neighborhood>, <state>"`` in the data to match
            the paper's occurrence-count examples ("Seattle,WA").
        city: owning city name.
        price_factor: multiplier on the city's base price (captures that
            e.g. Medina is pricier than average Bellevue).
        weight: relative share of the city's listings in this neighborhood.
    """

    name: str
    city: str
    price_factor: float = 1.0
    weight: float = 1.0


@dataclass(frozen=True)
class City:
    """A city with market-level parameters shared by its neighborhoods."""

    name: str
    state: str
    base_price: float
    price_sigma: float
    median_year_built: int
    condo_share: float
    weight: float = 1.0


@dataclass(frozen=True)
class Region:
    """A metropolitan region: the unit of query broadening (Section 6.2)."""

    name: str
    cities: tuple[City, ...]
    neighborhoods: tuple[Neighborhood, ...]

    def neighborhood_names(self) -> tuple[str, ...]:
        """All neighborhood display names in this region."""
        return tuple(n.name for n in self.neighborhoods)

    def city(self, name: str) -> City:
        """Return the city called ``name``.

        Raises:
            KeyError: when the city is not in this region.
        """
        for city in self.cities:
            if city.name == name:
                return city
        raise KeyError(f"no city {name!r} in region {self.name!r}")


def _hoods(city: str, state: str, specs: list[tuple[str, float, float]]) -> list[Neighborhood]:
    """Build neighborhoods for one city from (name, price_factor, weight) specs."""
    return [
        Neighborhood(name=f"{name}, {state}", city=city, price_factor=pf, weight=w)
        for name, pf, w in specs
    ]


#: Seattle/Bellevue — the paper's running example region.
SEATTLE_BELLEVUE = Region(
    name="Seattle/Bellevue",
    cities=(
        City("Seattle", "WA", base_price=380_000, price_sigma=0.45,
             median_year_built=1955, condo_share=0.30, weight=8.0),
        City("Bellevue", "WA", base_price=520_000, price_sigma=0.40,
             median_year_built=1978, condo_share=0.25, weight=3.0),
        City("Redmond", "WA", base_price=460_000, price_sigma=0.35,
             median_year_built=1985, condo_share=0.20, weight=2.0),
        City("Kirkland", "WA", base_price=470_000, price_sigma=0.38,
             median_year_built=1980, condo_share=0.25, weight=1.5),
        City("Issaquah", "WA", base_price=430_000, price_sigma=0.32,
             median_year_built=1990, condo_share=0.15, weight=1.0),
        City("Sammamish", "WA", base_price=480_000, price_sigma=0.30,
             median_year_built=1995, condo_share=0.05, weight=0.8),
    ),
    neighborhoods=tuple(
        _hoods("Seattle", "WA", [
            ("Queen Anne", 1.25, 1.2), ("Capitol Hill", 1.15, 1.4),
            ("Ballard", 1.05, 1.3), ("Fremont", 1.10, 1.0),
            ("Greenwood", 0.90, 1.0), ("Rainier Valley", 0.65, 1.2),
            ("West Seattle", 0.85, 1.3), ("Northgate", 0.80, 0.9),
            ("Magnolia", 1.20, 0.7), ("Beacon Hill", 0.70, 0.9),
        ])
        + _hoods("Bellevue", "WA", [
            ("Downtown Bellevue", 1.30, 1.0), ("Crossroads", 0.85, 1.0),
            ("Somerset", 1.15, 0.8), ("Lake Hills", 0.90, 1.1),
            ("Bridle Trails", 1.20, 0.6),
        ])
        + _hoods("Redmond", "WA", [
            ("Education Hill", 1.05, 1.0), ("Overlake", 0.90, 1.0),
            ("Bear Creek", 1.00, 0.8),
        ])
        + _hoods("Kirkland", "WA", [
            ("Juanita", 0.95, 1.0), ("Houghton", 1.20, 0.7),
            ("Totem Lake", 0.85, 0.9),
        ])
        + _hoods("Issaquah", "WA", [
            ("Issaquah Highlands", 1.05, 1.0), ("Squak Mountain", 0.95, 0.7),
        ])
        + _hoods("Sammamish", "WA", [
            ("Pine Lake", 1.00, 1.0), ("Klahanie", 0.90, 1.0),
        ])
    ),
)

#: Bay Area - Peninsula/San Jose — Task 2 of the user study.
BAY_AREA = Region(
    name="Bay Area - Penin/SanJose",
    cities=(
        City("San Jose", "CA", base_price=550_000, price_sigma=0.45,
             median_year_built=1972, condo_share=0.30, weight=5.0),
        City("Palo Alto", "CA", base_price=900_000, price_sigma=0.40,
             median_year_built=1960, condo_share=0.20, weight=1.0),
        City("Mountain View", "CA", base_price=700_000, price_sigma=0.38,
             median_year_built=1968, condo_share=0.35, weight=1.2),
        City("Sunnyvale", "CA", base_price=620_000, price_sigma=0.35,
             median_year_built=1970, condo_share=0.30, weight=1.5),
        City("Santa Clara", "CA", base_price=560_000, price_sigma=0.35,
             median_year_built=1969, condo_share=0.30, weight=1.3),
    ),
    neighborhoods=tuple(
        _hoods("San Jose", "CA", [
            ("Willow Glen", 1.15, 1.2), ("Almaden Valley", 1.20, 1.0),
            ("Evergreen", 0.95, 1.2), ("Berryessa", 0.90, 1.1),
            ("Cambrian Park", 1.00, 1.0), ("East San Jose", 0.65, 1.3),
            ("Downtown San Jose", 0.85, 0.9),
        ])
        + _hoods("Palo Alto", "CA", [
            ("Old Palo Alto", 1.40, 0.6), ("Midtown Palo Alto", 1.10, 1.0),
            ("Barron Park", 1.00, 0.8),
        ])
        + _hoods("Mountain View", "CA", [
            ("Old Mountain View", 1.10, 1.0), ("Whisman", 0.95, 1.0),
        ])
        + _hoods("Sunnyvale", "CA", [
            ("Cherry Chase", 1.10, 0.9), ("Lakewood", 0.90, 1.0),
            ("Birdland", 1.00, 0.9),
        ])
        + _hoods("Santa Clara", "CA", [
            ("Rivermark", 1.05, 1.0), ("Old Quad", 0.95, 1.0),
        ])
    ),
)

#: NYC - Manhattan, Bronx — Task 3 of the user study.
NYC = Region(
    name="NYC - Manhattan, Bronx",
    cities=(
        City("Manhattan", "NY", base_price=750_000, price_sigma=0.55,
             median_year_built=1940, condo_share=0.85, weight=3.0),
        City("Bronx", "NY", base_price=320_000, price_sigma=0.45,
             median_year_built=1945, condo_share=0.55, weight=2.0),
    ),
    neighborhoods=tuple(
        _hoods("Manhattan", "NY", [
            ("Upper East Side", 1.25, 1.3), ("Upper West Side", 1.20, 1.3),
            ("Harlem", 0.70, 1.2), ("Chelsea", 1.30, 1.0),
            ("Greenwich Village", 1.45, 0.8), ("Financial District", 1.10, 0.9),
            ("East Village", 1.05, 1.0), ("Washington Heights", 0.60, 1.1),
            ("Tribeca", 1.60, 0.6), ("Midtown", 1.15, 1.1),
        ])
        + _hoods("Bronx", "NY", [
            ("Riverdale", 1.20, 1.0), ("Fordham", 0.75, 1.1),
            ("Pelham Bay", 0.90, 1.0), ("Morris Park", 0.85, 1.0),
            ("Throgs Neck", 0.95, 0.9),
        ])
    ),
)

#: Chicago — extra coverage so the "whole US" dataset is not two coasts.
CHICAGO = Region(
    name="Chicago",
    cities=(
        City("Chicago", "IL", base_price=290_000, price_sigma=0.50,
             median_year_built=1950, condo_share=0.45, weight=2.2),
        City("Evanston", "IL", base_price=380_000, price_sigma=0.40,
             median_year_built=1940, condo_share=0.35, weight=0.5),
        City("Oak Park", "IL", base_price=340_000, price_sigma=0.38,
             median_year_built=1935, condo_share=0.30, weight=0.3),
    ),
    neighborhoods=tuple(
        _hoods("Chicago", "IL", [
            ("Lincoln Park", 1.35, 1.0), ("Lakeview", 1.20, 1.2),
            ("Wicker Park", 1.10, 1.0), ("Hyde Park", 0.85, 1.0),
            ("Logan Square", 0.95, 1.1), ("Pilsen", 0.70, 1.0),
            ("South Loop", 1.05, 0.9), ("Edgewater", 0.85, 1.0),
        ])
        + _hoods("Evanston", "IL", [
            ("Downtown Evanston", 1.10, 1.0), ("South Evanston", 0.90, 1.0),
        ])
        + _hoods("Oak Park", "IL", [
            ("Frank Lloyd Wright District", 1.15, 0.8),
            ("South Oak Park", 0.90, 1.0),
        ])
    ),
)

#: Austin — a sixth market with newer housing stock.
AUSTIN = Region(
    name="Austin",
    cities=(
        City("Austin", "TX", base_price=310_000, price_sigma=0.42,
             median_year_built=1988, condo_share=0.25, weight=1.6),
        City("Round Rock", "TX", base_price=240_000, price_sigma=0.30,
             median_year_built=1998, condo_share=0.10, weight=0.4),
    ),
    neighborhoods=tuple(
        _hoods("Austin", "TX", [
            ("Hyde Park Austin", 1.20, 0.9), ("Zilker", 1.30, 0.8),
            ("Mueller", 1.10, 1.0), ("East Austin", 0.85, 1.2),
            ("Circle C Ranch", 1.00, 1.0), ("North Loop", 0.95, 1.0),
        ])
        + _hoods("Round Rock", "TX", [
            ("Teravista", 1.05, 1.0), ("Old Town Round Rock", 0.90, 0.9),
        ])
    ),
)

#: Boston — dense, old housing stock, mid-sized market.
BOSTON = Region(
    name="Boston",
    cities=(
        City("Boston", "MA", base_price=420_000, price_sigma=0.48,
             median_year_built=1930, condo_share=0.55, weight=1.0),
        City("Cambridge", "MA", base_price=520_000, price_sigma=0.40,
             median_year_built=1925, condo_share=0.60, weight=0.4),
    ),
    neighborhoods=tuple(
        _hoods("Boston", "MA", [
            ("Back Bay", 1.40, 0.8), ("South End", 1.25, 1.0),
            ("Jamaica Plain", 0.95, 1.1), ("Dorchester", 0.70, 1.3),
            ("Charlestown", 1.10, 0.8), ("Roslindale", 0.85, 0.9),
        ])
        + _hoods("Cambridge", "MA", [
            ("Harvard Square", 1.30, 0.7), ("Porter Square", 1.05, 0.9),
            ("East Cambridge", 0.95, 1.0),
        ])
    ),
)

#: Miami — small coastal market, condo-heavy.
MIAMI = Region(
    name="Miami",
    cities=(
        City("Miami", "FL", base_price=260_000, price_sigma=0.50,
             median_year_built=1975, condo_share=0.65, weight=0.7),
        City("Coral Gables", "FL", base_price=430_000, price_sigma=0.42,
             median_year_built=1955, condo_share=0.30, weight=0.2),
    ),
    neighborhoods=tuple(
        _hoods("Miami", "FL", [
            ("Brickell", 1.25, 1.0), ("Coconut Grove", 1.20, 0.8),
            ("Little Havana", 0.65, 1.1), ("Wynwood", 0.90, 0.9),
            ("Kendall", 0.85, 1.2),
        ])
        + _hoods("Coral Gables", "FL", [
            ("Gables Estates", 1.50, 0.4), ("Granada", 1.00, 0.9),
        ])
    ),
)

#: Denver — mid-sized mountain-west market.
DENVER = Region(
    name="Denver",
    cities=(
        City("Denver", "CO", base_price=270_000, price_sigma=0.40,
             median_year_built=1970, condo_share=0.30, weight=0.45),
        City("Boulder", "CO", base_price=390_000, price_sigma=0.35,
             median_year_built=1975, condo_share=0.25, weight=0.15),
    ),
    neighborhoods=tuple(
        _hoods("Denver", "CO", [
            ("Capitol Hill Denver", 0.95, 1.0), ("Washington Park", 1.25, 0.9),
            ("Highlands", 1.10, 1.0), ("Five Points", 0.85, 1.0),
            ("Stapleton", 1.00, 0.9),
        ])
        + _hoods("Boulder", "CO", [
            ("North Boulder", 1.10, 0.8), ("Table Mesa", 1.00, 0.9),
        ])
    ),
)

#: Phoenix — small, newer, inexpensive market.
PHOENIX = Region(
    name="Phoenix",
    cities=(
        City("Phoenix", "AZ", base_price=190_000, price_sigma=0.38,
             median_year_built=1992, condo_share=0.15, weight=0.25),
        City("Scottsdale", "AZ", base_price=320_000, price_sigma=0.40,
             median_year_built=1990, condo_share=0.30, weight=0.1),
    ),
    neighborhoods=tuple(
        _hoods("Phoenix", "AZ", [
            ("Arcadia", 1.30, 0.7), ("Ahwatukee", 1.00, 1.0),
            ("Desert Ridge", 1.05, 0.9), ("Maryvale", 0.60, 1.2),
        ])
        + _hoods("Scottsdale", "AZ", [
            ("Old Town Scottsdale", 1.10, 0.8), ("McCormick Ranch", 1.05, 0.9),
        ])
    ),
)

#: Portland — the smallest market in the synthetic US.
PORTLAND = Region(
    name="Portland",
    cities=(
        City("Portland", "OR", base_price=250_000, price_sigma=0.38,
             median_year_built=1960, condo_share=0.25, weight=0.15),
    ),
    neighborhoods=tuple(
        _hoods("Portland", "OR", [
            ("Pearl District", 1.30, 0.7), ("Hawthorne", 1.05, 1.0),
            ("Alberta", 0.95, 1.0), ("Sellwood", 1.00, 0.9),
            ("St. Johns", 0.75, 1.0),
        ])
    ),
)

#: All regions in the synthetic United States, in a stable order.  Market
#: sizes (total city weight) span roughly an order of magnitude, giving the
#: broadened-query result sizes the spread the Figure 7 correlation needs.
ALL_REGIONS: tuple[Region, ...] = (
    SEATTLE_BELLEVUE,
    BAY_AREA,
    NYC,
    CHICAGO,
    AUSTIN,
    BOSTON,
    MIAMI,
    DENVER,
    PHOENIX,
    PORTLAND,
)


def region_by_name(name: str) -> Region:
    """Look up a region by its display name.

    Raises:
        KeyError: listing the valid names, since a typo here is the common
            failure when defining new study tasks.
    """
    for region in ALL_REGIONS:
        if region.name == name:
            return region
    raise KeyError(
        f"unknown region {name!r}; valid: {[r.name for r in ALL_REGIONS]}"
    )


def region_of_neighborhood(neighborhood_name: str) -> Region:
    """Return the region containing ``neighborhood_name``.

    This implements the broadening direction of Section 6.2: a workload
    query's neighborhoods are expanded to *all* neighborhoods of their
    region.

    Raises:
        KeyError: when the neighborhood is not part of the geography.
    """
    for region in ALL_REGIONS:
        if neighborhood_name in region.neighborhood_names():
            return region
    raise KeyError(f"unknown neighborhood {neighborhood_name!r}")
