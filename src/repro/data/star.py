"""Normalized (star-schema) form of the ListProperty dataset.

The paper's footnote 6 assumes the categorized relation is "the wide
table obtained by joining the fact table with the dimension tables".
This module provides the normalized starting point: a ``Listing`` fact
table holding per-home measures and a ``Location`` dimension keyed by a
surrogate id — so examples and tests can exercise the star-join pathway
(:func:`repro.relational.join.join_star`) and verify it reconstructs the
flat ``ListProperty`` relation exactly.
"""

from __future__ import annotations

from repro.relational.join import DimensionJoin, join_star
from repro.relational.schema import Attribute, TableSchema
from repro.relational.table import Table
from repro.relational.types import AttributeKind, DataType


def location_dimension_schema() -> TableSchema:
    """The Location dimension: one row per neighborhood."""
    return TableSchema(
        "Location",
        (
            Attribute("locationid", DataType.INT, AttributeKind.CATEGORICAL,
                      nullable=False),
            Attribute("neighborhood", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("city", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("state", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("zipcode", DataType.INT, AttributeKind.CATEGORICAL),
        ),
    )


def listing_fact_schema() -> TableSchema:
    """The Listing fact table: measures plus the location foreign key."""
    return TableSchema(
        "Listing",
        (
            Attribute("locationid", DataType.INT, AttributeKind.CATEGORICAL,
                      nullable=False),
            Attribute("price", DataType.INT, AttributeKind.NUMERIC),
            Attribute("bedroomcount", DataType.INT, AttributeKind.NUMERIC),
            Attribute("bathcount", DataType.FLOAT, AttributeKind.NUMERIC),
            Attribute("yearbuilt", DataType.INT, AttributeKind.NUMERIC),
            Attribute("propertytype", DataType.TEXT, AttributeKind.CATEGORICAL),
            Attribute("squarefootage", DataType.INT, AttributeKind.NUMERIC),
        ),
    )


def normalize_homes(wide: Table) -> tuple[Table, Table]:
    """Split a flat ListProperty table into (Listing fact, Location dimension).

    Locations are keyed by neighborhood (the dataset generator assigns one
    zipcode/city/state per neighborhood, so neighborhood determines the
    rest); surrogate ids are assigned in first-appearance order, making the
    decomposition deterministic.  Both output tables are bulk-loaded and
    inherit the wide table's storage backend.
    """
    location_rows: list[dict] = []
    fact_rows: list[dict] = []
    ids_by_neighborhood: dict[str, int] = {}
    for row in wide:
        neighborhood = row["neighborhood"]
        location_id = ids_by_neighborhood.get(neighborhood)
        if location_id is None:
            location_id = len(ids_by_neighborhood) + 1
            ids_by_neighborhood[neighborhood] = location_id
            location_rows.append(
                {
                    "locationid": location_id,
                    "neighborhood": neighborhood,
                    "city": row["city"],
                    "state": row["state"],
                    "zipcode": row["zipcode"],
                }
            )
        fact_rows.append(
            {
                "locationid": location_id,
                "price": row["price"],
                "bedroomcount": row["bedroomcount"],
                "bathcount": row["bathcount"],
                "yearbuilt": row["yearbuilt"],
                "propertytype": row["propertytype"],
                "squarefootage": row["squarefootage"],
            }
        )
    backend = wide.backend_name
    fact = Table.from_rows(listing_fact_schema(), fact_rows, backend=backend)
    location = Table.from_rows(
        location_dimension_schema(), location_rows, backend=backend
    )
    return fact, location


def widen_star(fact: Table, location: Table, name: str = "ListProperty") -> Table:
    """Join the star back into the paper's wide ListProperty form."""
    return join_star(
        fact,
        [DimensionJoin(location, fact_key="locationid", dimension_key="locationid")],
        name=name,
    )
