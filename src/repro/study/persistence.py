"""Persisting study results: archive runs, detect regressions.

EXPERIMENTS.md records paper-vs-measured numbers by hand; this module
makes the measured side durable and comparable.  A study result is
flattened to a JSON document (one record per measurement), reloadable
into the same result type, and two runs can be diffed metric-by-metric
with a tolerance — the regression check a CI pipeline would run against
a committed baseline.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

from repro.study.simulated import ExplorationRecord, SimulatedStudyResult
from repro.study.userstudy import SessionRecord, UserStudyResult


# -- simulated study --------------------------------------------------------


def save_simulated_result(result: SimulatedStudyResult, path: str | Path) -> None:
    """Write a simulated-study result as JSON."""
    payload = {
        "kind": "simulated-study",
        "subset_count": result.subset_count,
        "primary_technique": result.primary_technique,
        "records": [
            {
                "subset": r.subset,
                "technique": r.technique,
                "estimated_cost": r.estimated_cost,
                "actual_cost": r.actual_cost,
                "result_size": r.result_size,
            }
            for r in result.records
        ],
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_simulated_result(path: str | Path) -> SimulatedStudyResult:
    """Reload a simulated-study result written by :func:`save_simulated_result`.

    Raises:
        ValueError: when the file holds a different result kind.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("kind") != "simulated-study":
        raise ValueError(f"{path} holds {payload.get('kind')!r}, not a simulated study")
    result = SimulatedStudyResult(
        subset_count=payload["subset_count"],
        primary_technique=payload["primary_technique"],
    )
    result.records = [ExplorationRecord(**record) for record in payload["records"]]
    return result


# -- user study ------------------------------------------------------------------


def save_userstudy_result(result: UserStudyResult, path: str | Path) -> None:
    """Write a user-study result as JSON."""
    payload = {
        "kind": "user-study",
        "task_count": result.task_count,
        "user_ids": result.user_ids,
        "records": [
            {
                "user_id": r.user_id,
                "task": r.task,
                "technique": r.technique,
                "estimated_cost": r.estimated_cost,
                "items_all": r.items_all,
                "items_one": r.items_one,
                "relevant_found": r.relevant_found,
                "relevant_total": r.relevant_total,
                "result_size": r.result_size,
                "gave_up": r.gave_up,
            }
            for r in result.records
        ],
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_userstudy_result(path: str | Path) -> UserStudyResult:
    """Reload a user-study result written by :func:`save_userstudy_result`.

    Raises:
        ValueError: when the file holds a different result kind.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("kind") != "user-study":
        raise ValueError(f"{path} holds {payload.get('kind')!r}, not a user study")
    result = UserStudyResult(
        task_count=payload["task_count"], user_ids=list(payload["user_ids"])
    )
    result.records = [SessionRecord(**record) for record in payload["records"]]
    return result


# -- regression comparison ----------------------------------------------------------


@dataclass(frozen=True)
class MetricDrift:
    """One metric that moved between a baseline and a new run."""

    metric: str
    baseline: float
    measured: float

    @property
    def relative_change(self) -> float:
        """(measured − baseline) / |baseline| (inf for a zero baseline)."""
        if self.baseline == 0:
            return math.inf if self.measured != 0 else 0.0
        return (self.measured - self.baseline) / abs(self.baseline)


def simulated_summary(result: SimulatedStudyResult) -> dict[str, float]:
    """The scalar metrics a regression check compares."""
    summary = {
        "overall_correlation": result.overall_correlation(),
        "trend_slope": result.trend_slope(),
    }
    for technique in result.techniques():
        summary[f"fraction_examined[{technique}]"] = result.mean_fraction_examined(
            technique
        )
    return summary


def compare_to_baseline(
    baseline: dict[str, float],
    measured: dict[str, float],
    tolerance: float = 0.10,
) -> list[MetricDrift]:
    """Return every metric drifting beyond ``tolerance`` (relative).

    Metrics present in only one of the two summaries always count as
    drift — silently dropping a metric is exactly the regression this
    exists to catch.

    Raises:
        ValueError: for a non-positive tolerance.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    drifted: list[MetricDrift] = []
    for metric in sorted(set(baseline) | set(measured)):
        base = baseline.get(metric, math.nan)
        new = measured.get(metric, math.nan)
        if math.isnan(base) or math.isnan(new):
            drifted.append(MetricDrift(metric, base, new))
            continue
        drift = MetricDrift(metric, base, new)
        if abs(drift.relative_change) > tolerance:
            drifted.append(drift)
    return drifted
