"""Text rendering of study outputs in the paper's table/figure format.

Every benchmark prints its reproduced rows/series through these helpers,
so the bench output reads like the paper's evaluation section and can be
diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[str],
    title: str | None = None,
    value_format: str = "{:.3f}",
) -> str:
    """Render a figure's bar series as a table: one row per x, one column per series."""
    headers = ["", *series.keys()]
    rows = []
    for i, x_label in enumerate(x_labels):
        row: list[object] = [x_label]
        for values in series.values():
            value = values[i] if i < len(values) else math.nan
            row.append(value_format.format(value) if not math.isnan(value) else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if math.isinf(value):
            return "inf"
        return f"{value:.4g}"
    return str(value)
