"""Execution-time study (Figure 13).

The paper reports the categorization algorithm's average response time for
``M`` in {10, 20, 50, 100} over 100 workload queries with an average result
size around 2000.  Absolute times are machine-dependent; the shape —
runtime decreasing as ``M`` grows (larger M means fewer levels and fewer
oversized nodes to partition) — is what the reproduction checks.

Timing is collected through :mod:`repro.perf` rather than ad-hoc
``time.perf_counter`` bookkeeping: each (M, query) categorization runs
under a per-query timer and duration histogram of a study-local
:class:`~repro.perf.Instrumentation`, so the study gets mean *and* tail
latency (p95) from the same machinery the rest of the engine uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import CategorizerConfig, PAPER_CONFIG
from repro.perf import Instrumentation
from repro.relational.table import Table
from repro.study.simulated import TechniqueFactory
from repro.workload.broadening import broaden_to_region
from repro.workload.log import Workload
from repro.workload.preprocess import preprocess_workload


@dataclass(frozen=True)
class TimingPoint:
    """Average categorization time for one value of M."""

    m: int
    queries_timed: int
    mean_seconds: float
    mean_result_size: float
    p95_seconds: float = 0.0


def run_timing_study(
    table: Table,
    workload: Workload,
    m_values: tuple[int, ...] = (10, 20, 50, 100),
    query_count: int = 100,
    seed: int = 29,
    config: CategorizerConfig = PAPER_CONFIG,
    technique: TechniqueFactory = CostBasedCategorizer,
) -> list[TimingPoint]:
    """Time the categorizer for each M over a sample of broadened queries.

    Count tables are built once (they do not depend on M); only tree
    construction is timed, matching the paper's "execution times of our
    hierarchical categorization algorithm".
    """
    statistics = preprocess_workload(workload, table.schema, config.separation_intervals)
    sampled = workload.sample(query_count, seed=seed)
    prepared = []
    for exploration in sampled:
        user_query = broaden_to_region(exploration)
        rows = user_query.query.execute(table)
        if len(rows) > 0:
            prepared.append((user_query.query, rows))

    # A study-local instrumentation keeps timing isolated from (and
    # unaffected by) the global ACTIVE registry's enabled/sampling state.
    inst = Instrumentation(enabled=True)
    points: list[TimingPoint] = []
    for m in m_values:
        m_config = config.with_overrides(max_tuples_per_category=m)
        categorizer = technique(statistics, m_config)
        timer_name = f"study.timing[m={m}]"
        for query, rows in prepared:
            with inst.timer(timer_name):
                categorizer.categorize(rows, query)
        calls, seconds = inst.timers[timer_name]
        histogram = inst.durations[timer_name]
        points.append(
            TimingPoint(
                m=m,
                queries_timed=calls,
                mean_seconds=seconds / max(1, calls),
                mean_result_size=(
                    sum(len(rows) for _, rows in prepared) / max(1, len(prepared))
                ),
                p95_seconds=histogram.quantile(0.95) if calls else 0.0,
            )
        )
    return points
