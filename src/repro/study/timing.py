"""Execution-time study (Figure 13).

The paper reports the categorization algorithm's average response time for
``M`` in {10, 20, 50, 100} over 100 workload queries with an average result
size around 2000.  Absolute times are machine-dependent; the shape —
runtime decreasing as ``M`` grows (larger M means fewer levels and fewer
oversized nodes to partition) — is what the reproduction checks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.algorithm import CostBasedCategorizer
from repro.core.config import CategorizerConfig, PAPER_CONFIG
from repro.relational.table import Table
from repro.study.simulated import TechniqueFactory
from repro.workload.broadening import broaden_to_region
from repro.workload.log import Workload
from repro.workload.preprocess import preprocess_workload


@dataclass(frozen=True)
class TimingPoint:
    """Average categorization time for one value of M."""

    m: int
    queries_timed: int
    mean_seconds: float
    mean_result_size: float


def run_timing_study(
    table: Table,
    workload: Workload,
    m_values: tuple[int, ...] = (10, 20, 50, 100),
    query_count: int = 100,
    seed: int = 29,
    config: CategorizerConfig = PAPER_CONFIG,
    technique: TechniqueFactory = CostBasedCategorizer,
) -> list[TimingPoint]:
    """Time the categorizer for each M over a sample of broadened queries.

    Count tables are built once (they do not depend on M); only tree
    construction is timed, matching the paper's "execution times of our
    hierarchical categorization algorithm".
    """
    statistics = preprocess_workload(workload, table.schema, config.separation_intervals)
    sampled = workload.sample(query_count, seed=seed)
    prepared = []
    for exploration in sampled:
        user_query = broaden_to_region(exploration)
        rows = user_query.query.execute(table)
        if len(rows) > 0:
            prepared.append((user_query.query, rows))

    points: list[TimingPoint] = []
    for m in m_values:
        m_config = config.with_overrides(max_tuples_per_category=m)
        categorizer = technique(statistics, m_config)
        started = time.perf_counter()
        for query, rows in prepared:
            categorizer.categorize(rows, query)
        elapsed = time.perf_counter() - started
        points.append(
            TimingPoint(
                m=m,
                queries_timed=len(prepared),
                mean_seconds=elapsed / max(1, len(prepared)),
                mean_result_size=(
                    sum(len(rows) for _, rows in prepared) / max(1, len(prepared))
                ),
            )
        )
    return points
