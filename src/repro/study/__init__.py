"""Experiment harness: the paper's Section 6 studies, end to end."""

from repro.study.persistence import (
    MetricDrift,
    compare_to_baseline,
    load_simulated_result,
    load_userstudy_result,
    save_simulated_result,
    save_userstudy_result,
    simulated_summary,
)
from repro.study.report import format_series, format_table
from repro.study.simulated import (
    ExplorationRecord,
    SimulatedStudyResult,
    TechniqueFactory,
    run_simulated_study,
)
from repro.study.stats import (
    bootstrap_mean_ci,
    classify_correlation,
    pearson,
    slope_through_origin,
)
from repro.study.timing import TimingPoint, run_timing_study
from repro.study.userstudy import (
    SessionRecord,
    UserStudyResult,
    paper_tasks,
    run_user_study,
)

__all__ = [
    "ExplorationRecord",
    "SessionRecord",
    "SimulatedStudyResult",
    "TechniqueFactory",
    "MetricDrift",
    "TimingPoint",
    "UserStudyResult",
    "bootstrap_mean_ci",
    "classify_correlation",
    "compare_to_baseline",
    "format_series",
    "format_table",
    "load_simulated_result",
    "load_userstudy_result",
    "paper_tasks",
    "pearson",
    "run_simulated_study",
    "run_timing_study",
    "run_user_study",
    "save_simulated_result",
    "save_userstudy_result",
    "simulated_summary",
    "slope_through_origin",
]
