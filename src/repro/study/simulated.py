"""The large-scale, simulated, cross-validated user study (Section 6.2).

Procedure, exactly as the paper describes it:

1. Draw disjoint subsets of held-out workload queries ("8 mutually
   disjoint subsets of 100 synthetic explorations each").
2. For each subset: remove its queries from the workload and build the
   count tables on the remainder (cross-validation).
3. Each held-out query W becomes a *synthetic exploration*; the user query
   Qw is obtained by broadening W (region expansion by default).
4. For each technique, generate the tree T for Qw's result set, compute
   the estimated cost ``CostAll(T)`` and the actual cost ``CostAll(W, T)``
   of replaying W on T.

Outputs feed Figure 7 (estimated-vs-actual scatter + trend slope),
Table 1 (per-subset and overall Pearson correlation) and Figure 8
(per-subset fractional cost per technique).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import perf
from repro.core.algorithm import LevelByLevelCategorizer
from repro.core.config import CategorizerConfig, PAPER_CONFIG
from repro.core.cost import CostModel
from repro.core.probability import ProbabilityEstimator
from repro.explore.exploration import replay_all
from repro.explore.metrics import fractional_cost, mean
from repro.relational.table import Table
from repro.study.stats import pearson, slope_through_origin
from repro.workload.broadening import broaden_to_region
from repro.workload.log import Workload
from repro.workload.model import WorkloadQuery
from repro.workload.preprocess import WorkloadStatistics, preprocess_workload

TechniqueFactory = Callable[[WorkloadStatistics, CategorizerConfig], LevelByLevelCategorizer]


@dataclass(frozen=True)
class ExplorationRecord:
    """One (synthetic exploration, technique) measurement."""

    subset: int
    technique: str
    estimated_cost: float
    actual_cost: float
    result_size: int

    @property
    def fractional_cost(self) -> float:
        """``CostAll(W,T) / |Result(Qw)|`` — the Figure 8 quantity."""
        return fractional_cost(self.actual_cost, self.result_size)


@dataclass
class SimulatedStudyResult:
    """All measurements of one simulated-study run."""

    records: list[ExplorationRecord] = field(default_factory=list)
    subset_count: int = 0
    primary_technique: str = "cost-based"

    # -- selection ---------------------------------------------------------------

    def for_technique(self, technique: str) -> list[ExplorationRecord]:
        """All records of one technique, across subsets."""
        return [r for r in self.records if r.technique == technique]

    def for_subset(self, subset: int, technique: str) -> list[ExplorationRecord]:
        """Records of one (subset, technique) cell."""
        return [
            r for r in self.records
            if r.subset == subset and r.technique == technique
        ]

    def techniques(self) -> list[str]:
        """Technique names present, primary first."""
        names: list[str] = []
        for record in self.records:
            if record.technique not in names:
                names.append(record.technique)
        names.sort(key=lambda n: (n != self.primary_technique, n))
        return names

    # -- Figure 7 / Table 1 -----------------------------------------------------------

    def scatter(self) -> tuple[list[float], list[float]]:
        """(estimated, actual) pairs of the primary technique (Figure 7)."""
        records = self.for_technique(self.primary_technique)
        return (
            [r.estimated_cost for r in records],
            [r.actual_cost for r in records],
        )

    def trend_slope(self) -> float:
        """Zero-intercept best-fit slope (the paper measured 1.1002)."""
        estimated, actual = self.scatter()
        return slope_through_origin(estimated, actual)

    def subset_correlation(self, subset: int) -> float:
        """Pearson r of one subset (a Table 1 row)."""
        records = self.for_subset(subset, self.primary_technique)
        return pearson(
            [r.estimated_cost for r in records],
            [r.actual_cost for r in records],
        )

    def overall_correlation(self) -> float:
        """Pearson r across all subsets (Table 1's 'All' row; paper: 0.90)."""
        estimated, actual = self.scatter()
        return pearson(estimated, actual)

    def correlation_table(self) -> list[tuple[str, float]]:
        """Table 1: one row per subset plus the overall row."""
        rows = [
            (str(subset + 1), self.subset_correlation(subset))
            for subset in range(self.subset_count)
        ]
        rows.append(("All", self.overall_correlation()))
        return rows

    # -- Figure 8 -------------------------------------------------------------------

    def fraction_examined(self, subset: int, technique: str) -> float:
        """AVG fractional cost for one (subset, technique) cell (Figure 8)."""
        return mean(r.fractional_cost for r in self.for_subset(subset, technique))

    def fraction_examined_series(self) -> dict[str, list[float]]:
        """Figure 8's bar series: technique → per-subset fractional cost."""
        return {
            technique: [
                self.fraction_examined(subset, technique)
                for subset in range(self.subset_count)
            ]
            for technique in self.techniques()
        }

    def mean_fraction_examined(self, technique: str) -> float:
        """Overall average fraction of the result set examined."""
        return mean(r.fractional_cost for r in self.for_technique(technique))


def run_simulated_study(
    table: Table,
    workload: Workload,
    techniques: Sequence[TechniqueFactory],
    config: CategorizerConfig = PAPER_CONFIG,
    subset_count: int = 8,
    subset_size: int = 100,
    seed: int = 17,
    broaden=broaden_to_region,
    min_result_size: int | None = None,
    eligible: Callable[[WorkloadQuery], bool] | None = None,
) -> SimulatedStudyResult:
    """Run the full cross-validated simulated study.

    Args:
        table: the (synthetic) ListProperty relation.
        workload: the full query log; held-out subsets are drawn from it.
        techniques: factories building each categorizer from (statistics,
            config); the first is the primary (cost-based) technique.
        config: categorizer configuration (M, K, x, ...).
        subset_count, subset_size: the paper uses 8 x 100.
        seed: determinism for the subset draw.
        broaden: the W → Qw broadening strategy (Section 6.2).
        min_result_size: explorations whose broadened result is smaller
            than this are skipped (a tree over < M tuples is trivial);
            defaults to ``config.max_tuples_per_category``.
        eligible: a filter on which workload queries may serve as synthetic
            explorations.  Defaults to queries with a neighborhood
            condition — the paper's broadening "expand[s] the set of
            neighborhoods in W", which presumes one exists.  Statistics are
            still built from the *whole* remaining workload.
    """
    if not techniques:
        raise ValueError("at least one technique is required")
    minimum = (
        config.max_tuples_per_category if min_result_size is None else min_result_size
    )
    if eligible is None:
        eligible = _default_eligible
    with perf.span("study.simulated"):
        candidates = workload.filter(eligible)
        subsets = candidates.disjoint_subsets(subset_count, subset_size, seed=seed)
        result = SimulatedStudyResult(subset_count=subset_count)

        for subset_index, held_out in enumerate(subsets):
            with perf.span("study.subset"):
                remaining = workload.without(held_out)
                statistics = preprocess_workload(
                    remaining, table.schema, config.separation_intervals
                )
                categorizers = [factory(statistics, config) for factory in techniques]
                if subset_index == 0:
                    result.primary_technique = categorizers[0].name
                cost_model = CostModel(ProbabilityEstimator(statistics), config)
                for exploration in held_out:
                    _run_exploration(
                        exploration,
                        table,
                        categorizers,
                        cost_model,
                        config,
                        subset_index,
                        minimum,
                        broaden,
                        result,
                    )
        return result


def _default_eligible(query: WorkloadQuery) -> bool:
    """Default synthetic-exploration eligibility: neighborhood-anchored,
    multi-condition searches (the explorations Section 6.2 replays)."""
    return query.constrains("neighborhood") and len(query.conditions) >= 2


def _run_exploration(
    exploration: WorkloadQuery,
    table: Table,
    categorizers: list[LevelByLevelCategorizer],
    cost_model: CostModel,
    config: CategorizerConfig,
    subset_index: int,
    min_result_size: int,
    broaden,
    result: SimulatedStudyResult,
) -> None:
    """Measure one synthetic exploration under every technique."""
    user_query = broaden(exploration)
    rows = user_query.query.execute(table)
    if len(rows) < min_result_size:
        perf.count("study.explorations_skipped")
        return
    with perf.span("study.exploration"):
        for categorizer in categorizers:
            tree = categorizer.categorize(rows, user_query.query)
            estimated = cost_model.tree_cost_all(tree)
            actual = replay_all(tree, exploration, label_cost=config.label_cost)
            result.records.append(
                ExplorationRecord(
                    subset=subset_index,
                    technique=categorizer.name,
                    estimated_cost=estimated,
                    actual_cost=actual.items_examined,
                    result_size=len(rows),
                )
            )
