"""The real-life user study, simulated (Section 6.3).

Reproduces the study's design exactly, with :class:`SimulatedUser`
subjects standing in for the 11 human ones:

* the paper's 4 search tasks over the same three regions;
* 3 techniques per task, assignments satisfying the paper's constraints
  (no subject repeats a task; techniques vary within a subject; every
  task-technique combination is performed by at least 2 subjects);
* measurements: items examined until all relevant tuples found (Figure 9),
  relevant tuples found (Figure 10), normalized cost (Figure 11), items
  until the first relevant tuple (Figure 12), per-user estimated-vs-actual
  correlation (Table 2), cost vs no categorization (Table 3), and the
  exit survey (Table 4, derived as each subject's best-normalized-cost
  technique).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.algorithm import LevelByLevelCategorizer
from repro.core.config import CategorizerConfig, PAPER_CONFIG
from repro.core.cost import CostModel
from repro.core.probability import ProbabilityEstimator
from repro.core.tree import CategoryTree
from repro.data.geography import BAY_AREA, NYC, SEATTLE_BELLEVUE
from repro.explore.metrics import mean, mean_finite, normalized_cost
from repro.explore.user import SimulatedUser, UserBehavior, derive_preference
from repro.relational.expressions import Conjunction, InPredicate, RangePredicate
from repro.relational.query import SelectQuery
from repro.relational.table import Table
from repro.study.simulated import TechniqueFactory
from repro.study.stats import pearson
from repro.workload.log import Workload
from repro.workload.preprocess import preprocess_workload


def paper_tasks(table_name: str = "ListProperty") -> list[SelectQuery]:
    """The four search tasks of Section 6.3, as queries over our geography.

    1. Any neighborhood in Seattle/Bellevue, price < 1M.
    2. Any neighborhood in Bay Area - Penin/SanJose, price 300K-500K.
    3. 15 selected neighborhoods in NYC - Manhattan/Bronx, price < 1M.
    4. Any neighborhood in Seattle/Bellevue, price 200K-400K, 3-4 bedrooms.
    """
    nyc_hoods = NYC.neighborhood_names()[:15]
    return [
        SelectQuery(table_name, Conjunction([
            InPredicate("neighborhood", SEATTLE_BELLEVUE.neighborhood_names()),
            RangePredicate("price", 0, 1_000_000, high_inclusive=False),
        ])),
        SelectQuery(table_name, Conjunction([
            InPredicate("neighborhood", BAY_AREA.neighborhood_names()),
            RangePredicate("price", 300_000, 500_000),
        ])),
        SelectQuery(table_name, Conjunction([
            InPredicate("neighborhood", nyc_hoods),
            RangePredicate("price", 0, 1_000_000, high_inclusive=False),
        ])),
        SelectQuery(table_name, Conjunction([
            InPredicate("neighborhood", SEATTLE_BELLEVUE.neighborhood_names()),
            RangePredicate("price", 200_000, 400_000),
            RangePredicate("bedroomcount", 3, 4),
        ])),
    ]


@dataclass(frozen=True)
class SessionRecord:
    """One (subject, task, technique) exploration's measurements."""

    user_id: str
    task: int
    technique: str
    estimated_cost: float
    items_all: float
    items_one: float
    relevant_found: int
    relevant_total: int
    result_size: int
    gave_up: bool

    @property
    def normalized_cost(self) -> float:
        """Items examined per relevant tuple found (Figure 11)."""
        return normalized_cost(self.items_all, self.relevant_found)


@dataclass
class UserStudyResult:
    """All session records plus the derived tables and figures."""

    records: list[SessionRecord] = field(default_factory=list)
    task_count: int = 4
    user_ids: list[str] = field(default_factory=list)

    # -- selection -------------------------------------------------------------

    def techniques(self) -> list[str]:
        names: list[str] = []
        for record in self.records:
            if record.technique not in names:
                names.append(record.technique)
        return names

    def cell(self, task: int, technique: str) -> list[SessionRecord]:
        """All sessions of one (task, technique) combination."""
        return [
            r for r in self.records if r.task == task and r.technique == technique
        ]

    def for_user(self, user_id: str) -> list[SessionRecord]:
        return [r for r in self.records if r.user_id == user_id]

    # -- Table 2 -----------------------------------------------------------------

    def user_correlation(self, user_id: str) -> float:
        """Pearson r between estimated and actual cost for one subject."""
        sessions = self.for_user(user_id)
        return pearson(
            [s.estimated_cost for s in sessions],
            [s.items_all for s in sessions],
        )

    def correlation_table(self) -> list[tuple[str, float]]:
        """Table 2: per-user correlation plus the average row."""
        rows = [(uid, self.user_correlation(uid)) for uid in self.user_ids]
        finite = [r for _, r in rows if not math.isnan(r)]
        rows.append(("average", mean(finite)))
        return rows

    # -- Figures 9-12 ----------------------------------------------------------------

    def average_cost_all(self, task: int, technique: str) -> float:
        """Figure 9: mean items examined until all relevant tuples found."""
        return mean(s.items_all for s in self.cell(task, technique))

    def average_relevant_found(self, task: int, technique: str) -> float:
        """Figure 10: mean relevant tuples found."""
        return mean(float(s.relevant_found) for s in self.cell(task, technique))

    def average_normalized_cost(self, task: int, technique: str) -> float:
        """Figure 11: mean items-per-relevant-tuple (finite sessions)."""
        return mean_finite(s.normalized_cost for s in self.cell(task, technique))

    def average_cost_one(self, task: int, technique: str) -> float:
        """Figure 12: mean items examined until the first relevant tuple."""
        return mean(s.items_one for s in self.cell(task, technique))

    def figure_series(self, metric: str) -> dict[str, list[float]]:
        """A figure's bar series: technique → per-task averages.

        ``metric`` is one of 'cost_all', 'relevant_found',
        'normalized_cost', 'cost_one'.
        """
        accessor = {
            "cost_all": self.average_cost_all,
            "relevant_found": self.average_relevant_found,
            "normalized_cost": self.average_normalized_cost,
            "cost_one": self.average_cost_one,
        }[metric]
        return {
            technique: [accessor(task, technique) for task in range(self.task_count)]
            for technique in self.techniques()
        }

    # -- Table 3 ---------------------------------------------------------------------

    def vs_no_categorization(self, primary: str = "cost-based") -> list[tuple[int, float, int]]:
        """Table 3: (task, primary technique's normalized cost, |result set|).

        The paper compares the cost-based per-relevant-tuple cost against
        the result-set size, "which is the cost if no categorization is
        used".
        """
        rows: list[tuple[int, float, int]] = []
        for task in range(self.task_count):
            sessions = self.cell(task, primary)
            if not sessions:
                continue
            rows.append((
                task + 1,
                mean_finite(s.normalized_cost for s in sessions),
                sessions[0].result_size,
            ))
        return rows

    # -- Table 4 ----------------------------------------------------------------------

    def survey(self) -> dict[str, int]:
        """Table 4: votes for the technique that 'worked best' per subject.

        A subject votes for the technique with the lowest average
        normalized cost among those she tried; subjects who found nothing
        relevant anywhere abstain ("did not respond").
        """
        votes = {technique: 0 for technique in self.techniques()}
        votes["did-not-respond"] = 0
        for user_id in self.user_ids:
            best_technique, best_score = None, math.inf
            by_technique: dict[str, list[float]] = {}
            for session in self.for_user(user_id):
                by_technique.setdefault(session.technique, []).append(
                    session.normalized_cost
                )
            for technique, scores in by_technique.items():
                score = mean_finite(scores)
                if not math.isnan(score) and score < best_score:
                    best_technique, best_score = technique, score
            if best_technique is None:
                votes["did-not-respond"] += 1
            else:
                votes[best_technique] += 1
        return votes


def run_user_study(
    table: Table,
    workload: Workload,
    techniques: Sequence[TechniqueFactory],
    config: CategorizerConfig = PAPER_CONFIG,
    subject_count: int = 11,
    seed: int = 23,
    tasks: Sequence[SelectQuery] | None = None,
) -> UserStudyResult:
    """Run the simulated real-life study end to end.

    Assignment scheme: subject ``u`` performs every task ``t`` with
    technique ``(t + u) mod #techniques`` — a cyclic design guaranteeing
    the paper's three constraints for any subject count >= 2·#techniques.
    """
    if not techniques:
        raise ValueError("at least one technique is required")
    statistics = preprocess_workload(workload, table.schema, config.separation_intervals)
    categorizers = [factory(statistics, config) for factory in techniques]
    cost_model = CostModel(ProbabilityEstimator(statistics), config)
    task_queries = list(tasks if tasks is not None else paper_tasks(table.schema.name))

    # Build each (task, technique) tree once; all subjects explore the same
    # tree, exactly as in the paper's web interface.
    trees: dict[tuple[int, str], CategoryTree] = {}
    estimated: dict[tuple[int, str], float] = {}
    result_sizes: dict[int, int] = {}
    for task_index, task_query in enumerate(task_queries):
        rows = task_query.execute(table)
        result_sizes[task_index] = len(rows)
        for categorizer in categorizers:
            tree = categorizer.categorize(rows, task_query)
            trees[(task_index, categorizer.name)] = tree
            estimated[(task_index, categorizer.name)] = cost_model.tree_cost_all(tree)

    rng = random.Random(seed)
    result = UserStudyResult(task_count=len(task_queries))
    technique_names = [c.name for c in categorizers]

    for user_index in range(subject_count):
        user_id = f"U{user_index + 1}"
        result.user_ids.append(user_id)
        behavior = UserBehavior(
            sensitivity=rng.uniform(0.75, 0.98),
            label_error=rng.uniform(0.02, 0.12),
            recognition=rng.uniform(0.85, 1.0),
            patience=rng.randint(1500, 4000),
        )
        for task_index in range(len(task_queries)):
            technique = technique_names[(task_index + user_index) % len(technique_names)]
            preference = derive_preference(
                task_queries[task_index],
                random.Random(f"{seed}|{user_index}|{task_index}"),
                table_name=table.schema.name,
            )
            user = SimulatedUser(
                user_id,
                preference,
                behavior=behavior,
                seed=seed * 1000 + user_index * 10 + task_index,
            )
            tree = trees[(task_index, technique)]
            session_all = user.explore_all(tree, label_cost=config.label_cost)
            session_one = user.explore_one(tree, label_cost=config.label_cost)
            result.records.append(
                SessionRecord(
                    user_id=user_id,
                    task=task_index,
                    technique=technique,
                    estimated_cost=estimated[(task_index, technique)],
                    items_all=session_all.items_examined,
                    items_one=session_one.items_examined,
                    relevant_found=session_all.relevant_found,
                    relevant_total=user.relevant_in(tree),
                    result_size=result_sizes[task_index],
                    gave_up=session_all.exhausted_patience,
                )
            )
    return result
