"""Statistics helpers for the experimental studies.

The paper reports Pearson correlation coefficients (Table 1, Table 2) and
a zero-intercept linear trend line ("best linear fit with intercept 0 is
y = 1.1002x", Figure 7).  Both are implemented here from first principles
— no external stats dependency — with the edge cases the studies actually
hit (constant series, empty input) handled explicitly.
"""

from __future__ import annotations

import math
from typing import Sequence


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient between two aligned series.

    Returns NaN when either series is constant or shorter than two points
    (the coefficient is undefined there), rather than raising — study code
    aggregates over many users, some of whom may have degenerate sessions.

    Raises:
        ValueError: if the series lengths differ.
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    n = len(xs)
    if n < 2:
        return math.nan
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return math.nan
    return cov / math.sqrt(var_x * var_y)


def slope_through_origin(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``y = b·x`` (intercept fixed at 0).

    The closed form is ``b = Σxy / Σx²`` — the trend line of Figure 7.

    Raises:
        ValueError: on length mismatch or an all-zero x series.
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    denominator = sum(x * x for x in xs)
    if denominator == 0:
        raise ValueError("slope through origin undefined for all-zero x")
    return sum(x * y for x, y in zip(xs, ys)) / denominator


def bootstrap_mean_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2_000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean.

    The user-study cells average a handful of stochastic sessions; a CI
    makes the technique comparisons honest about that noise.  Deterministic
    under ``seed``.

    Raises:
        ValueError: for empty input or a confidence outside (0, 1).
    """
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    import random

    rng = random.Random(seed)
    n = len(values)
    means = sorted(
        sum(rng.choice(values) for _ in range(n)) / n for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lower = means[max(0, int(alpha * resamples))]
    upper = means[min(resamples - 1, int((1.0 - alpha) * resamples))]
    return lower, upper


def classify_correlation(r: float) -> str:
    """The paper's verbal bands: weak (0.2-0.6) / strong (0.6-1.0) positive."""
    if math.isnan(r):
        return "undefined"
    if r >= 0.6:
        return "strong positive"
    if r >= 0.2:
        return "weak positive"
    if r > -0.2:
        return "negligible"
    return "negative"
