"""repro: a reproduction of "Automatic Categorization of Query Results"
(Chakrabarti, Chaudhuri, Hwang — SIGMOD 2004).

Quickstart::

    from repro import (
        generate_homes, build_paper_scale_workload, preprocess_workload,
        CostBasedCategorizer, PAPER_CONFIG, render_tree,
    )
    from repro.sql import parse_query

    homes = generate_homes(rows=20_000)
    workload = build_paper_scale_workload()
    stats = preprocess_workload(workload, homes.schema,
                                PAPER_CONFIG.separation_intervals)
    query = parse_query(
        "SELECT * FROM ListProperty WHERE city IN ('Seattle', 'Bellevue') "
        "AND price BETWEEN 200000 AND 300000")
    tree = CostBasedCategorizer(stats).categorize(query.execute(homes), query)
    print(render_tree(tree, max_depth=2, max_children=5))

Subpackages:

* :mod:`repro.core` — the paper's contribution: cost models, partitioning
  heuristics, the level-by-level categorization algorithm, baselines.
* :mod:`repro.relational` — in-memory relational engine (tables, predicates,
  SPJ queries).
* :mod:`repro.sql` — SQL dialect for workload logs.
* :mod:`repro.data` — synthetic MSN House&Home stand-in dataset.
* :mod:`repro.workload` — query-log handling, count tables, generation.
* :mod:`repro.explore` — exploration simulation (synthetic replay + users).
* :mod:`repro.study` — the Section 6 experiment harness.
* :mod:`repro.render` — ASCII treeview.
"""

from repro.core import (
    AttrCostCategorizer,
    CategorizerConfig,
    CategoryTree,
    CostBasedCategorizer,
    CostModel,
    NoCostCategorizer,
    PAPER_CONFIG,
    ProbabilityEstimator,
)
from repro.data import generate_homes, list_property_schema
from repro.render import render_tree, summarize_tree
from repro.workload import (
    Workload,
    build_paper_scale_workload,
    generate_workload,
    preprocess_workload,
)

__version__ = "1.0.0"

__all__ = [
    "AttrCostCategorizer",
    "CategorizerConfig",
    "CategoryTree",
    "CostBasedCategorizer",
    "CostModel",
    "NoCostCategorizer",
    "PAPER_CONFIG",
    "ProbabilityEstimator",
    "Workload",
    "__version__",
    "build_paper_scale_workload",
    "generate_homes",
    "generate_workload",
    "list_property_schema",
    "preprocess_workload",
    "render_tree",
    "summarize_tree",
]
