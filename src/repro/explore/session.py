"""Recorded exploration sessions.

The user study records "the click/expand/collapse operations on the
treeview nodes and the clicks on the data tuples" (Section 6.3).  An
:class:`ExplorationSession` is that record for one (user, tree)
exploration: every operation, every item examined, every relevant tuple
found — the raw material all study measurements derive from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class Operation(enum.Enum):
    """Treeview operations a user can perform."""

    EXAMINE_LABEL = "examine-label"
    EXPAND = "expand"  # SHOWCAT on a node
    SHOW_TUPLES = "show-tuples"  # SHOWTUPLES on a node
    EXAMINE_TUPLE = "examine-tuple"
    MARK_RELEVANT = "mark-relevant"  # click on a relevant tuple
    IGNORE = "ignore"  # deliberately skip a category


@dataclass(frozen=True)
class SessionEvent:
    """One logged operation, with the node/tuple it applied to."""

    operation: Operation
    target: str
    detail: Any = None


@dataclass
class ExplorationSession:
    """The full record of one exploration.

    Costs follow the paper's accounting: "examining a node means reading
    its label while examining a tuple means reading all the fields in the
    tuple" (Example 3.1); a label costs ``label_cost`` (K) items and a
    tuple costs 1.
    """

    label_cost: float = 1.0
    events: list[SessionEvent] = field(default_factory=list)
    labels_examined: int = 0
    tuples_examined: int = 0
    relevant_found: int = 0
    exhausted_patience: bool = False

    @property
    def items_examined(self) -> float:
        """Total information-overload cost: K·labels + tuples."""
        return self.label_cost * self.labels_examined + self.tuples_examined

    def examine_label(self, node_name: str) -> None:
        """Record reading one category label."""
        self.labels_examined += 1
        self.events.append(SessionEvent(Operation.EXAMINE_LABEL, node_name))

    def expand(self, node_name: str) -> None:
        """Record a SHOWCAT (expand) on a node."""
        self.events.append(SessionEvent(Operation.EXPAND, node_name))

    def show_tuples(self, node_name: str) -> None:
        """Record a SHOWTUPLES on a node."""
        self.events.append(SessionEvent(Operation.SHOW_TUPLES, node_name))

    def ignore(self, node_name: str) -> None:
        """Record deliberately skipping a category after reading its label."""
        self.events.append(SessionEvent(Operation.IGNORE, node_name))

    def examine_tuple(self, relevant: bool, detail: Any = None) -> None:
        """Record reading one data tuple, marking it if relevant."""
        self.tuples_examined += 1
        self.events.append(SessionEvent(Operation.EXAMINE_TUPLE, "tuple", detail))
        if relevant:
            self.relevant_found += 1
            self.events.append(SessionEvent(Operation.MARK_RELEVANT, "tuple", detail))

    def give_up(self) -> None:
        """Record that the user ran out of patience mid-exploration."""
        self.exhausted_patience = True
