"""Derived exploration metrics (Section 6's measurement vocabulary).

* **fractional cost** — ``CostAll(W,T) / |Result(Qw)|``, "to be able to
  average it across different queries (with different result set sizes)
  meaningfully" (Figure 8);
* **normalized cost** — items examined per relevant tuple found
  (Figure 11), the paper's fairest cross-technique comparison.
"""

from __future__ import annotations

import math
from typing import Iterable


def fractional_cost(items_examined: float, result_size: int) -> float:
    """``items examined / |result set|``; 0-result queries cost nothing."""
    if result_size <= 0:
        return 0.0
    return items_examined / result_size


def normalized_cost(items_examined: float, relevant_found: int) -> float:
    """Items examined per relevant tuple found (Figure 11).

    Infinite when nothing relevant was found — the exploration bought no
    value at any price; callers typically filter or cap these.
    """
    if relevant_found <= 0:
        return math.inf
    return items_examined / relevant_found


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; NaN for an empty input (distinguishable from 0)."""
    collected = list(values)
    if not collected:
        return math.nan
    return sum(collected) / len(collected)


def mean_finite(values: Iterable[float]) -> float:
    """Mean over the finite entries only (drops the found-nothing sessions)."""
    return mean(v for v in values if math.isfinite(v))
