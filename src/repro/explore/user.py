"""Simulated users: the stand-in for the paper's 11 human subjects.

The real-life study (Section 6.3) measured humans exploring trees through
a treeview UI.  A :class:`SimulatedUser` reproduces the measurement
structure: she has a *hidden relevance predicate* (the homes she would
actually click), attribute sensitivities driving her SHOWTUPLES/SHOWCAT
choices, imperfect judgement (she sometimes drills into an unpromising
category or skips a promising one), imperfect recognition (she can scroll
past a relevant home), and finite *patience* — after examining too many
items she gives up.

Patience is the mechanism behind the paper's Figure 10 observation that
users *found 3-5x more relevant tuples* with cost-based trees: a bad tree
exhausts the user before she reaches the relevant items.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.tree import CategoryNode, CategoryTree
from repro.explore.session import ExplorationSession
from repro.relational.expressions import InPredicate, RangePredicate
from repro.relational.query import SelectQuery
from repro.workload.model import WorkloadQuery


@dataclass(frozen=True)
class UserBehavior:
    """Behavioral parameters of a simulated user.

    Attributes:
        sensitivity: probability of choosing SHOWCAT at a node whose
            subcategorizing attribute the user cares about (has a condition
            on); otherwise she browses tuples.
        label_error: probability of misjudging one category label —
            exploring an unpromising category or ignoring a promising one.
        recognition: probability of recognizing a relevant tuple when she
            examines it.
        patience: maximum number of items (labels + tuples) she will
            examine before giving up.
    """

    sensitivity: float = 0.9
    label_error: float = 0.05
    recognition: float = 0.95
    patience: int = 2500

    def __post_init__(self) -> None:
        for name in ("sensitivity", "label_error", "recognition"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")


class SimulatedUser:
    """One subject: a hidden preference plus stochastic treeview behavior."""

    def __init__(
        self,
        user_id: str,
        preference: WorkloadQuery,
        behavior: UserBehavior | None = None,
        seed: int = 0,
    ) -> None:
        self.user_id = user_id
        self.preference = preference
        self.behavior = behavior or UserBehavior()
        self._seed = seed

    # -- relevance ---------------------------------------------------------------

    def is_relevant(self, row) -> bool:
        """Ground truth: does this tuple satisfy the hidden preference?"""
        return all(
            condition.matches(row) for condition in self.preference.conditions.values()
        )

    def relevant_in(self, tree: CategoryTree) -> int:
        """Number of relevant tuples in the whole result set."""
        return sum(1 for row in tree.root.rows if self.is_relevant(row))

    # -- exploration -----------------------------------------------------------------

    def explore_all(self, tree: CategoryTree, label_cost: float = 1.0) -> ExplorationSession:
        """Explore until every relevant tuple is found or patience runs out.

        Implements Figure 2 with this user's stochastic choices.  A fresh
        PRNG seeded from (user seed, tree identity) makes each session
        reproducible independently of call order.
        """
        rng = random.Random(f"{self._seed}|{tree.technique}|{tree.result_size}|all")
        session = ExplorationSession(label_cost=label_cost)
        self._explore(tree.root, rng, session, stop_at_first=False)
        return session

    def explore_one(self, tree: CategoryTree, label_cost: float = 1.0) -> ExplorationSession:
        """Explore until the first relevant tuple is found (Figure 3)."""
        rng = random.Random(f"{self._seed}|{tree.technique}|{tree.result_size}|one")
        session = ExplorationSession(label_cost=label_cost)
        self._explore(tree.root, rng, session, stop_at_first=True)
        return session

    # -- internals ------------------------------------------------------------------

    def _explore(
        self,
        node: CategoryNode,
        rng: random.Random,
        session: ExplorationSession,
        stop_at_first: bool,
    ) -> bool:
        """Explore a subtree; returns True if exploration should stop entirely."""
        if self._out_of_patience(session):
            session.give_up()
            return True
        if self._chooses_showtuples(node, rng):
            return self._browse_tuples(node, rng, session, stop_at_first)
        session.expand(node.display())
        for child in node.children:
            if self._out_of_patience(session):
                session.give_up()
                return True
            session.examine_label(child.display())
            if self._judges_promising(child, rng):
                if self._explore(child, rng, session, stop_at_first):
                    return True
                if stop_at_first and session.relevant_found > 0:
                    # Figure 3: once a drilled category yields a relevant
                    # tuple, the remaining sibling labels are not examined.
                    return True
            else:
                session.ignore(child.display())
        return False

    def _browse_tuples(
        self,
        node: CategoryNode,
        rng: random.Random,
        session: ExplorationSession,
        stop_at_first: bool,
    ) -> bool:
        session.show_tuples(node.display())
        for row in node.rows:
            if self._out_of_patience(session):
                session.give_up()
                return True
            relevant = self.is_relevant(row) and rng.random() < self.behavior.recognition
            session.examine_tuple(relevant, detail=row.index)
            if relevant and stop_at_first:
                return True
        return False

    def _chooses_showtuples(self, node: CategoryNode, rng: random.Random) -> bool:
        """The SHOWTUPLES/SHOWCAT decision of Section 3.2, stochastically."""
        if node.is_leaf:
            return True
        assert node.child_attribute is not None
        cares = self.preference.constrains(node.child_attribute)
        if cares:
            return rng.random() >= self.behavior.sensitivity
        return True

    def _judges_promising(self, node: CategoryNode, rng: random.Random) -> bool:
        """Label judgement: overlap with the preference, with error rate."""
        condition = self.preference.conditions.get(node.label.attribute)
        promising = node.label.overlaps_condition(condition)
        if rng.random() < self.behavior.label_error:
            return not promising
        return promising

    def _out_of_patience(self, session: ExplorationSession) -> bool:
        return session.items_examined >= self.behavior.patience


def derive_preference(
    task: SelectQuery, rng: random.Random, table_name: str = "ListProperty"
) -> WorkloadQuery:
    """Derive a hidden relevance predicate by narrowing a task query.

    The subjects of Section 6.3 were given broad tasks ("find interesting
    homes in Seattle/Bellevue under 1M") but each had personal, narrower
    criteria.  The derivation keeps the task's conditions and tightens
    them: a small subset of the task's neighborhoods, usually a sub-range
    of the price band, and usually a bedroom-count requirement.

    Attribute inclusion rates mirror the workload's usage fractions
    (:data:`repro.workload.generator.DEFAULT_ATTRIBUTE_USAGE`) — the
    paper's subjects are drawn from the same user population whose logged
    queries train the estimator, and the measurements only reward the
    workload-driven technique if the simulated subjects are too.
    """
    conditions = task.conditions()
    parts = []

    hoods = conditions.get("neighborhood")
    if isinstance(hoods, InPredicate):
        pool = sorted(hoods.values)
        keep = rng.randint(1, min(3, len(pool)))
        parts.append(InPredicate("neighborhood", _sample_neighborhoods(rng, pool, keep)))

    price = conditions.get("price")
    if isinstance(price, RangePredicate) and rng.random() < 0.6:
        low = 0.0 if price.low == float("-inf") else price.low
        high = price.high if price.high != float("inf") else 1_500_000.0
        span = high - low
        width = span * rng.uniform(0.25, 0.5)
        start = low + rng.uniform(0.0, span - width)
        step = 25_000
        narrowed_low = max(low, round(start / step) * step)
        narrowed_high = min(high, narrowed_low + max(step, round(width / step) * step))
        parts.append(RangePredicate("price", narrowed_low, narrowed_high))

    bedrooms = conditions.get("bedroomcount")
    if isinstance(bedrooms, RangePredicate):
        parts.append(bedrooms)
    elif rng.random() < 0.65:
        wanted = rng.choice((2, 3, 3, 4))
        parts.append(RangePredicate("bedroomcount", wanted, wanted + 1))

    if rng.random() < 0.45:
        parts.append(InPredicate("propertytype", ("Single Family Home",)))

    if rng.random() < 0.4:
        floor = rng.choice((1_000, 1_500, 2_000))
        parts.append(RangePredicate("squarefootage", floor, floor + 1_500))

    from repro.relational.expressions import Conjunction  # local to avoid cycle noise

    query = SelectQuery(table_name=table_name, predicate=Conjunction(parts))
    return WorkloadQuery.from_query(query)


def _sample_neighborhoods(
    rng: random.Random, pool: list[str], keep: int
) -> list[str]:
    """Sample preferred neighborhoods proportionally to their popularity.

    The paper assumes "individual users conform to the previous behavior
    captured by the workload" (footnote 4); the workload generator weights
    neighborhood interest by desirability, so the subjects must too —
    uniform sampling would describe a user population the estimator was
    never trained on.  Neighborhoods outside the known geography (custom
    datasets) fall back to weight 1.
    """
    from repro.data.geography import ALL_REGIONS

    weights_by_name = {
        hood.name: (hood.weight * hood.price_factor) ** 2
        for region in ALL_REGIONS
        for hood in region.neighborhoods
    }
    remaining = [(name, weights_by_name.get(name, 1.0)) for name in pool]
    chosen: list[str] = []
    for _ in range(min(keep, len(remaining))):
        total = sum(w for _, w in remaining)
        roll = rng.random() * total
        cumulative = 0.0
        picked = remaining[-1][0]
        for name, weight in remaining:
            cumulative += weight
            if roll < cumulative:
                picked = name
                break
        chosen.append(picked)
        remaining = [(n, w) for n, w in remaining if n != picked]
    return chosen
