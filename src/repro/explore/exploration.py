"""Synthetic exploration replay (Section 6.2).

The simulated study "imagines" a held-out workload query W as a user
exploration: the user "drills down into those categories of the category
tree T that satisfy the selection conditions in W and ignores the rest",
and the actual cost ``CostAll(W, T)`` is "the actual number of items
examined by the user during the synthetic exploration W using T".

The SHOWTUPLES/SHOWCAT choice is resolved exactly as the estimator's own
semantics predict a W-shaped user behaves (Section 4.2): at a non-leaf
node, the user does SHOWCAT iff W has a selection condition on the node's
subcategorizing attribute (she is interested in only a few of its values);
otherwise she is interested in all values and browses the tuples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import perf
from repro.core.tree import CategoryNode, CategoryTree
from repro.workload.model import WorkloadQuery


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one synthetic exploration."""

    labels_examined: int
    tuples_examined: int
    found_relevant: bool
    label_cost: float = 1.0
    relevant_found: int = 0

    @property
    def items_examined(self) -> float:
        """Actual cost: K·labels + tuples (Example 4.1's accounting)."""
        return self.label_cost * self.labels_examined + self.tuples_examined


def replay_all(
    tree: CategoryTree, exploration: WorkloadQuery, label_cost: float = 1.0
) -> ReplayResult:
    """Replay W in the ALL scenario; returns the actual CostAll(W, T).

    The user examines every subcategory label of every expanded node,
    drills into exactly the categories whose label overlaps W's condition
    on the label's attribute, and examines all tuples of nodes she
    SHOWTUPLES (Figure 2 with W-determined choices).
    """
    with perf.span("explore.replay"):
        perf.count("explore.replays", scenario="all")
        labels = 0
        tuples = 0
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if _does_showtuples(node, exploration):
                tuples += node.tuple_count
                continue
            labels += len(node.children)
            for child in node.children:
                condition = exploration.conditions.get(child.label.attribute)
                if child.label.overlaps_condition(condition):
                    stack.append(child)
        return ReplayResult(
            labels_examined=labels,
            tuples_examined=tuples,
            found_relevant=True,
            label_cost=label_cost,
        )


def replay_one(
    tree: CategoryTree, exploration: WorkloadQuery, label_cost: float = 1.0
) -> ReplayResult:
    """Replay W in the ONE scenario; returns the actual CostOne(W, T).

    Figure 3 with W-determined choices: labels are examined top-down until
    the first overlapping category, which is explored recursively; tuple
    scans stop at the first tuple satisfying W.  Unlike the model's
    assumption, a drilled-into category may contain no W-satisfying tuple
    (the tree's buckets are coarser than W); the replay then resumes with
    the next sibling, still counting everything examined.
    """
    with perf.span("explore.replay"):
        perf.count("explore.replays", scenario="one")
        counter = _Counter()
        _explore_one(tree.root, exploration, counter)
    return ReplayResult(
        labels_examined=counter.labels,
        tuples_examined=counter.tuples,
        found_relevant=counter.found,
        label_cost=label_cost,
    )


class _Counter:
    """Mutable tally shared by the ONE-scenario recursion."""

    __slots__ = ("labels", "tuples", "found")

    def __init__(self) -> None:
        self.labels = 0
        self.tuples = 0
        self.found = False


def _explore_one(
    node: CategoryNode, exploration: WorkloadQuery, counter: _Counter
) -> None:
    if _does_showtuples(node, exploration):
        for row in node.rows:
            counter.tuples += 1
            if _row_matches(row, exploration):
                counter.found = True
                return
        return
    for child in node.children:
        counter.labels += 1
        condition = exploration.conditions.get(child.label.attribute)
        if child.label.overlaps_condition(condition):
            _explore_one(child, exploration, counter)
            if counter.found:
                return


def replay_few(
    tree: CategoryTree,
    exploration: WorkloadQuery,
    k: int,
    label_cost: float = 1.0,
) -> ReplayResult:
    """Replay W in the FEW scenario: stop after ``k`` relevant tuples.

    The paper models the two ends of the spectrum — ONE and ALL — and
    notes "other scenarios (e.g., user interested in two/few tuples) fall
    in between these two ends" (Section 3.2).  This replay realizes the
    intermediate scenarios: Figure 3's exploration, but the user keeps
    going (next tuples, next sibling labels) until ``k`` relevant tuples
    are found or the reachable space is exhausted.

    ``replay_few(T, W, 1)`` coincides with :func:`replay_one`;
    as ``k`` grows past the number of relevant tuples it coincides with
    :func:`replay_all` (the user ends up examining everything she would
    have).

    Raises:
        ValueError: for ``k < 1``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    with perf.span("explore.replay"):
        perf.count("explore.replays", scenario="few")
        counter = _FewCounter(target=k)
        _explore_few(tree.root, exploration, counter)
    return ReplayResult(
        labels_examined=counter.labels,
        tuples_examined=counter.tuples,
        found_relevant=counter.found > 0,
        label_cost=label_cost,
        relevant_found=counter.found,
    )


class _FewCounter:
    """Mutable tally for the FEW-scenario recursion."""

    __slots__ = ("labels", "tuples", "found", "target")

    def __init__(self, target: int) -> None:
        self.labels = 0
        self.tuples = 0
        self.found = 0
        self.target = target

    @property
    def satisfied(self) -> bool:
        return self.found >= self.target


def _explore_few(
    node: CategoryNode, exploration: WorkloadQuery, counter: _FewCounter
) -> None:
    if _does_showtuples(node, exploration):
        for row in node.rows:
            counter.tuples += 1
            if _row_matches(row, exploration):
                counter.found += 1
                if counter.satisfied:
                    return
        return
    for child in node.children:
        counter.labels += 1
        condition = exploration.conditions.get(child.label.attribute)
        if child.label.overlaps_condition(condition):
            _explore_few(child, exploration, counter)
            if counter.satisfied:
                return


def _does_showtuples(node: CategoryNode, exploration: WorkloadQuery) -> bool:
    """The W-determined SHOWTUPLES/SHOWCAT choice at a node."""
    if node.is_leaf:
        return True
    assert node.child_attribute is not None
    return not exploration.constrains(node.child_attribute)


def _row_matches(row, exploration: WorkloadQuery) -> bool:
    """True if a tuple satisfies every selection condition of W."""
    return all(
        condition.matches(row) for condition in exploration.conditions.values()
    )


def relevant_count(tree: CategoryTree, exploration: WorkloadQuery) -> int:
    """Number of tuples in the result set satisfying W (the relevant set)."""
    return sum(1 for row in tree.root.rows if _row_matches(row, exploration))
