"""Exploration simulation: synthetic replay (Section 6.2) and simulated users (Section 6.3)."""

from repro.explore.exploration import (
    ReplayResult,
    relevant_count,
    replay_all,
    replay_few,
    replay_one,
)
from repro.explore.metrics import (
    fractional_cost,
    mean,
    mean_finite,
    normalized_cost,
)
from repro.explore.session import ExplorationSession, Operation, SessionEvent
from repro.explore.user import SimulatedUser, UserBehavior, derive_preference

__all__ = [
    "ExplorationSession",
    "Operation",
    "ReplayResult",
    "SessionEvent",
    "SimulatedUser",
    "UserBehavior",
    "derive_preference",
    "fractional_cost",
    "mean",
    "mean_finite",
    "normalized_cost",
    "relevant_count",
    "replay_all",
    "replay_few",
    "replay_one",
]
