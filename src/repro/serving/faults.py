"""Deterministic fault injection for the serving layer.

Robustness claims are only as good as the failures they were tested
against, so every serving component exposes **named fault sites** — fixed
strings at the exact points where production systems break — and calls
:meth:`FaultInjector.fire` there.  A test (or a chaos-style CI job) arms
sites with delays, failures, or cache evictions; unarmed sites cost one
dict lookup.

Sites wired in this package:

================================  =============================================
site                              fired
================================  =============================================
``snapshot.publish``              at the start of every epoch publish (before
                                  any state changes, so a failure loses nothing)
``degrade.level``                 at every deadline checkpoint between tree
                                  levels
``service.cache``                 on every result-cache lookup (an ``evict``
                                  directive drops the entry, simulating memory
                                  pressure)
``ingest.record``                 on every ingestion attempt
``journal.append``                before any bytes of a journal record are
                                  written (a crash here loses the unacked
                                  record, durably nothing else)
``journal.append.torn``           between a journal record's header and its
                                  payload (a crash here leaves a torn tail
                                  for recovery to truncate)
``journal.append.synced``         after a journal record is written and
                                  fsynced, before the append returns (a crash
                                  here is the "durable but unacked" case)
``journal.checkpoint.rename``     between writing a journal CHECKPOINT temp
                                  file and atomically renaming it into place
``warmstart.rename``              between writing a snapshot temp file and
                                  atomically renaming it into place
================================  =============================================

Everything is deterministic: firing decisions come from a seeded RNG (for
``rate``) or a hit counter (for ``every``), and delays go through an
injectable ``sleeper`` so tests can advance a fake clock instead of
actually sleeping.  Fired faults are counted per site (and in the
``faults.fired{site=...}`` perf counter) so tests can assert a fault
actually triggered — a chaos test whose fault never fired proves nothing.
"""

from __future__ import annotations

import random
import time
from collections import Counter
from dataclasses import dataclass
from typing import Callable

from repro import perf
from repro.serving.errors import PublishError


class InjectedFault(PublishError):
    """Raised by an armed ``fail`` site.

    Subclasses :class:`~repro.serving.errors.PublishError` so the retry /
    circuit-breaker machinery treats injected publish failures exactly
    like real transient ones — the point of injecting them.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at {site!r}")
        self.site = site


class InjectedCrash(RuntimeError):
    """Raised by an armed ``crash`` site to simulate process death.

    Deliberately *not* a :class:`~repro.serving.errors.PublishError` (or
    any :class:`~repro.serving.errors.ServingError`): the retry machinery
    and the journal's best-effort error absorption must not swallow it.
    A test arms a crash site, lets the exception unwind the whole call
    stack, drops every in-memory object, and then exercises recovery
    from the on-disk state exactly as a restarted process would.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"injected crash at {site!r}")
        self.site = site


@dataclass(frozen=True)
class FaultSpec:
    """What one armed site does when it fires.

    Attributes:
        delay_s: sleep this long (through the injector's ``sleeper``).
        fail: raise :class:`InjectedFault` after any delay.
        evict: return an eviction directive to the call site (used by the
            result cache to drop the looked-up entry).
        crash: raise :class:`InjectedCrash` after any delay — simulated
            process death that no serving-layer handler absorbs (takes
            precedence over ``fail``).
        rate: firing probability per hit, from the seeded RNG.
        every: fire deterministically on every n-th hit instead of
            randomly (takes precedence over ``rate``).
        limit: stop firing after this many fires (None = unlimited).
    """

    delay_s: float = 0.0
    fail: bool = False
    evict: bool = False
    crash: bool = False
    rate: float = 1.0
    every: int | None = None
    limit: int | None = None


class FaultInjector:
    """A registry of armed fault sites with deterministic firing.

    One injector is shared by all components of a service; pass
    ``faults=None`` (the default everywhere) for a no-op injector.
    """

    def __init__(
        self, seed: int = 0, sleeper: Callable[[float], None] = time.sleep
    ) -> None:
        self._rng = random.Random(seed)
        self._sleeper = sleeper
        self._specs: dict[str, FaultSpec] = {}
        self._hits: Counter[str] = Counter()
        self._fired: Counter[str] = Counter()

    def arm(
        self,
        site: str,
        *,
        delay_s: float = 0.0,
        fail: bool = False,
        evict: bool = False,
        crash: bool = False,
        rate: float = 1.0,
        every: int | None = None,
        limit: int | None = None,
    ) -> None:
        """Arm ``site`` with a :class:`FaultSpec` (replacing any previous)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if every is not None and every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self._specs[site] = FaultSpec(
            delay_s=delay_s,
            fail=fail,
            evict=evict,
            crash=crash,
            rate=rate,
            every=every,
            limit=limit,
        )

    def disarm(self, site: str | None = None) -> None:
        """Disarm one site, or every site when ``site`` is None."""
        if site is None:
            self._specs.clear()
        else:
            self._specs.pop(site, None)

    def fire(self, site: str) -> bool:
        """Hit ``site``; apply its armed fault if the spec decides to fire.

        Returns:
            True when an ``evict`` directive fired (the only fault kind
            the call site must act on itself).

        Raises:
            InjectedFault: when a ``fail`` spec fired.
            InjectedCrash: when a ``crash`` spec fired.
        """
        spec = self._specs.get(site)
        if spec is None:
            return False
        self._hits[site] += 1
        if spec.limit is not None and self._fired[site] >= spec.limit:
            return False
        if spec.every is not None:
            firing = self._hits[site] % spec.every == 0
        else:
            firing = spec.rate >= 1.0 or self._rng.random() < spec.rate
        if not firing:
            return False
        self._fired[site] += 1
        perf.count("faults.fired", site=site)
        if spec.delay_s > 0.0:
            self._sleeper(spec.delay_s)
        if spec.crash:
            raise InjectedCrash(site)
        if spec.fail:
            raise InjectedFault(site)
        return spec.evict

    def fired(self, site: str) -> int:
        """How many times ``site`` actually fired (not just was hit)."""
        return self._fired[site]

    def hits(self, site: str) -> int:
        """How many times ``site`` was reached."""
        return self._hits[site]


#: Shared no-op injector used when a component gets ``faults=None``.
NULL_INJECTOR = FaultInjector()
