"""The long-lived categorization service.

:class:`CategorizationService` is the request/response front end over the
offline pipeline: it owns one relation, an epoch-versioned
:class:`~repro.serving.snapshot.SnapshotStore` of workload statistics, a
result cache, and the degradation ladder.  The contract of
:meth:`CategorizationService.categorize`:

* it **never raises for capacity reasons** — deadlines and injected
  faults descend the ladder and bottom out at SHOWTUPLES;
* the only exception is :class:`~repro.serving.errors.InvalidRequest`,
  for requests that are wrong rather than expensive (malformed SQL,
  unknown table, negative deadline);
* every response carries a per-request **trace id**, the **epoch** it
  was served from, and the **rung** it was served at — also threaded
  into the PR 3 decision trace when tracing is requested, so a trace on
  disk can be joined back to the request that produced it.

Batches go through :meth:`CategorizationService.categorize_many`, which
pins a single statistics epoch for the whole batch and shares one
deadline across it (the ROADMAP's batch-API follow-on).

Results are cached per ``(epoch, technique, storage backend, normalized
SQL)`` with LRU + TTL
eviction; evicting an entry releases the tree and its per-``RowSet``
partition derivations.  Only full-rung responses are cached — caching a
degraded tree would keep serving yesterday's timeout after the pressure
is gone.  Epoch-keyed caching makes invalidation free: a new epoch
simply stops hitting the old keys, and TTL expiry collects them.
"""

from __future__ import annotations

import itertools
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro import perf, telemetry
from repro.core.algorithm import CostBasedCategorizer, LevelByLevelCategorizer
from repro.core.baselines import AttrCostCategorizer, NoCostCategorizer
from repro.core.config import CategorizerConfig, PAPER_CONFIG
from repro.core.tree import CategoryTree
from repro.relational.table import RowSet, Table
from repro.serving.degrade import (
    RUNG_FULL,
    RUNG_SHOWTUPLES,
    RUNGS,
    Deadline,
    DegradationLadder,
)
from repro.serving.errors import Degraded, InvalidRequest, PublishError, UnknownTable
from repro.serving.faults import NULL_INJECTOR, FaultInjector
from repro.serving.journal import SpillJournal
from repro.serving.relation import Relation
from repro.serving.retry import CircuitBreaker, ResilientIngestor, RetryPolicy
from repro.serving.snapshot import SnapshotStore
from repro.sql.compiler import parse_query
from repro.sql.errors import SqlError
from repro.sql.formatter import format_query
from repro.workload.model import WorkloadQuery
from repro.workload.preprocess import WorkloadStatistics

TECHNIQUES: dict[str, type[LevelByLevelCategorizer]] = {
    "cost-based": CostBasedCategorizer,
    "attr-cost": AttrCostCategorizer,
    "no-cost": NoCostCategorizer,
}


@dataclass
class ServeResult:
    """One categorization response.

    Attributes:
        trace_id: per-request id, also stamped on the decision trace.
        sql: the normalized SQL actually served (the cache key's query).
        rung: degradation-ladder rung served (``full`` ... ``showtuples``).
        epoch: statistics epoch the response was computed against.
        rows: the query's result set (always present — SHOWTUPLES is
            exactly these rows with no tree).
        tree: the category tree, or None on the SHOWTUPLES rung.
        degraded: the :class:`~repro.serving.errors.Degraded` signal, or
            None on the full rung.
        cached: True when served from the result cache.
        elapsed_ms: service-side latency.
    """

    trace_id: str
    sql: str
    rung: str
    epoch: int
    rows: RowSet
    tree: CategoryTree | None = None
    degraded: Degraded | None = None
    cached: bool = False
    elapsed_ms: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready summary (rows/tree reduced to counts and rendering)."""
        return {
            "trace_id": self.trace_id,
            "sql": self.sql,
            "rung": self.rung,
            "epoch": self.epoch,
            "row_count": len(self.rows),
            "category_count": (
                sum(1 for node in self.tree.nodes() if not node.is_root)
                if self.tree is not None
                else 0
            ),
            "degraded": str(self.degraded) if self.degraded else None,
            "cached": self.cached,
            "elapsed_ms": round(self.elapsed_ms, 3),
        }


def _tree_digest(tree) -> dict[str, Any]:
    """Category count + per-level attributes, memoized on the tree.

    Both accessors walk the whole tree (hundreds of microseconds at
    scale); a cached tree is served many times and is immutable once
    built, so sampled cache hits must not re-pay the traversals.
    """
    if tree is None:
        return {"categories": 0, "chosen": []}
    digest = getattr(tree, "_telemetry_digest", None)
    if digest is None:
        digest = {
            "categories": tree.category_count(),
            "chosen": tree.level_attributes(),
        }
        tree._telemetry_digest = digest
    return digest


@dataclass
class _CacheEntry:
    tree: CategoryTree
    rows: RowSet
    stored_at: float
    hits: int = 0


class ResultCache:
    """LRU + TTL cache of full-rung categorizations.

    Keys are ``epoch:technique:backend:normalized-SQL`` strings; values hold the tree
    and its result set, so a hit skips query execution *and* tree
    building.  The ``service.cache`` fault site fires on every lookup —
    an armed ``evict`` directive drops the entry being looked up,
    simulating memory pressure.
    """

    def __init__(
        self,
        capacity: int = 128,
        ttl_s: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
        faults: FaultInjector | None = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self._clock = clock
        self._faults = faults or NULL_INJECTOR
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, _CacheEntry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> _CacheEntry | None:
        with self._lock:
            if self._faults.fire("service.cache"):
                if self._entries.pop(key, None) is not None:
                    perf.count("service.cache_evictions", reason="injected")
            entry = self._entries.get(key)
            if entry is None:
                perf.count("service.cache_misses")
                return None
            if self._clock() - entry.stored_at > self.ttl_s:
                del self._entries[key]
                perf.count("service.cache_evictions", reason="ttl")
                perf.count("service.cache_misses")
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            perf.count("service.cache_hits")
            return entry

    def put(self, key: str, tree: CategoryTree, rows: RowSet) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = _CacheEntry(tree, rows, self._clock())
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                perf.count("service.cache_evictions", reason="lru")

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class CategorizationService:
    """Request/response categorization over one relation.

    The canonical constructor takes a
    :class:`~repro.serving.relation.Relation` — the bundle of table, seed
    statistics, namespace, and durability state the catalog builds per
    dataset.  The original two-argument form
    ``CategorizationService(table, statistics)`` still works as a
    **deprecation shim**: it wraps its arguments into an ad-hoc Relation
    and emits a :class:`DeprecationWarning` (see docs/catalog.md; the
    guard in ``tests/test_deprecation_lint.py`` keeps new code off it).

    Args:
        relation: the :class:`~repro.serving.relation.Relation` to serve
            (or, deprecated, a bare :class:`~repro.relational.table.Table`
            combined with ``statistics``).
        statistics: deprecated — seed workload statistics when ``relation``
            is a bare table.  Must be None when a Relation is passed.
        config: categorizer tunables, fixed for the service's lifetime.
        technique: key into :data:`TECHNIQUES`.
        batch_size: ingestion batch per epoch publish.
        cache_capacity / cache_ttl_s: result-cache sizing.
        faults: shared fault injector for every component.
        clock: monotonic time source (injectable for tests).
        retry / breaker / spill_limit: ingestion-resilience knobs, passed
            through to :class:`~repro.serving.retry.ResilientIngestor`.
        level_cost_hint_s: seed for the ladder's level-cost estimate.
        journal: durable spill journal override; defaults to the
            relation's own journal (docs/serving.md, "Durability & warm
            start").
        initial_epoch: epoch override; defaults to the relation's
            ``initial_epoch`` (non-zero on a warm start resuming a
            persisted epoch).
    """

    def __init__(
        self,
        relation: Relation | Table,
        statistics: WorkloadStatistics | None = None,
        config: CategorizerConfig = PAPER_CONFIG,
        technique: str = "cost-based",
        batch_size: int = 64,
        cache_capacity: int = 128,
        cache_ttl_s: float = 300.0,
        faults: FaultInjector | None = None,
        clock: Callable[[], float] = time.monotonic,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        spill_limit: int = 1024,
        level_cost_hint_s: float = 0.0,
        journal: SpillJournal | None = None,
        initial_epoch: int = 0,
    ) -> None:
        if technique not in TECHNIQUES:
            raise ValueError(
                f"unknown technique {technique!r}; choose from {sorted(TECHNIQUES)}"
            )
        if isinstance(relation, Relation):
            if statistics is not None:
                raise TypeError(
                    "statistics travels inside the Relation; "
                    "do not pass it separately"
                )
            if journal is None:
                journal = relation.journal
            if initial_epoch == 0:
                initial_epoch = relation.initial_epoch
        else:
            # Deprecation shim: the pre-catalog single-table constructor.
            if statistics is None:
                raise TypeError(
                    "CategorizationService(table, ...) needs statistics"
                )
            warnings.warn(
                "CategorizationService(table, statistics) is deprecated; "
                "pass a repro.serving.relation.Relation instead "
                "(docs/catalog.md)",
                DeprecationWarning,
                stacklevel=2,
            )
            relation = Relation(
                table=relation,
                statistics=statistics,
                journal=journal,
                initial_epoch=initial_epoch,
            )
        statistics = relation.statistics
        self.relation = relation
        self.table = relation.table
        self.namespace = relation.namespace
        self.config = config
        self.technique = technique
        self._faults = faults or NULL_INJECTOR
        self._clock = clock
        self.store = SnapshotStore(
            statistics,
            batch_size=batch_size,
            clock=clock,
            faults=self._faults,
            initial_epoch=initial_epoch,
        )
        self.journal = journal
        self.ingestor = ResilientIngestor(
            self.store,
            retry=retry,
            breaker=breaker or CircuitBreaker(clock=clock),
            spill_limit=spill_limit,
            journal=journal,
        )
        self._warm_start = False
        self._snapshot_epoch = initial_epoch
        self._replayed_on_boot = 0
        perf.gauge("serve.warm_start", 0, table=self.name)
        self.ladder = DegradationLadder(
            faults=self._faults, level_cost_hint_s=level_cost_hint_s
        )
        self.cache = ResultCache(
            capacity=cache_capacity,
            ttl_s=cache_ttl_s,
            clock=clock,
            faults=self._faults,
        )
        self._trace_ids = itertools.count(1)

    @property
    def name(self) -> str:
        """The served relation's name (the table's schema name)."""
        return self.relation.name

    # -- read path -----------------------------------------------------------

    def new_trace_id(self) -> str:
        """Allocate the next request trace id (thread-safe).

        Front ends call this *before* dispatching so the id exists even
        for requests that never reach :meth:`categorize` (shed 503s carry
        an ``X-Trace-Id`` too), then pass it through ``trace_id=``.
        """
        return f"req-{next(self._trace_ids):06d}"

    def categorize(
        self,
        sql: str,
        deadline_ms: float | None = None,
        budget: str = RUNG_FULL,
        collect_trace: bool = False,
        trace_id: str | None = None,
    ) -> ServeResult:
        """Serve one categorization request.

        Args:
            sql: the SELECT to categorize the results of.
            deadline_ms: time budget; the ladder degrades to fit it.
            budget: the *best* rung the caller will pay for — ``full``
                (default), ``single_level`` (skip the deep build), or
                ``showtuples`` (no categorization at all); a way to cap
                cost independent of wall-clock.
            collect_trace: attach a PR 3 decision trace (stamped with the
                request's trace id and the served rung).
            trace_id: caller-assigned request id (front ends allocate via
                :meth:`new_trace_id` so shed requests share the same id
                space); None allocates one here.

        Raises:
            InvalidRequest: malformed SQL / unknown table / bad deadline.
                The only exception this method lets escape.
        """
        perf.count("serve.requests")
        with perf.span("serve.request"):
            deadline = self._validated_deadline(deadline_ms)
            self._validate_budget(budget)
            query, normalized_sql = self._parse(sql)
            epoch = self.store.pin()
            return self._serve_pinned(
                query,
                normalized_sql,
                epoch,
                deadline,
                budget,
                collect_trace,
                trace_id=trace_id,
            )

    def categorize_many(
        self,
        sqls: Sequence[str],
        deadline_ms: float | None = None,
        budget: str = RUNG_FULL,
        collect_trace: bool = False,
        trace_id: str | None = None,
    ) -> list[ServeResult]:
        """Serve a batch of categorization requests against ONE epoch.

        The whole batch is validated up front (any malformed statement
        fails the batch before any work is done), then a single statistics
        epoch is pinned and shared, so every response is mutually
        consistent — a concurrent ``record_query`` publish cannot land
        between two queries of the same batch.  ``deadline_ms`` is a
        budget for the **whole batch**: one shared
        :class:`~repro.serving.degrade.Deadline` spans all queries, so
        later queries degrade harder as earlier ones spend the budget
        (bottoming out at SHOWTUPLES, never raising).

        Args:
            sqls: the SELECT statements to categorize; order is preserved
                in the returned results.
            deadline_ms: time budget shared across the batch.
            budget: best rung any query of the batch may be served at.
            collect_trace: attach decision traces, as in :meth:`categorize`.
            trace_id: the batch's root id; statement N is traced as
                ``<root>#N`` so telemetry joins the whole batch to one
                request (the root also decides sampling for the batch).

        Raises:
            InvalidRequest: empty batch, bad deadline/budget, or any
                statement that fails parsing/validation — the message
                names the failing position.
        """
        if not sqls:
            raise InvalidRequest("batch needs at least one statement", reason="sql")
        perf.count("serve.batch_requests")
        perf.count("serve.requests", len(sqls))
        with perf.span("serve.batch"):
            deadline = self._validated_deadline(deadline_ms)
            self._validate_budget(budget)
            parsed = []
            for position, sql in enumerate(sqls):
                try:
                    parsed.append(self._parse(sql))
                except InvalidRequest as exc:
                    raise InvalidRequest(
                        f"batch statement {position}: {exc}", reason=exc.reason
                    ) from exc
            epoch = self.store.pin()
            batch_id = trace_id or self.new_trace_id()
            return [
                self._serve_pinned(
                    query,
                    normalized_sql,
                    epoch,
                    deadline,
                    budget,
                    collect_trace,
                    trace_id=f"{batch_id}#{position}",
                )
                for position, (query, normalized_sql) in enumerate(parsed)
            ]

    def result_key(self, epoch_number: int, normalized_sql: str) -> str:
        """The canonical result identity: cache key and singleflight key.

        The backend tag keeps cache entries honest when a service is
        rebuilt over the same data on a different storage backend:
        RowSets in cached trees are index views into one specific table.
        The async front end uses the same key shape to coalesce identical
        in-flight requests (docs/serving.md); the leading namespace keeps
        keys disjoint across a catalog's relations, which all share one
        singleflight map.
        """
        return (
            f"{self.namespace}:{epoch_number}:{self.technique}:"
            f"{self.table.backend_name}:{normalized_sql}"
        )

    def coalescing_key(self, sql: str) -> str:
        """Singleflight key for ``sql`` against the *current* epoch.

        Two requests with the same coalescing key would compute identical
        full-rung results, so a front end may serve both from one
        computation.  The epoch may advance between key computation and
        execution; that only splits a coalescable pair (each still pins a
        consistent epoch), never merges requests that should differ.

        Raises:
            InvalidRequest: malformed SQL or unknown table, exactly as
                :meth:`categorize` would — front ends can validate before
                admitting the request.
        """
        _, normalized_sql = self._parse(sql)
        return self.result_key(self.store.epoch_number, normalized_sql)

    def _serve_pinned(
        self,
        query: Any,
        normalized_sql: str,
        epoch: Any,
        deadline: Deadline,
        budget: str,
        collect_trace: bool,
        trace_id: str | None = None,
    ) -> ServeResult:
        """Serve one already-parsed request against a pinned epoch.

        The telemetry shell around :meth:`_compute_pinned`: when a
        pipeline is installed and this trace samples in, the computation
        runs inside a :func:`telemetry.scope` (so the storage backend can
        attribute shard timings to the request) and ships a ``service``
        event — plus a ``decision`` digest for freshly computed trees.
        With nothing installed this adds one global load and a branch.
        """
        if trace_id is None:
            trace_id = self.new_trace_id()
        pipeline = telemetry.active()
        if pipeline is None or not pipeline.sampled(trace_id):
            return self._compute_pinned(
                query, normalized_sql, epoch, deadline, budget, collect_trace,
                trace_id,
            )
        # Sampled: optionally force trace collection so the sink gets the
        # tree's reasoning, not just its shape.  Cache hits skip the
        # build entirely, so the forced collection only costs on misses.
        collect = collect_trace or pipeline.collect_decisions
        with telemetry.scope(trace_id):
            result = self._compute_pinned(
                query, normalized_sql, epoch, deadline, budget, collect, trace_id
            )
        tree = result.tree
        pipeline.emit(
            telemetry.SERVICE,
            trace_id,
            table=self.table.schema.name,
            technique=self.technique,
            backend=self.table.backend_name,
            sql=result.sql,
            rung=result.rung,
            epoch=result.epoch,
            cached=result.cached,
            elapsed_ms=round(result.elapsed_ms, 3),
            rows=len(result.rows),
            **_tree_digest(tree),
            degraded=result.degraded.reason if result.degraded else None,
        )
        # Decision events only for freshly computed trees: a cache hit
        # would re-ship a trace recorded under another request's id.
        if not result.cached and tree is not None and tree.decision_trace is not None:
            pipeline.emit(
                telemetry.DECISION,
                trace_id,
                **telemetry.decision_digest(tree.decision_trace),
            )
        return result

    def _compute_pinned(
        self,
        query: Any,
        normalized_sql: str,
        epoch: Any,
        deadline: Deadline,
        budget: str,
        collect_trace: bool,
        trace_id: str,
    ) -> ServeResult:
        """Cache lookup, query execution, and the degradation ladder."""
        started = self._clock()
        cache_key = self.result_key(epoch.number, normalized_sql)
        if budget == RUNG_FULL:
            hit = self.cache.get(cache_key)
            if hit is not None:
                perf.count("serve.rung", rung=RUNG_FULL)
                return ServeResult(
                    trace_id=trace_id,
                    sql=normalized_sql,
                    rung=RUNG_FULL,
                    epoch=epoch.number,
                    rows=hit.rows,
                    tree=hit.tree,
                    cached=True,
                    elapsed_ms=(self._clock() - started) * 1000.0,
                )

        rows = query.execute(self.table)
        if budget == RUNG_SHOWTUPLES:
            perf.count("serve.rung", rung=RUNG_SHOWTUPLES)
            return ServeResult(
                trace_id=trace_id,
                sql=normalized_sql,
                rung=RUNG_SHOWTUPLES,
                epoch=epoch.number,
                rows=rows,
                degraded=Degraded(RUNG_SHOWTUPLES, "budget"),
                elapsed_ms=(self._clock() - started) * 1000.0,
            )

        categorizer = TECHNIQUES[self.technique](epoch.statistics, self.config)
        tree, rung, degraded = self.ladder.categorize(
            categorizer,
            rows,
            query,
            deadline,
            collect_trace=collect_trace,
            max_rung=budget,
        )
        if tree is not None and tree.decision_trace is not None:
            tree.decision_trace.trace_id = trace_id
        if rung == RUNG_FULL and tree is not None:
            self.cache.put(cache_key, tree, rows)
        return ServeResult(
            trace_id=trace_id,
            sql=normalized_sql,
            rung=rung,
            epoch=epoch.number,
            rows=rows,
            tree=tree,
            degraded=degraded,
            elapsed_ms=(self._clock() - started) * 1000.0,
        )

    # -- write path ----------------------------------------------------------

    def record_query(self, sql: str) -> None:
        """Ingest one logged query into the workload statistics.

        Raises:
            InvalidRequest: the SQL does not parse or normalize.
            IngestionStalled: breaker open and the spill log is full.
        """
        query, _ = self._parse(sql)
        try:
            entry = WorkloadQuery.from_query(query)
        except ValueError as exc:
            raise InvalidRequest(f"unnormalizable query: {exc}", reason="sql") from exc
        self._faults.fire("ingest.record")
        self.ingestor.record_query(entry)

    def flush(self) -> None:
        """Replay spill and publish everything pending."""
        self.ingestor.flush()

    # -- durability ----------------------------------------------------------

    def mark_boot(self, warm_start: bool, snapshot_epoch: int | None = None) -> None:
        """Record how this service booted (for /healthz and /metrics).

        Called by the CLI after the cold/warm decision; ``warm_start``
        drives the ``serve.warm_start`` gauge the integration tests use
        to prove a restart actually skipped regeneration.
        """
        self._warm_start = warm_start
        if snapshot_epoch is not None:
            self._snapshot_epoch = snapshot_epoch
        perf.gauge("serve.warm_start", 1 if warm_start else 0, table=self.name)

    def recover_from_journal(self, after_seq: int = 0) -> int:
        """Replay journal records past ``after_seq`` into the statistics.

        Each replayed record counts as recorded (it was acknowledged in a
        previous process life) but is NOT re-journaled — it is already
        durable.  The batch publishes at the end; a failing publish
        leaves the replayed queries pending, which still conserves.

        Returns:
            How many records were folded back in.
        """
        if self.journal is None:
            return 0
        count = 0
        with perf.span("journal.replay"):
            for _seq, sql in self.journal.replay(after_seq):
                try:
                    query = parse_query(sql)
                    entry = WorkloadQuery.from_query(query)
                except (SqlError, ValueError):
                    # A journaled statement this build cannot parse
                    # (format drift) is counted, never fatal: recovery
                    # must bring the server up.
                    perf.count("journal.replay_errors")
                    continue
                self.ingestor.restore(entry)
                count += 1
            if count:
                try:
                    self.ingestor.flush()
                except PublishError:
                    pass  # replayed queries stay safely pending
        self._replayed_on_boot += count
        if count:
            perf.count("journal.replayed", count)
        return count

    # -- introspection -------------------------------------------------------

    @property
    def epoch_number(self) -> int:
        return self.store.epoch_number

    def health(self) -> dict[str, Any]:
        """Liveness summary for the /healthz endpoint and `repro request`."""
        journal = self.journal
        return {
            "table": self.name,
            "namespace": self.namespace,
            "epoch": self.store.epoch_number,
            "pending": self.store.pending_count,
            "breaker": self.ingestor.breaker.state,
            "spilled": self.ingestor.spilled,
            "recorded": self.ingestor.recorded,
            "published": self.ingestor.published,
            "cache_entries": len(self.cache),
            "table_rows": len(self.table),
            "backend": self.table.backend_name,
            "durability": {
                "journal": journal is not None,
                "journal_segments": journal.segment_count if journal else 0,
                "journal_bytes": journal.size_bytes if journal else 0,
                "journal_last_seq": journal.last_seq if journal else 0,
                "journal_truncated_records": (
                    journal.truncated_records if journal else 0
                ),
                "replayed_on_boot": self._replayed_on_boot,
                "warm_start": self._warm_start,
                "snapshot_epoch": self._snapshot_epoch,
            },
        }

    # -- helpers -------------------------------------------------------------

    def _validated_deadline(self, deadline_ms: float | None) -> Deadline:
        try:
            return Deadline(deadline_ms, clock=self._clock)
        except ValueError as exc:
            raise InvalidRequest(str(exc), reason="deadline") from exc

    def _validate_budget(self, budget: str) -> None:
        if budget not in RUNGS:
            raise InvalidRequest(
                f"unknown budget rung {budget!r}; choose from {RUNGS}",
                reason="budget",
            )

    def _parse(self, sql: str):
        try:
            query = parse_query(sql)
        except SqlError as exc:
            perf.count("serve.errors", reason="sql")
            raise InvalidRequest(f"bad SQL: {exc}", reason="sql") from exc
        if query.table_name != self.table.schema.name:
            perf.count("serve.errors", reason="table")
            raise UnknownTable(query.table_name, (self.table.schema.name,))
        try:
            normalized_sql = format_query(query.normalized())
        except ValueError:
            normalized_sql = format_query(query)
        return query, normalized_sql
