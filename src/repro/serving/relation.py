"""One relation's bundle of serving state.

A :class:`Relation` is everything a
:class:`~repro.serving.service.CategorizationService` needs to serve one
table: the table itself, its seed workload statistics, the cache /
telemetry namespace, and — when durability is armed — the per-relation
spill journal, the epoch the warm snapshot resumed at, and the directory
the snapshots live in.  The catalog (``repro.catalog``) builds one of
these per dataset descriptor; the old two-argument
``CategorizationService(table, statistics)`` constructor survives as a
deprecation shim that wraps its arguments into an ad-hoc Relation
(docs/catalog.md, "Deprecation path").

The bundle is deliberately passive: it holds no locks and runs no logic
beyond defaulting, so it can be constructed anywhere (tests, the CLI,
the catalog) without ordering constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.relational.table import Table
from repro.serving.journal import SpillJournal
from repro.workload.preprocess import WorkloadStatistics


@dataclass
class Relation:
    """Everything one table brings to the serving layer.

    Attributes:
        table: the relation queries run against.
        statistics: seed workload statistics (becomes the initial epoch).
        namespace: prefix for result-cache / singleflight keys; defaults
            to the table's schema name.  Distinct namespaces guarantee
            two relations never collide in a shared coalescing map even
            if their epochs and SQL happen to match.
        journal: optional durable spill journal for this relation only.
        initial_epoch: epoch number of the seed statistics (non-zero on
            a warm start resuming a persisted epoch).
        replay_after: journal watermark — replay only records with a
            sequence number strictly greater than this on boot.
        warm: True when ``table``/``statistics`` came from a warm
            snapshot rather than CSV parse + workload preprocessing.
        state_dir: the per-relation durable directory
            (``<root>/<table>/``) holding ``journal/`` and the snapshot
            pair, or None when durability is off.
    """

    table: Table
    statistics: WorkloadStatistics
    namespace: str | None = None
    journal: SpillJournal | None = None
    initial_epoch: int = 0
    replay_after: int = 0
    warm: bool = False
    state_dir: Path | None = None

    def __post_init__(self) -> None:
        if self.namespace is None:
            self.namespace = self.table.schema.name

    @property
    def name(self) -> str:
        """The relation's name — always the table's schema name."""
        return self.table.schema.name
