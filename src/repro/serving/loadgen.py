"""Closed-loop load generator for the serving front ends.

N client threads each hold ONE keep-alive connection and issue requests
back to back — a new request only after the previous response (a *closed
loop*, so offered load adapts to server speed instead of queueing
unboundedly on the client side, and throughput is a property of the
server, not the generator).  Every response is accounted: per-status
counts, per-rung counts, and the full latency sample set reduced to
p50/p99.  503s are *answers*, not errors — the shed-accounting contract
("every shed request is a counted 503") is checked by comparing the
generator's 503 count against the server's ``aserve.shed`` counter.

The query mix cycles per client with a per-client offset, so a short mix
is duplicate-heavy across concurrent clients (the coalescing-friendly
shape an interactive search front end actually sees: many users, few
distinct queries).

Used by ``repro loadgen`` (CLI) and ``benchmarks/test_serving_load.py``
(the p50/p99 SLO gate in CI).
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Sequence
from urllib.parse import urlsplit

#: Default duplicate-heavy mix over the built-in ListProperty relation.
DEFAULT_MIX = (
    "SELECT * FROM ListProperty WHERE price <= 300000",
    "SELECT * FROM ListProperty WHERE bedroomcount = 3",
    "SELECT * FROM ListProperty WHERE price >= 500000",
    "SELECT * FROM ListProperty WHERE bathcount >= 2",
)

#: First-connect retry budget: ~2 s of 50 ms backoffs, enough to cover a
#: `repro serve` still parsing its CSV / binding its socket.
CONNECT_ATTEMPTS = 40
CONNECT_BACKOFF_S = 0.05


def connect_with_retry(
    host: str,
    port: int,
    timeout_s: float,
    attempts: int = CONNECT_ATTEMPTS,
    backoff_s: float = CONNECT_BACKOFF_S,
) -> http.client.HTTPConnection:
    """An ``HTTPConnection`` whose TCP connect outlives the server's bind race.

    Clients launched alongside ``repro serve`` (tests, scripts, CI) race
    the server's startup: the first connect lands before the socket is
    bound and dies with ``ConnectionRefusedError``.  Retry just that —
    refusal is instant, so a short backoff loop costs nothing once the
    server is up, and any *other* failure (timeout, unreachable host)
    still raises immediately.
    """
    for attempt in range(attempts):
        connection = http.client.HTTPConnection(host, port, timeout=timeout_s)
        try:
            connection.connect()
            return connection
        except ConnectionRefusedError:
            connection.close()
            if attempt + 1 == attempts:
                raise
            time.sleep(backoff_s)
    raise AssertionError("unreachable")  # pragma: no cover


@dataclass
class LoadReport:
    """Aggregated outcome of one closed-loop run."""

    clients: int
    requests: int
    responses: int
    errors: int
    elapsed_s: float
    throughput_rps: float
    p50_ms: float
    p99_ms: float
    mean_ms: float
    status_counts: dict[int, int] = field(default_factory=dict)
    rung_counts: dict[str, int] = field(default_factory=dict)
    coalesced: int = 0
    #: Wire error codes (``{"error": {"code": ...}}``) seen on >= 400
    #: answers, with one example message each — what `repro loadgen`
    #: prints so a misdirected run says "UnknownTable: ..." instead of
    #: dumping raw bodies.
    error_code_counts: dict[str, int] = field(default_factory=dict)
    error_examples: dict[str, str] = field(default_factory=dict)

    @property
    def shed(self) -> int:
        return self.status_counts.get(503, 0)

    @property
    def client_errors(self) -> int:
        """Answers that blame the request itself (4xx) — not shed 503s."""
        return sum(
            count
            for status, count in self.status_counts.items()
            if 400 <= status < 500
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "responses": self.responses,
            "errors": self.errors,
            "elapsed_s": round(self.elapsed_s, 3),
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "mean_ms": round(self.mean_ms, 3),
            "status_counts": {str(k): v for k, v in sorted(self.status_counts.items())},
            "rung_counts": dict(sorted(self.rung_counts.items())),
            "coalesced": self.coalesced,
            "shed": self.shed,
            "error_code_counts": dict(sorted(self.error_code_counts.items())),
        }


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of an unsorted sample set."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


class _ClientWorker:
    """One closed-loop client on one keep-alive connection."""

    def __init__(
        self,
        index: int,
        host: str,
        port: int,
        sqls: Sequence[str],
        requests: int,
        deadline_ms: float | None,
        budget: str,
        timeout_s: float,
        barrier: threading.Barrier,
        table: str | None = None,
    ) -> None:
        self.index = index
        self.host = host
        self.port = port
        self.sqls = sqls
        self.requests = requests
        self.deadline_ms = deadline_ms
        self.budget = budget
        self.timeout_s = timeout_s
        self.barrier = barrier
        self.table = table
        self.latencies_ms: list[float] = []
        self.statuses: Counter[int] = Counter()
        self.rungs: Counter[str] = Counter()
        self.coalesced = 0
        self.errors = 0
        self.error_codes: Counter[str] = Counter()
        self.error_examples: dict[str, str] = {}

    def run(self) -> None:
        try:
            connection = connect_with_retry(
                self.host, self.port, timeout_s=self.timeout_s
            )
        except OSError:
            # Never came up inside the retry budget: every request this
            # client would have sent is an error, and the barrier breaks
            # so the siblings bail out too instead of hanging on it.
            self.errors += self.requests
            self.barrier.abort()
            return
        try:
            self.barrier.wait(timeout=self.timeout_s)
        except threading.BrokenBarrierError:
            self.errors += self.requests
            connection.close()
            return
        try:
            for i in range(self.requests):
                sql = self.sqls[(self.index + i) % len(self.sqls)]
                payload: dict[str, Any] = {"sql": sql, "budget": self.budget}
                if self.table is not None:
                    payload["table"] = self.table
                if self.deadline_ms is not None:
                    payload["deadline_ms"] = self.deadline_ms
                body = json.dumps(payload)
                started = time.perf_counter()
                try:
                    connection.request(
                        "POST",
                        "/categorize",
                        body,
                        {"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    data = response.read()
                except (OSError, http.client.HTTPException):
                    # Transport failure — not an HTTP answer.  Count it
                    # loudly (the bench asserts zero) and reconnect.
                    self.errors += 1
                    connection.close()
                    connection = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout_s
                    )
                    continue
                self.latencies_ms.append((time.perf_counter() - started) * 1000.0)
                self.statuses[response.status] += 1
                try:
                    answer = json.loads(data)
                except ValueError:
                    answer = {}
                if response.status == 200:
                    rung = answer.get("rung")
                    if rung:
                        self.rungs[rung] += 1
                    if answer.get("coalesced"):
                        self.coalesced += 1
                elif response.status >= 400:
                    error = answer.get("error")
                    if isinstance(error, dict) and error.get("code"):
                        code = str(error["code"])
                        message = str(error.get("message", ""))
                    else:
                        code, message = f"HTTP{response.status}", ""
                    self.error_codes[code] += 1
                    self.error_examples.setdefault(code, message)
        finally:
            connection.close()


def run_loadgen(
    url: str,
    sqls: Sequence[str] = DEFAULT_MIX,
    clients: int = 32,
    requests_per_client: int = 10,
    deadline_ms: float | None = None,
    budget: str = "full",
    timeout_s: float = 60.0,
    table: str | None = None,
) -> LoadReport:
    """Drive ``clients`` closed-loop clients against a running server.

    Args:
        url: base URL of a ``repro serve`` (threading or async) instance.
        sqls: query mix, cycled per client with a per-client offset.
        clients: concurrent connections (each is one OS thread here; the
            *server* under test is what must scale).
        requests_per_client: requests each client issues back to back.
        deadline_ms / budget: forwarded on every request.
        timeout_s: per-request client timeout (a server that blows past
            it is counted as an error, never waited on forever).
        table: relation to address on every request (``table=`` body
            field); None exercises the legacy default-table path.

    Returns:
        A :class:`LoadReport` over all ``clients * requests_per_client``
        requests.
    """
    if not sqls:
        raise ValueError("loadgen needs at least one SQL statement")
    if clients < 1 or requests_per_client < 1:
        raise ValueError("clients and requests_per_client must be >= 1")
    parts = urlsplit(url if "//" in url else f"http://{url}")
    host, port = parts.hostname or "127.0.0.1", parts.port or 80

    barrier = threading.Barrier(clients + 1)
    workers = [
        _ClientWorker(
            index, host, port, list(sqls), requests_per_client,
            deadline_ms, budget, timeout_s, barrier, table=table,
        )
        for index in range(clients)
    ]
    threads = [
        threading.Thread(target=worker.run, daemon=True, name=f"loadgen-{i}")
        for i, worker in enumerate(workers)
    ]
    for thread in threads:
        thread.start()
    try:
        barrier.wait(timeout=timeout_s)  # release every client at once
    except threading.BrokenBarrierError:
        pass  # a client aborted (connect failed); the report counts it
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    latencies = [sample for worker in workers for sample in worker.latencies_ms]
    statuses: Counter[int] = Counter()
    rungs: Counter[str] = Counter()
    error_codes: Counter[str] = Counter()
    error_examples: dict[str, str] = {}
    errors = coalesced = 0
    for worker in workers:
        statuses.update(worker.statuses)
        rungs.update(worker.rungs)
        error_codes.update(worker.error_codes)
        for code, message in worker.error_examples.items():
            error_examples.setdefault(code, message)
        errors += worker.errors
        coalesced += worker.coalesced
    responses = sum(statuses.values())
    return LoadReport(
        clients=clients,
        requests=clients * requests_per_client,
        responses=responses,
        errors=errors,
        elapsed_s=elapsed,
        throughput_rps=responses / elapsed if elapsed > 0 else 0.0,
        p50_ms=percentile(latencies, 0.50),
        p99_ms=percentile(latencies, 0.99),
        mean_ms=sum(latencies) / len(latencies) if latencies else 0.0,
        status_counts=dict(statuses),
        rung_counts=dict(rungs),
        coalesced=coalesced,
        error_code_counts=dict(error_codes),
        error_examples=error_examples,
    )
