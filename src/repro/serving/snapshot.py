"""Epoch-based snapshots of :class:`WorkloadStatistics`.

The ROADMAP's concurrency problem: ``record_query`` mutates count tables
and invalidates memos in place, so a categorization racing an ingestion
could read half-applied statistics (N bumped, value tables not yet; memo
invalidated, table not yet updated).  The fix is the classic
reader/writer decoupling:

* **Readers pin an epoch.**  :meth:`SnapshotStore.pin` returns an
  :class:`EpochSnapshot` — an immutable published statistics object plus
  its epoch number.  Published statistics are *never mutated again* (the
  one lazy mutation, range-index re-sorting, is forced eagerly before
  publish), so a pinned reader can take as long as it likes.
* **Writers batch into a pending delta.**  :meth:`SnapshotStore.append`
  buffers parsed workload queries under a lock.  When the batch fills (or
  :meth:`flush` is called), :meth:`publish_pending` clones the current
  statistics (:meth:`WorkloadStatistics.copy
  <repro.workload.preprocess.WorkloadStatistics.copy>` — count tables
  deep-copied, memo dicts carried over warm), folds the delta into the
  clone, and swaps the new epoch in with one reference assignment.

The swap is guarded by a seqlock-style **generation counter**: it is odd
while a publish is in flight and even when stable, and :meth:`pin`
re-reads it around the epoch load.  Under CPython's GIL the single
reference assignment is already atomic — the counter exists so the
invariant "no reader observes a half-applied epoch" is *asserted by
tests* rather than assumed, and survives a future free-threaded runtime.

Fault site: ``snapshot.publish`` fires at the top of every publish,
before any state changes — an injected failure or delay therefore never
loses queries (the delta stays pending) and never corrupts an epoch.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro import perf
from repro.serving.errors import PublishError
from repro.serving.faults import NULL_INJECTOR, FaultInjector
from repro.workload.model import WorkloadQuery
from repro.workload.preprocess import WorkloadStatistics


class EpochSnapshot:
    """One published, immutable statistics epoch.

    Attributes:
        number: monotonically increasing epoch number (0 = the seed).
        statistics: the epoch's :class:`WorkloadStatistics`.  Never
            mutated after publish; memo fills are the only writes and are
            idempotent.
        query_count: ``N`` at publish time, recorded eagerly so tests can
            detect a statistics object mutating after publication.
    """

    __slots__ = ("number", "statistics", "query_count")

    def __init__(self, number: int, statistics: WorkloadStatistics) -> None:
        self.number = number
        self.statistics = statistics
        self.query_count = statistics.total_queries

    def __repr__(self) -> str:
        return f"EpochSnapshot(number={self.number}, N={self.query_count})"


class SnapshotStore:
    """Epoch-versioned workload statistics: lock-free reads, batched writes.

    Args:
        statistics: the seed statistics (epoch ``initial_epoch``).  The
            store takes ownership: callers must not mutate it afterwards.
        batch_size: pending queries per automatic publish; larger batches
            amortize the clone cost over more queries.
        clock: monotonic time source (injectable for tests).
        faults: fault injector wired to the ``snapshot.publish`` site.
        initial_epoch: the seed statistics' epoch number.  0 for a cold
            boot; a warm start (`repro serve --warm-start`) passes the
            persisted epoch so numbering — and with it the epoch-scoped
            result-cache keys — continues instead of resetting.
    """

    def __init__(
        self,
        statistics: WorkloadStatistics,
        batch_size: int = 64,
        clock: Callable[[], float] = time.monotonic,
        faults: FaultInjector | None = None,
        initial_epoch: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if initial_epoch < 0:
            raise ValueError(f"initial_epoch must be >= 0, got {initial_epoch}")
        statistics.finalize_indexes()
        self._batch_size = batch_size
        self._clock = clock
        self._faults = faults or NULL_INJECTOR
        self._lock = threading.Lock()
        self._pending: list[WorkloadQuery] = []
        self._generation = 0  # even = stable, odd = publish in flight
        self._epoch = EpochSnapshot(initial_epoch, statistics)

    # -- reader side ---------------------------------------------------------

    def pin(self) -> EpochSnapshot:
        """Return the current epoch; never blocks on ingestion.

        Seqlock read: retry while the generation is odd (publish swapping
        the epoch) or changed across the epoch load.
        """
        while True:
            generation = self._generation
            epoch = self._epoch
            if generation % 2 == 0 and generation == self._generation:
                return epoch
            time.sleep(0)  # publish in flight: yield and retry

    @property
    def epoch_number(self) -> int:
        """The current epoch's number."""
        return self.pin().number

    @property
    def generation(self) -> int:
        """The seqlock generation (even = stable); exposed for tests."""
        return self._generation

    # -- writer side ---------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Queries appended but not yet folded into a published epoch."""
        return len(self._pending)

    @property
    def should_publish(self) -> bool:
        """True when the pending delta has reached the batch size."""
        return len(self._pending) >= self._batch_size

    def append(self, query: WorkloadQuery) -> int:
        """Buffer one logged query into the pending delta; never fails.

        Returns:
            The pending count after the append.
        """
        with self._lock:
            self._pending.append(query)
            return len(self._pending)

    def record_query(self, query: WorkloadQuery) -> float | None:
        """Append and auto-publish when the batch is full.

        The convenience path for callers without retry/breaker needs
        (tests, offline drivers).  Production ingestion goes through
        :class:`~repro.serving.retry.ResilientIngestor`, which separates
        the never-failing append from the retried publish.

        Returns:
            The publish latency in seconds when a publish ran, else None.

        Raises:
            PublishError: when the (fault-injectable) publish fails; the
                query remains safely pending.
        """
        self.append(query)
        if self.should_publish:
            return self.publish_pending()
        return None

    def publish_pending(self) -> float:
        """Fold the pending delta into a new epoch and swap it in.

        Returns:
            The publish latency in seconds (the circuit breaker's input).

        Raises:
            PublishError: on injected/transient failure.  The pending
                delta is untouched — no query is ever lost to a failed
                publish — so the caller can simply retry.
        """
        with self._lock:
            return self._publish_locked()

    def flush(self) -> float | None:
        """Publish any pending delta; None when there was nothing pending."""
        with self._lock:
            if not self._pending:
                return None
            return self._publish_locked()

    def _publish_locked(self) -> float:
        started = self._clock()
        # Fault site first: a failure here leaves pending + epoch intact.
        self._faults.fire("snapshot.publish")
        with perf.span("snapshot.publish"):
            current = self._epoch
            clone = current.statistics.copy()
            for query in self._pending:
                clone.record_query(query)
            clone.finalize_indexes()
            published = EpochSnapshot(current.number + 1, clone)
            # Seqlock write: odd while the epoch reference swaps.
            self._generation += 1
            self._epoch = published
            self._generation += 1
            batch = len(self._pending)
            self._pending = []
        elapsed = self._clock() - started
        perf.count("snapshot.publishes")
        perf.count("snapshot.queries_published", batch)
        perf.gauge("snapshot.epoch", published.number)
        perf.gauge("snapshot.publish_latency_s", elapsed)
        return elapsed
