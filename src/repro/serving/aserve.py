"""Asyncio HTTP front end: keep-alive event loop, coalescing, load shedding.

The thread-per-connection front end in :mod:`repro.serving.http` is fine
for a handful of clients; "millions of users" (ROADMAP) means thousands
of mostly-idle keep-alive connections and bursts of duplicate work, which
is exactly what an event loop plus a bounded worker pool handles well.
``AsyncFrontEnd`` speaks HTTP/1.1 over ``asyncio.start_server`` (stdlib
only) and serves the same routes as the threading server — ``/healthz``,
``/metrics``, ``/categorize``, ``/categorize_batch``, ``/record`` — with
three additions the threading server cannot offer:

**Keep-alive and pipelining.**  Connections persist across requests
(HTTP/1.1 default; ``Connection: close`` honored), and pipelined requests
queue in the stream buffer and are answered in order, so a client pays
the TCP+scheduling setup cost once per session, not once per request.
Idle connections are closed after ``keep_alive_timeout_s``.

**In-flight request coalescing.**  Identical concurrent ``/categorize``
requests — same ``epoch:technique:backend:normalized-SQL`` singleflight
key, via :meth:`CategorizationService.coalescing_key
<repro.serving.service.CategorizationService.coalescing_key>` — await one
computation instead of racing the LRU cache N abreast.  Followers consume
no admission capacity and are counted on ``aserve.coalesced``; their
responses carry ``"coalesced": true`` and share the leader's trace id.
Requests that cannot share a result (``trace`` requested, or a
non-``full`` budget) bypass the singleflight table.

**Admission control and load shedding.**  Compute routes pass an
admission gate: at most ``max_inflight`` requests execute on the bounded
thread-pool executor while at most ``max_queue`` wait — never an
unbounded queue.  As the waiting room fills, the gate *tightens* each
admitted request's ``deadline_ms`` (linearly from ``pressure_deadline_ms``
down to ``min_deadline_ms`` as pressure rises, counted on
``aserve.tightened``), pushing work down the PR 4 degradation ladder
(full → truncated → single-level → SHOWTUPLES) so the server sheds
*quality* before it sheds *requests*.  A full waiting room sheds with
503 + ``Retry-After`` (``aserve.shed{route=...}``).  Every admitted
request is answered; every shed request is a counted 503 — nothing is
dropped on the floor.

``/healthz`` and ``/metrics`` are served inline on the event loop, never
gated: an overloaded server must still answer its operators.

Run it with ``repro serve --async [--max-inflight N]``, or embed::

    handle = start_in_thread(service, max_inflight=8)
    ... requests against http://%s:%d % handle.address ...
    handle.stop()

See docs/serving.md for the architecture and tuning notes.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Awaitable, Callable
from urllib.parse import parse_qs, urlsplit

from repro import perf, telemetry
from repro.render.treeview import render_tree
from repro.serving.degrade import RUNG_FULL
from repro.serving.errors import (
    CODE_INVALID_REQUEST,
    CODE_NOT_FOUND,
    CODE_SHED,
    IngestionStalled,
    InvalidRequest,
    error_payload,
    error_response,
)
from repro.serving.http import MAX_BODY_BYTES, _as_catalog, route_label
from repro.serving.service import CategorizationService, ServeResult

#: Response reason phrases for the statuses this front end emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Hard cap on parsed header lines per request (anti-abuse bound).
_MAX_HEADERS = 100


class Overloaded(Exception):
    """Raised by the admission gate when the waiting room is full."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__("server overloaded; retry later")
        self.retry_after_s = retry_after_s


class _BadRequest(Exception):
    """A request whose *framing* is broken (connection closes after 400)."""


class HttpRequest:
    """One parsed HTTP/1.1 request."""

    __slots__ = ("method", "path", "version", "headers", "body")

    def __init__(
        self,
        method: str,
        path: str,
        version: str,
        headers: dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.path = path
        self.version = version
        self.headers = headers
        self.body = body

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


class AdmissionGate:
    """Semaphore-bounded admission with a bounded waiting room.

    ``max_inflight`` requests execute at once; up to ``max_queue`` more
    wait.  Arrivals beyond that are shed immediately (:class:`Overloaded`)
    — the queue cannot grow without bound, so latency cannot either.

    Pressure is the waiting-room occupancy observed at arrival
    (``waiting / max_queue``, clamped to [0, 1]).  Under pressure the
    gate imposes a deadline cap that shrinks linearly from
    ``pressure_deadline_ms`` (pressure → 0) to ``min_deadline_ms``
    (pressure = 1): queued requests are pushed down the degradation
    ladder instead of stacking up behind full-quality work.
    """

    def __init__(
        self,
        max_inflight: int = 8,
        max_queue: int = 32,
        pressure_deadline_ms: float = 1000.0,
        min_deadline_ms: float = 5.0,
        retry_after_s: float = 1.0,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.pressure_deadline_ms = pressure_deadline_ms
        self.min_deadline_ms = min_deadline_ms
        self.retry_after_s = retry_after_s
        self.waiting = 0
        self.inflight = 0
        self._semaphore = asyncio.Semaphore(max_inflight)

    def deadline_cap_ms(self, pressure: float) -> float | None:
        """The deadline ceiling imposed at ``pressure`` (None when idle)."""
        if pressure <= 0.0:
            return None
        pressure = min(1.0, pressure)
        span = self.pressure_deadline_ms - self.min_deadline_ms
        return self.pressure_deadline_ms - span * pressure

    @contextlib.asynccontextmanager
    async def admit(self, route: str):
        """Hold one execution slot; yields the arrival-time pressure.

        Raises:
            Overloaded: the waiting room is already full.
        """
        if self._semaphore.locked() and self.waiting >= self.max_queue:
            raise Overloaded(self.retry_after_s)
        pressure = self.waiting / self.max_queue if self.max_queue else 0.0
        self.waiting += 1
        perf.gauge("aserve.waiting", self.waiting)
        try:
            await self._semaphore.acquire()
        finally:
            self.waiting -= 1
            perf.gauge("aserve.waiting", self.waiting)
        self.inflight += 1
        perf.gauge("aserve.inflight", self.inflight)
        try:
            yield pressure
        finally:
            self.inflight -= 1
            perf.gauge("aserve.inflight", self.inflight)
            self._semaphore.release()


def _retrieve(future: asyncio.Future) -> None:
    # Touch the exception so an unobserved leader failure (every follower
    # already gone) does not log "exception was never retrieved".
    if not future.cancelled():
        future.exception()


class Singleflight:
    """A table of in-flight computations keyed by result identity.

    The first request for a key becomes the *leader* and runs the
    computation; requests arriving while it is in flight become
    *followers* and await the leader's future (shielded, so one
    follower's disconnect cannot cancel the shared work).  The leader's
    exception — including :class:`Overloaded` — propagates to every
    follower: if the computation was shed, everyone waiting on it was.
    """

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Future] = {}

    def __len__(self) -> int:
        return len(self._inflight)

    async def run(
        self, key: str, compute: Callable[[], Awaitable[ServeResult]]
    ) -> tuple[ServeResult, bool]:
        """Return ``(result, coalesced)`` for ``key``.

        ``coalesced`` is True when this call joined an existing flight
        instead of computing.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            perf.count("aserve.coalesced")
            return await asyncio.shield(existing), True
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        future.add_done_callback(_retrieve)
        self._inflight[key] = future
        try:
            result = await compute()
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
            raise
        else:
            future.set_result(result)
            return result, False
        finally:
            self._inflight.pop(key, None)


class AsyncFrontEnd:
    """The asyncio HTTP front end over a catalog of services.

    Args:
        service: the (thread-safe) service — or
            :class:`~repro.catalog.catalog.Catalog` of services — every
            route delegates to; a lone service is wrapped in a one-entry
            catalog.  Requests pick their relation via a ``"table"``
            body field or ``?table=`` parameter; table-less requests
            resolve to the catalog's default relation and carry a
            ``Deprecation: true`` response header (docs/catalog.md).
        max_inflight: executor slots for compute routes.
        max_queue: waiting-room bound; arrivals beyond it are shed.
        executor_workers: thread-pool size (default ``max_inflight``).
        pressure_deadline_ms / min_deadline_ms: the deadline-tightening
            ramp (see :class:`AdmissionGate`).
        retry_after_s: ``Retry-After`` hint on shed responses.
        keep_alive_timeout_s: idle-connection reaping.
        max_body_bytes: request-body cap, as in the threading server.
    """

    def __init__(
        self,
        service: Any,
        max_inflight: int = 8,
        max_queue: int = 32,
        executor_workers: int | None = None,
        pressure_deadline_ms: float = 1000.0,
        min_deadline_ms: float = 5.0,
        retry_after_s: float = 1.0,
        keep_alive_timeout_s: float = 30.0,
        max_body_bytes: int = MAX_BODY_BYTES,
    ) -> None:
        self.catalog = _as_catalog(service)
        self.gate = AdmissionGate(
            max_inflight=max_inflight,
            max_queue=max_queue,
            pressure_deadline_ms=pressure_deadline_ms,
            min_deadline_ms=min_deadline_ms,
            retry_after_s=retry_after_s,
        )
        self.flights = Singleflight()
        self.keep_alive_timeout_s = keep_alive_timeout_s
        self.max_body_bytes = max_body_bytes
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers or max_inflight,
            thread_name_prefix="aserve",
        )
        self._server: asyncio.AbstractServer | None = None
        self.address: tuple[str, int] | None = None

    @property
    def service(self) -> CategorizationService:
        """The catalog's default service (single-table compatibility)."""
        return self.catalog.default

    def _resolve(
        self,
        request: HttpRequest,
        payload: dict[str, Any] | None,
        telem: dict[str, Any] | None = None,
    ) -> tuple[CategorizationService, dict[str, str]]:
        """Resolve the request's table (body field > query parameter).

        Returns the extra response headers: a defaulted (table-less)
        request carries ``Deprecation: true``.

        Raises:
            InvalidRequest: the ``table`` body field is not a string.
            UnknownTable: the named table is not in the catalog.
        """
        table = payload.get("table") if payload else None
        if table is not None and not isinstance(table, str):
            raise InvalidRequest("'table' must be a string", reason="table")
        if table is None:
            query = urlsplit(request.path).query
            if query:
                values = parse_qs(query).get("table")
                table = values[-1] if values else None
        service, defaulted = self.catalog.resolve(table)
        if telem is not None:
            telem["table"] = service.name
        return service, {"Deprecation": "true"} if defaulted else {}

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> "AsyncFrontEnd":
        """Bind and start accepting connections (``port=0`` picks freely)."""
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        self.address = self._server.sockets[0].getsockname()[:2]
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def drain(self, grace_s: float = 5.0) -> bool:
        """Graceful shutdown: stop accepting, let in-flight work finish.

        Closes the listening socket (established keep-alive connections
        keep being answered), then waits up to ``grace_s`` for the
        admission gate to empty — nothing executing, nothing queued.

        Returns:
            True when the gate drained inside the grace period; False
            when it expired with work still in flight (counted on
            ``aserve.drain_timeouts``) and the caller should close
            anyway rather than hang forever.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + grace_s
        while self.gate.inflight or self.gate.waiting:
            if time.monotonic() >= deadline:
                perf.count("aserve.drain_timeouts")
                return False
            await asyncio.sleep(0.01)
        return True

    async def close(self) -> None:
        """Stop accepting, then release the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=False)

    # -- connection loop -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    perf.count("aserve.bad_requests")
                    await self._write_response(
                        writer,
                        400,
                        _json_bytes(
                            error_payload(
                                CODE_INVALID_REQUEST,
                                str(exc),
                                {"reason": "request"},
                            )
                        ),
                        "application/json",
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                telem: dict[str, Any] = {"arrived": time.perf_counter()}
                with perf.timer("aserve.request"):
                    status, body, content_type, extra = await self._dispatch(
                        request, telem
                    )
                perf.count("http.requests")
                perf.count(
                    "http.requests_by_route",
                    route=route_label(request.path),
                    method=request.method,
                    status=status,
                )
                served = time.perf_counter()
                await self._write_response(
                    writer,
                    status,
                    body,
                    content_type,
                    keep_alive=request.keep_alive,
                    extra=extra,
                )
                self._emit_frontend(telem, status, served)
                if not request.keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            TimeoutError,
        ):
            perf.count("http.client_disconnects")
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> HttpRequest | None:
        """Parse one request; None on clean EOF or idle timeout."""
        try:
            line = await asyncio.wait_for(
                reader.readline(), self.keep_alive_timeout_s
            )
        except asyncio.TimeoutError:
            return None  # idle keep-alive connection: reap it
        except ValueError as exc:  # request line over the stream limit
            raise _BadRequest("request line too long") from exc
        if not line or not line.strip():
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest(f"malformed request line {line.decode('latin-1')!r}")
        method, path, version = parts

        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            try:
                raw = await asyncio.wait_for(
                    reader.readline(), self.keep_alive_timeout_s
                )
            except (asyncio.TimeoutError, ValueError) as exc:
                raise _BadRequest("unterminated headers") from exc
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                raise _BadRequest("connection closed inside headers")
            name, separator, value = raw.decode("latin-1").partition(":")
            if not separator:
                raise _BadRequest(f"malformed header line {raw!r}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _BadRequest(f"over {_MAX_HEADERS} header lines")

        if "transfer-encoding" in headers:
            raise _BadRequest("chunked request bodies are not supported")
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            # Mirror the threading server: a header the client mangled is
            # the client's bug — 400, not an escaping ValueError.
            raise _BadRequest(
                f"bad Content-Length header {raw_length.strip()!r}"
            ) from None
        if length < 0:
            raise _BadRequest(f"negative Content-Length {length}")
        if length > self.max_body_bytes:
            raise _BadRequest(f"request body over {self.max_body_bytes} bytes")
        body = b""
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), self.keep_alive_timeout_s
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError) as exc:
                raise _BadRequest("request body shorter than Content-Length") from exc
        return HttpRequest(method, path, version, headers, body)

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
        keep_alive: bool,
        extra: dict[str, str] | None = None,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- routing -------------------------------------------------------------

    async def _dispatch(
        self, request: HttpRequest, telem: dict[str, Any]
    ) -> tuple[int, bytes, str, dict[str, str] | None]:
        """Route one request; returns (status, body, content type, headers).

        ``telem`` collects the request's telemetry story (trace id,
        waterfall timestamps, admission outcome) for
        :meth:`_emit_frontend`; compute routes allocate their trace id
        here so even shed 503s carry an ``X-Trace-Id``.
        """
        route = request.path.split("?", 1)[0]
        telem["route"] = route
        try:
            if request.method == "GET" and route == "/healthz":
                service, _ = self._resolve(request, None)
                # Default-table fields stay at the top level for legacy
                # single-table probes; the catalog map carries the rest.
                return self._ok(
                    {
                        "status": "ok",
                        **service.health(),
                        **self.catalog.health(),
                    }
                )
            if request.method == "GET" and route == "/metrics":
                self.catalog.record_gauges()
                text = perf.export_prometheus()
                return (
                    200,
                    text.encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                    None,
                )
            if request.method == "POST" and route == "/categorize":
                telem["trace_id"] = self.catalog.new_trace_id()
                return await self._categorize(request, telem)
            if request.method == "POST" and route == "/categorize_batch":
                telem["trace_id"] = self.catalog.new_trace_id()
                return await self._categorize_batch(request, telem)
            if request.method == "POST" and route == "/record":
                telem["trace_id"] = self.catalog.new_trace_id()
                return await self._record(request, telem)
            return self._error(
                404,
                error_payload(
                    CODE_NOT_FOUND, f"no such endpoint {request.path!r}"
                ),
            )
        except Overloaded as exc:
            perf.count("aserve.shed", route=route)
            telem["outcome"] = "shed"
            extra = {"Retry-After": str(max(1, round(exc.retry_after_s)))}
            payload = error_payload(
                CODE_SHED, "overloaded: admission queue full", {"reason": "overload"}
            )
            if telem.get("trace_id"):
                extra["X-Trace-Id"] = telem["trace_id"]
                payload["trace_id"] = telem["trace_id"]
            return self._error(503, payload, extra=extra)
        except InvalidRequest as exc:
            perf.count("http.invalid_requests", reason=exc.reason)
            telem["outcome"] = "invalid"
            status, body = error_response(exc)
            return self._error(status, body)
        except IngestionStalled as exc:
            telem["outcome"] = "stalled"
            status, body = error_response(exc)
            return self._error(
                status,
                body,
                extra={"Retry-After": str(max(1, round(self.gate.retry_after_s)))},
            )
        except Exception as exc:  # pragma: no cover - last-resort guard
            perf.count("http.internal_errors")
            telem["outcome"] = "error"
            status, body = error_response(exc)
            return self._error(status, body)

    def _emit_frontend(
        self, telem: dict[str, Any], status: int, served: float
    ) -> None:
        """Ship one ``frontend`` event for a traced request (or nothing).

        ``served`` is the perf-counter instant the dispatch returned; the
        time from there to now (the response bytes written and drained)
        is the waterfall's ``respond`` stage.
        """
        trace_id = telem.get("trace_id")
        if not trace_id or telemetry.active() is None:
            return
        now = time.perf_counter()
        arrived = telem["arrived"]
        admitted = telem.get("admitted")
        queue_ms = ((admitted if admitted is not None else served) - arrived) * 1000.0
        compute_ms = (served - admitted) * 1000.0 if admitted is not None else 0.0
        telemetry.emit(
            telemetry.FRONTEND,
            trace_id,
            frontend="async",
            route=telem.get("route"),
            table=telem.get("table"),
            status=status,
            outcome=telem.get("outcome", "ok"),
            queue_ms=round(queue_ms, 3),
            compute_ms=round(compute_ms, 3),
            respond_ms=round((now - served) * 1000.0, 3),
            pressure=telem.get("pressure"),
            tightened=bool(telem.get("tightened")),
            deadline_ms=telem.get("deadline_ms"),
            coalesced=bool(telem.get("coalesced")),
            leader_trace_id=telem.get("leader_trace_id"),
        )

    @staticmethod
    def _ok(
        payload: dict[str, Any], extra: dict[str, str] | None = None
    ) -> tuple[int, bytes, str, dict[str, str] | None]:
        return 200, _json_bytes(payload), "application/json", extra

    @staticmethod
    def _error(
        status: int, payload: dict[str, Any], extra: dict[str, str] | None = None
    ) -> tuple[int, bytes, str, dict[str, str] | None]:
        return status, _json_bytes(payload), "application/json", extra

    # -- compute routes ------------------------------------------------------

    async def _categorize(
        self, request: HttpRequest, telem: dict[str, Any]
    ) -> tuple[int, bytes, str, dict[str, str] | None]:
        payload = _json_body(request)
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise InvalidRequest("body needs a non-empty 'sql' string", reason="sql")
        service, extra = self._resolve(request, payload, telem)
        deadline_ms = payload.get("deadline_ms")
        budget = payload.get("budget", RUNG_FULL)
        collect_trace = bool(payload.get("trace", False))
        trace_id = telem["trace_id"]

        async def lead() -> ServeResult:
            async with self.gate.admit("/categorize") as pressure:
                telem["admitted"] = time.perf_counter()
                telem["pressure"] = round(pressure, 4)
                effective = self._tightened(deadline_ms, pressure, telem)
                return await self._run(
                    service.categorize,
                    sql,
                    deadline_ms=effective,
                    budget=budget,
                    collect_trace=collect_trace,
                    trace_id=trace_id,
                )

        # Only full-budget, traceless requests can share a result: a trace
        # is computed per request, and a degraded budget asks for a
        # different (cheaper) tree than the full-rung flight computes.
        if budget == RUNG_FULL and not collect_trace:
            # Validates the SQL up front too — invalid requests are
            # rejected before they consume admission capacity.  The key
            # is namespaced per relation, so one singleflight table can
            # serve the whole catalog without cross-table sharing.
            key = service.coalescing_key(sql)
            result, coalesced = await self.flights.run(key, lead)
        else:
            result, coalesced = await lead(), False

        body = result.as_dict()
        if coalesced:
            body["coalesced"] = True
            telem["coalesced"] = True
            # The follower's own id never reached the service; record the
            # leader's so the audit can tie the share to its computation.
            telem["leader_trace_id"] = result.trace_id
        if payload.get("render") and result.tree is not None:
            body["rendering"] = render_tree(result.tree)
        if (
            collect_trace
            and result.tree is not None
            and result.tree.decision_trace is not None
        ):
            body["decision_trace"] = result.tree.decision_trace.as_dict()
        body["table"] = service.name
        # Clients correlate on the id of the computation that answered
        # them — the leader's for coalesced followers (matching the body).
        return self._ok(body, extra={"X-Trace-Id": result.trace_id, **extra})

    async def _categorize_batch(
        self, request: HttpRequest, telem: dict[str, Any]
    ) -> tuple[int, bytes, str, dict[str, str] | None]:
        payload = _json_body(request)
        sqls = payload.get("sqls")
        if (
            not isinstance(sqls, list)
            or not sqls
            or not all(isinstance(s, str) and s.strip() for s in sqls)
        ):
            raise InvalidRequest(
                "body needs a non-empty 'sqls' list of SQL strings", reason="sql"
            )
        service, extra = self._resolve(request, payload, telem)
        trace_id = telem["trace_id"]
        async with self.gate.admit("/categorize_batch") as pressure:
            telem["admitted"] = time.perf_counter()
            telem["pressure"] = round(pressure, 4)
            results = await self._run(
                service.categorize_many,
                sqls,
                deadline_ms=self._tightened(
                    payload.get("deadline_ms"), pressure, telem
                ),
                budget=payload.get("budget", RUNG_FULL),
                collect_trace=bool(payload.get("trace", False)),
                trace_id=trace_id,
            )
        rendered = bool(payload.get("render"))
        bodies = []
        for result in results:
            body = result.as_dict()
            if rendered and result.tree is not None:
                body["rendering"] = render_tree(result.tree)
            bodies.append(body)
        return self._ok(
            {
                "trace_id": trace_id,
                "table": service.name,
                "epoch": results[0].epoch if results else None,
                "count": len(bodies),
                "results": bodies,
            },
            extra={"X-Trace-Id": trace_id, **extra},
        )

    async def _record(
        self, request: HttpRequest, telem: dict[str, Any]
    ) -> tuple[int, bytes, str, dict[str, str] | None]:
        payload = _json_body(request)
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise InvalidRequest("body needs a non-empty 'sql' string", reason="sql")
        service, extra = self._resolve(request, payload, telem)
        async with self.gate.admit("/record"):
            telem["admitted"] = time.perf_counter()
            await self._run(service.record_query, sql)
        return self._ok(
            {"status": "recorded", **service.health()},
            extra={"X-Trace-Id": telem["trace_id"], **extra},
        )

    def _tightened(
        self,
        deadline_ms: float | None,
        pressure: float,
        telem: dict[str, Any] | None = None,
    ) -> float | None:
        """Apply the gate's pressure-derived cap to a request deadline."""
        cap = self.gate.deadline_cap_ms(pressure)
        if cap is None:
            if telem is not None:
                telem["deadline_ms"] = deadline_ms
            return deadline_ms
        if deadline_ms is None or cap < deadline_ms:
            perf.count("aserve.tightened")
            if telem is not None:
                telem["tightened"] = True
                telem["deadline_ms"] = cap
            return cap
        if telem is not None:
            telem["deadline_ms"] = deadline_ms
        return deadline_ms

    async def _run(self, fn: Callable, /, *args: Any, **kwargs: Any) -> Any:
        """Run a blocking service call on the bounded executor."""
        loop = asyncio.get_running_loop()
        if kwargs:
            call = lambda: fn(*args, **kwargs)  # noqa: E731
        else:
            call = lambda: fn(*args)  # noqa: E731
        return await loop.run_in_executor(self._executor, call)


def _json_bytes(payload: dict[str, Any]) -> bytes:
    return (json.dumps(payload, indent=2) + "\n").encode("utf-8")


def _json_body(request: HttpRequest) -> dict[str, Any]:
    """Decode a JSON object body, mirroring the threading server's rules."""
    if not request.body:
        raise InvalidRequest("empty request body", reason="request")
    try:
        payload = json.loads(request.body)
    except json.JSONDecodeError as exc:
        raise InvalidRequest(f"bad JSON body: {exc}", reason="request") from exc
    if not isinstance(payload, dict):
        raise InvalidRequest("body must be a JSON object", reason="request")
    return payload


class AsyncServerHandle:
    """A running :class:`AsyncFrontEnd` on a background event-loop thread."""

    def __init__(
        self,
        frontend: AsyncFrontEnd,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
        stop_event: asyncio.Event,
    ) -> None:
        self.frontend = frontend
        self._loop = loop
        self._thread = thread
        self._stop_event = stop_event

    @property
    def address(self) -> tuple[str, int]:
        assert self.frontend.address is not None
        return self.frontend.address

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def stop(self, timeout_s: float = 10.0) -> None:
        """Shut the server down and join the loop thread."""
        if self._thread.is_alive():
            with contextlib.suppress(RuntimeError):  # loop already gone
                self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout_s)


def start_in_thread(
    service: Any,
    host: str = "127.0.0.1",
    port: int = 0,
    **options: Any,
) -> AsyncServerHandle:
    """Run an :class:`AsyncFrontEnd` on a daemon thread (tests, benches).

    ``service`` may be a lone service or a catalog, as in
    :class:`AsyncFrontEnd`.

    Blocks until the server is bound; returns a handle exposing the bound
    address and a ``stop()`` that tears the loop down cleanly.
    """
    ready = threading.Event()
    holder: dict[str, Any] = {}

    async def main() -> None:
        frontend = AsyncFrontEnd(service, **options)
        await frontend.start(host, port)
        stop_event = asyncio.Event()
        holder["frontend"] = frontend
        holder["loop"] = asyncio.get_running_loop()
        holder["stop_event"] = stop_event
        ready.set()
        try:
            await stop_event.wait()
        finally:
            await frontend.close()

    def run() -> None:
        try:
            asyncio.run(main())
        except Exception as exc:  # startup failure: unblock the caller
            holder["error"] = exc
            ready.set()

    thread = threading.Thread(target=run, daemon=True, name="aserve-loop")
    thread.start()
    if not ready.wait(timeout=10.0):
        raise RuntimeError("async front end failed to start within 10 s")
    if "error" in holder:
        raise holder["error"]
    return AsyncServerHandle(
        holder["frontend"], holder["loop"], thread, holder["stop_event"]
    )
