"""A stdlib HTTP front end for :class:`CategorizationService`.

Endpoints (JSON in, JSON out; no dependencies beyond ``http.server``):

=========================  ==================================================
``GET  /healthz``          service liveness: epoch, breaker state, spill
                           depth, cache size
``GET  /metrics``          the perf registry in Prometheus text format (the
                           ROADMAP's `/metrics`-style endpoint)
``POST /categorize``       body ``{"sql": ..., "deadline_ms": ...,
                           "budget": ..., "render": bool}`` → the
                           :meth:`ServeResult.as_dict
                           <repro.serving.service.ServeResult.as_dict>`
                           summary, plus a rendered tree when asked
``POST /categorize_batch``  body ``{"sqls": [...], "deadline_ms": ...,
                           "budget": ..., "render": bool}`` → ``{"epoch":
                           ..., "results": [...]}``; the whole batch is
                           served against one pinned statistics epoch and
                           shares one deadline
``POST /record``           body ``{"sql": ...}`` → ingestion ack with the
                           current epoch/pending counts
=========================  ==================================================

The server holds a :class:`~repro.catalog.catalog.Catalog`, so one
process serves many relations.  Every route takes a **table dimension**:
a ``"table"`` body field (POST) or a ``?table=`` query parameter; a
request that names neither resolves to the catalog's default relation
and is answered with a ``Deprecation: true`` header (docs/catalog.md).
``/healthz`` enumerates every table (or narrows to ``?table=``), and
``/metrics`` publishes per-table gauges under a ``table=`` label.

Error mapping goes through the shared serializer
(:func:`~repro.serving.errors.error_response`): every error body is
``{"error": {"code", "message", "detail"}}`` —
:class:`~repro.serving.errors.InvalidRequest` → 400 (code
``InvalidRequest``/``SqlError``, including malformed ``Content-Length``
headers), :class:`~repro.serving.errors.UnknownTable` → 404,
:class:`~repro.serving.errors.IngestionStalled` → 503 (back off and
retry), anything else → 500.  Degradation is *not* an error — a
SHOWTUPLES response is a 200 with ``"rung": "showtuples"``.  A client
that hangs up mid-request gets nothing (there is nobody to answer):
write failures on the error path are swallowed and counted on the
``http.client_disconnects`` perf counter.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro import perf, telemetry
from repro.render.treeview import render_tree
from repro.serving.errors import (
    CODE_NOT_FOUND,
    IngestionStalled,
    InvalidRequest,
    error_payload,
    error_response,
)
from repro.serving.service import CategorizationService

MAX_BODY_BYTES = 1 << 20

#: The service's route set; anything else is labeled ``other`` so the
#: per-route counter cardinality stays bounded no matter what clients probe.
ROUTES = ("/healthz", "/metrics", "/categorize", "/categorize_batch", "/record")


def route_label(path: str) -> str:
    """Collapse a request target to a bounded route label."""
    route = path.split("?", 1)[0]
    return route if route in ROUTES else "other"


class ServiceHandler(BaseHTTPRequestHandler):
    """Request handler bound to a catalog via :func:`make_server`."""

    catalog: Any  # Catalog, injected by make_server
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: A003
        # Silence stderr spam; traffic is counted in log_request instead.
        pass

    def log_request(self, code: Any = "-", size: Any = "-") -> None:
        # Count every answered request, sliced by route/method/status so
        # /metrics can report per-endpoint SLOs.  The unlabeled series
        # predates the labels; existing dashboards read it, so keep it.
        perf.count("http.requests")
        status = getattr(code, "value", code)
        perf.count(
            "http.requests_by_route",
            route=route_label(self.path),
            method=self.command,
            status=status,
        )

    def _reply(
        self,
        status: int,
        payload: dict[str, Any] | str,
        extra: dict[str, str] | None = None,
    ) -> None:
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply_or_disconnect(
        self, status: int, payload: dict[str, Any] | str
    ) -> None:
        """Best-effort reply: the client may hang up mid-write.

        On error paths the client has often already hung up (it is why we
        are on the error path at all), and GET replies race the client's
        own timeout the same way; writing to a dead socket raises
        ``BrokenPipeError``/``ConnectionResetError`` out of the handler
        thread.  Swallow the write failure, count it, and drop the
        connection instead.
        """
        try:
            self._reply(status, payload)
        except (BrokenPipeError, ConnectionResetError):
            perf.count("http.client_disconnects")
            self.close_connection = True

    def _read_json(self) -> dict[str, Any]:
        raw_length = self.headers.get("Content-Length") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            # A malformed header is the client's bug, not ours: 400, not
            # a ValueError escaping to the 500 guard.
            raise InvalidRequest(
                f"bad Content-Length header {raw_length.strip()!r}",
                reason="request",
            ) from None
        if length <= 0:
            raise InvalidRequest("empty request body", reason="request")
        if length > MAX_BODY_BYTES:
            raise InvalidRequest(
                f"request body over {MAX_BODY_BYTES} bytes", reason="request"
            )
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise InvalidRequest(f"bad JSON body: {exc}", reason="request") from exc
        if not isinstance(payload, dict):
            raise InvalidRequest("body must be a JSON object", reason="request")
        return payload

    # -- table resolution ----------------------------------------------------

    def _table_param(self) -> str | None:
        """The ``?table=`` query parameter, if any (last one wins)."""
        query = urlsplit(self.path).query
        if not query:
            return None
        values = parse_qs(query).get("table")
        return values[-1] if values else None

    def _resolve(
        self, payload: dict[str, Any] | None, telem: dict[str, Any] | None = None
    ) -> tuple[CategorizationService, dict[str, str]]:
        """Resolve the request's table to a service.

        The body field wins over the query parameter.  Returns the extra
        response headers: a defaulted (table-less) request carries
        ``Deprecation: true`` so legacy clients can be found and
        migrated.

        Raises:
            InvalidRequest: the ``table`` body field is not a string.
            UnknownTable: the named table is not in the catalog.
        """
        table = payload.get("table") if payload else None
        if table is not None and not isinstance(table, str):
            raise InvalidRequest("'table' must be a string", reason="table")
        if table is None:
            table = self._table_param()
        service, defaulted = self.catalog.resolve(table)
        if telem is not None:
            telem["table"] = service.name
        return service, {"Deprecation": "true"} if defaulted else {}

    # -- routes --------------------------------------------------------------

    def _track(self):
        """The owning server's in-flight tracker (no-op off :class:`_Server`).

        Handlers run on per-connection threads, so graceful drain needs a
        server-side count of requests still inside a route body; both
        route methods wrap themselves in this.
        """
        tracker = getattr(self.server, "track_request", None)
        return tracker() if tracker is not None else contextlib.nullcontext()

    def do_GET(self) -> None:  # noqa: N802
        # GET replies go through the same swallow-and-count path as POST:
        # a client that hangs up mid-/metrics scrape must not raise a
        # BrokenPipeError out of the handler thread uncounted.
        with self._track():
            route = route_label(self.path)
            if route == "/healthz":
                try:
                    service, _ = self._resolve(None)
                except InvalidRequest as exc:
                    status, body = error_response(exc)
                    self._reply_or_disconnect(status, body)
                    return
                # Default-table fields stay at the top level for legacy
                # single-table probes; the catalog map carries the rest.
                self._reply_or_disconnect(
                    200,
                    {
                        "status": "ok",
                        **service.health(),
                        **self.catalog.health(),
                    },
                )
            elif route == "/metrics":
                self.catalog.record_gauges()
                self._reply_or_disconnect(200, perf.export_prometheus())
            else:
                self._reply_or_disconnect(
                    404,
                    error_payload(
                        CODE_NOT_FOUND, f"no such endpoint {self.path!r}"
                    ),
                )

    def do_POST(self) -> None:  # noqa: N802
        with self._track():
            self._do_post()

    def _do_post(self) -> None:
        # The threading server has no admission queue, so the telemetry
        # waterfall's queue stage is zero by construction; compute and
        # respond are timed around the handler body.
        telem: dict[str, Any] = {"started": time.perf_counter()}
        try:
            payload = self._read_json()
            route = route_label(self.path)
            if route == "/categorize":
                self._categorize(payload, telem)
            elif route == "/categorize_batch":
                self._categorize_batch(payload, telem)
            elif route == "/record":
                self._record(payload, telem)
            else:
                self._reply(
                    404,
                    error_payload(
                        CODE_NOT_FOUND, f"no such endpoint {self.path!r}"
                    ),
                )
        except InvalidRequest as exc:
            perf.count("http.invalid_requests", reason=exc.reason)
            telem["outcome"] = "invalid"
            status, body = error_response(exc)
            telem["status"] = status
            self._reply_or_disconnect(status, body)
        except IngestionStalled as exc:
            telem["outcome"] = "stalled"
            status, body = error_response(exc)
            telem["status"] = status
            self._reply_or_disconnect(status, body)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-request or mid-reply: there is nobody
            # left to answer, and a 500 written to the broken socket would
            # raise out of the handler thread.
            perf.count("http.client_disconnects")
            self.close_connection = True
        except Exception as exc:  # pragma: no cover - last-resort guard
            perf.count("http.internal_errors")
            telem["outcome"] = "error"
            status, body = error_response(exc)
            telem["status"] = status
            self._reply_or_disconnect(status, body)
        finally:
            self._emit_frontend(telem)

    def _emit_frontend(self, telem: dict[str, Any]) -> None:
        """Ship one ``frontend`` event when the request was traced."""
        trace_id = telem.get("trace_id")
        if not trace_id or telemetry.active() is None:
            return
        total_ms = (time.perf_counter() - telem["started"]) * 1000.0
        compute_ms = telem.get("compute_ms", 0.0)
        telemetry.emit(
            telemetry.FRONTEND,
            trace_id,
            frontend="threading",
            route=route_label(self.path),
            table=telem.get("table"),
            status=telem.get("status"),
            outcome=telem.get("outcome", "ok"),
            queue_ms=0.0,
            compute_ms=round(compute_ms, 3),
            respond_ms=round(max(0.0, total_ms - compute_ms), 3),
            pressure=None,
            tightened=False,
            deadline_ms=telem.get("deadline_ms"),
            coalesced=False,
            leader_trace_id=None,
        )

    def _categorize(self, payload: dict[str, Any], telem: dict[str, Any]) -> None:
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise InvalidRequest("body needs a non-empty 'sql' string", reason="sql")
        service, extra = self._resolve(payload, telem)
        trace_id = self.catalog.new_trace_id()
        telem["trace_id"] = trace_id
        telem["deadline_ms"] = payload.get("deadline_ms")
        collect_trace = bool(payload.get("trace", False))
        computed = time.perf_counter()
        result = service.categorize(
            sql,
            deadline_ms=payload.get("deadline_ms"),
            budget=payload.get("budget", "full"),
            collect_trace=collect_trace,
            trace_id=trace_id,
        )
        telem["compute_ms"] = (time.perf_counter() - computed) * 1000.0
        telem["status"] = 200
        body = result.as_dict()
        if payload.get("render") and result.tree is not None:
            body["rendering"] = render_tree(result.tree)
        if (
            collect_trace
            and result.tree is not None
            and result.tree.decision_trace is not None
        ):
            body["decision_trace"] = result.tree.decision_trace.as_dict()
        body["table"] = service.name
        self._reply(
            200, body, extra={"X-Trace-Id": result.trace_id, **extra}
        )

    def _categorize_batch(
        self, payload: dict[str, Any], telem: dict[str, Any]
    ) -> None:
        sqls = payload.get("sqls")
        if (
            not isinstance(sqls, list)
            or not sqls
            or not all(isinstance(s, str) and s.strip() for s in sqls)
        ):
            raise InvalidRequest(
                "body needs a non-empty 'sqls' list of SQL strings",
                reason="sql",
            )
        service, extra = self._resolve(payload, telem)
        trace_id = self.catalog.new_trace_id()
        telem["trace_id"] = trace_id
        telem["deadline_ms"] = payload.get("deadline_ms")
        computed = time.perf_counter()
        results = service.categorize_many(
            sqls,
            deadline_ms=payload.get("deadline_ms"),
            budget=payload.get("budget", "full"),
            collect_trace=bool(payload.get("trace", False)),
            trace_id=trace_id,
        )
        telem["compute_ms"] = (time.perf_counter() - computed) * 1000.0
        telem["status"] = 200
        rendered = bool(payload.get("render"))
        bodies = []
        for result in results:
            body = result.as_dict()
            if rendered and result.tree is not None:
                body["rendering"] = render_tree(result.tree)
            bodies.append(body)
        self._reply(
            200,
            {
                "trace_id": trace_id,
                "table": service.name,
                "epoch": results[0].epoch if results else None,
                "count": len(bodies),
                "results": bodies,
            },
            extra={"X-Trace-Id": trace_id, **extra},
        )

    def _record(self, payload: dict[str, Any], telem: dict[str, Any]) -> None:
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise InvalidRequest("body needs a non-empty 'sql' string", reason="sql")
        service, extra = self._resolve(payload, telem)
        trace_id = self.catalog.new_trace_id()
        telem["trace_id"] = trace_id
        computed = time.perf_counter()
        service.record_query(sql)
        telem["compute_ms"] = (time.perf_counter() - computed) * 1000.0
        telem["status"] = 200
        self._reply(
            200,
            {"status": "recorded", **service.health()},
            extra={"X-Trace-Id": trace_id, **extra},
        )


class _Server(ThreadingHTTPServer):
    # socketserver's default listen backlog is 5: a burst of concurrent
    # clients (the loadgen's barrier start) leaves connections stuck in
    # SYN_RECV until the server RSTs them.  Match the asyncio front end's
    # backlog so the two are comparable under load.
    request_queue_size = 128

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    @property
    def inflight(self) -> int:
        """Requests currently inside a route body (drain's exit signal)."""
        with self._inflight_lock:
            return self._inflight

    @contextlib.contextmanager
    def track_request(self):
        """Count one request in flight for the duration of its handler."""
        with self._inflight_lock:
            self._inflight += 1
        try:
            yield
        finally:
            with self._inflight_lock:
                self._inflight -= 1


def drain(server: ThreadingHTTPServer, grace_s: float = 5.0) -> bool:
    """Gracefully stop a running server: no new work, finish what's started.

    Stops the ``serve_forever`` dispatch loop (``shutdown()`` is a no-op
    when something — a SIGTERM handler, say — already stopped it), then
    waits up to ``grace_s`` for every in-flight handler to leave its
    route body.  Must be called from a different thread than the one
    running ``serve_forever``.

    Returns:
        True when the server drained inside the grace period; False when
        it expired with handlers still running (counted on
        ``http.drain_timeouts``) — the caller should ``server_close()``
        regardless.
    """
    server.shutdown()
    deadline = time.monotonic() + grace_s
    while getattr(server, "inflight", 0):
        if time.monotonic() >= deadline:
            perf.count("http.drain_timeouts")
            return False
        time.sleep(0.02)
    return True


def _as_catalog(service_or_catalog: Any):
    """Accept a lone service (wrapped in a one-entry catalog) or a catalog.

    Anything that is not already a :class:`~repro.catalog.catalog.Catalog`
    is treated as a single service — including delegating proxies the
    tests use — so duck-typed service wrappers keep working.
    """
    from repro.catalog.catalog import Catalog

    if isinstance(service_or_catalog, Catalog):
        return service_or_catalog
    return Catalog.of(service_or_catalog)


def make_server(
    service: Any, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Build a threading HTTP server bound to a service or catalog.

    A bare :class:`~repro.serving.service.CategorizationService` is
    wrapped in a one-entry :class:`~repro.catalog.catalog.Catalog`, so
    single-table callers keep working unchanged.  ``port=0`` picks a
    free port (read it back from ``server.server_address``) — the form
    tests and the CLI's default use.  Call ``serve_forever()`` (or
    :func:`serve_in_thread`) to run.
    """
    handler = type(
        "BoundHandler", (ServiceHandler,), {"catalog": _as_catalog(service)}
    )
    return _Server((host, port), handler)


def serve_in_thread(server: ThreadingHTTPServer) -> threading.Thread:
    """Run ``server`` on a daemon thread (tests and `repro serve`)."""
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread
