"""Warm-start snapshots: persist a table + statistics epoch, reload fast.

Cold boot pays two big bills: materializing the relation (CSV parse or
synthetic generation, per-value coercion) and building the workload
statistics.  Both are pure functions of state that the serving layer
already holds, so ``repro serve --warm-start DIR`` persists them once and
a restarted server resumes from disk:

* ``table.snap`` — the relation's :class:`ColumnStore
  <repro.relational.backends.ColumnStore>` typed arrays + dictionaries
  (``ColumnStore.dump``); loading is a handful of ``frombytes`` memcpys.
* ``stats.snap`` — the current statistics epoch: every count table, the
  packed range-index endpoint arrays, the epoch number, and the **journal
  watermark** — the :class:`~repro.serving.journal.SpillJournal` sequence
  this snapshot covers.  Queries recorded after the watermark live only
  in the journal and are replayed on top of the loaded statistics.
* ``journal/`` — the spill journal itself (owned by
  :mod:`repro.serving.journal`).

The decision table lives in docs/serving.md; the contract here is
fail-stop honesty: :func:`load_warm` either returns state whose every
CRC, version, and schema fingerprint checked out, or raises
:class:`~repro.relational.snapio.SnapshotMismatch` — the caller counts
the fallback (``warmstart.fallback{reason=...}``) and boots cold.  A
snapshot is never "partially" trusted.

Both snapshot files are written atomically (temp + fsync + rename); the
``warmstart.rename`` fault site fires between the two so crash tests can
die with the temp file on disk and prove the old snapshot still serves.
"""

from __future__ import annotations

from array import array
from collections import Counter
from pathlib import Path
from typing import Any

from repro import perf
from repro.relational.backends import ColumnStore, schema_fingerprint
from repro.relational.schema import TableSchema
from repro.relational.snapio import (
    Container,
    SnapshotMismatch,
    base_manifest,
    write_container,
)
from repro.relational.table import Table
from repro.serving.faults import NULL_INJECTOR, FaultInjector
from repro.workload.counts import (
    AttributeUsageCounts,
    OccurrenceCounts,
    RangeIndex,
    SplitPointsTable,
)
from repro.workload.preprocess import WorkloadStatistics

TABLE_SNAPSHOT = "table.snap"
STATS_SNAPSHOT = "stats.snap"

#: Bump when the statistics manifest/block layout changes.
STATS_FORMAT_VERSION = 1


class WarmState:
    """Everything :func:`load_warm` recovered from a snapshot directory."""

    __slots__ = ("table", "statistics", "epoch", "journal_seq")

    def __init__(
        self,
        table: Table,
        statistics: WorkloadStatistics,
        epoch: int,
        journal_seq: int,
    ) -> None:
        self.table = table
        self.statistics = statistics
        self.epoch = epoch
        self.journal_seq = journal_seq


# -- write side --------------------------------------------------------------


def _columnar_store(table: Table) -> ColumnStore:
    """The table's data as a ColumnStore (converting if need be).

    The columnar and sharded backends already hold one; the row backend
    pays a one-time conversion at snapshot time (coercion already
    happened on load, so this is a straight columnar re-pack).
    """
    backend = table._backend
    if isinstance(backend, ColumnStore):
        return backend
    base = getattr(backend, "_store", None)  # sharded keeps a base store
    if isinstance(base, ColumnStore):
        return base
    store = ColumnStore(table.schema)
    store.load_columns(
        {name: table.column(name) for name in table.schema.names()}
    )
    return store


def write_table_snapshot(
    table: Table,
    directory: str | Path,
    faults: FaultInjector | None = None,
) -> Path:
    """Dump the relation to ``DIR/table.snap`` atomically; return the path.

    The relation is immutable while serving (only statistics change), so
    this runs once per cold boot — warm boots find it already on disk.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    injector = faults or NULL_INJECTOR
    path = directory / TABLE_SNAPSHOT
    with perf.span("warmstart.dump_table"):
        _columnar_store(table).dump(
            table.schema,
            path,
            rename_hook=lambda: injector.fire("warmstart.rename"),
        )
    return path


def write_stats_snapshot(
    statistics: WorkloadStatistics,
    directory: str | Path,
    epoch: int,
    journal_seq: int,
    faults: FaultInjector | None = None,
) -> Path:
    """Dump one statistics epoch to ``DIR/stats.snap`` atomically.

    ``journal_seq`` is the watermark: every journal record with a
    sequence <= it is already folded into ``statistics``, so recovery
    replays strictly after it.  Callers pass a *published* epoch's
    statistics (never the live pending state) so the snapshot is
    internally consistent.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    injector = faults or NULL_INJECTOR
    schema = statistics.schema
    manifest = base_manifest("workload_stats", STATS_FORMAT_VERSION)
    manifest["table"] = schema.name
    manifest["schema"] = schema_fingerprint(schema)
    manifest["epoch"] = epoch
    manifest["journal_seq"] = journal_seq
    usage = statistics.usage
    manifest["total_queries"] = usage.total_queries
    manifest["usage"] = dict(usage._counts)
    manifest["occurrences"] = {
        attribute: sorted(
            ([value, count] for value, count in table._counts.items()),
            key=lambda pair: repr(pair[0]),
        )
        for attribute, table in statistics._occurrences.items()
    }
    manifest["splitpoints"] = {
        attribute: {
            "interval": table.separation_interval,
            "starts": sorted(table._starts.items()),
            "ends": sorted(table._ends.items()),
        }
        for attribute, table in statistics._splitpoints.items()
    }
    blocks: list[tuple[str, bytes]] = []
    ranges: list[str] = []
    for attribute, index in statistics._range_indexes.items():
        index.finalize()
        ranges.append(attribute)
        blocks.append((f"lows:{attribute}", index._lows.tobytes()))
        blocks.append((f"highs:{attribute}", index._highs.tobytes()))
    manifest["ranges"] = ranges
    path = directory / STATS_SNAPSHOT
    with perf.span("warmstart.dump_stats"):
        write_container(
            path,
            manifest,
            blocks,
            rename_hook=lambda: injector.fire("warmstart.rename"),
        )
    return path


# -- read side ---------------------------------------------------------------


def _load_statistics(
    schema: TableSchema, path: Path
) -> tuple[WorkloadStatistics, int, int]:
    """Rebuild (statistics, epoch, journal_seq) from ``stats.snap``."""
    with Container(path) as container:
        manifest = container.manifest
        if manifest.get("kind") != "workload_stats":
            raise SnapshotMismatch(
                f"{path}: not a statistics snapshot "
                f"(kind={manifest.get('kind')!r})",
                reason="format",
            )
        if manifest.get("version") != STATS_FORMAT_VERSION:
            raise SnapshotMismatch(
                f"{path}: statistics format version "
                f"{manifest.get('version')} (this build reads "
                f"{STATS_FORMAT_VERSION})",
                reason="version",
            )
        if manifest.get("schema") != schema_fingerprint(schema):
            raise SnapshotMismatch(
                f"{path}: snapshot schema does not match {schema.name!r}",
                reason="schema",
            )
        epoch = manifest.get("epoch")
        journal_seq = manifest.get("journal_seq")
        if not isinstance(epoch, int) or not isinstance(journal_seq, int):
            raise SnapshotMismatch(
                f"{path}: bad epoch/journal_seq "
                f"({epoch!r}/{journal_seq!r})",
                reason="format",
            )
        usage = AttributeUsageCounts()
        usage._counts = Counter(
            {str(k): int(v) for k, v in manifest.get("usage", {}).items()}
        )
        usage._total_queries = int(manifest.get("total_queries", 0))
        occurrences: dict[str, OccurrenceCounts] = {}
        for attribute, pairs in manifest.get("occurrences", {}).items():
            table = OccurrenceCounts(attribute)
            table._counts = Counter(
                {_occ_key(value): int(count) for value, count in pairs}
            )
            occurrences[attribute] = table
        splitpoints: dict[str, SplitPointsTable] = {}
        for attribute, spec in manifest.get("splitpoints", {}).items():
            table = SplitPointsTable(attribute, float(spec["interval"]))
            table._starts = Counter(
                {float(point): int(count) for point, count in spec["starts"]}
            )
            table._ends = Counter(
                {float(point): int(count) for point, count in spec["ends"]}
            )
            splitpoints[attribute] = table
        range_indexes: dict[str, RangeIndex] = {}
        for attribute in manifest.get("ranges", []):
            index = RangeIndex(attribute)
            lows = array("d")
            lows.frombytes(container.block(f"lows:{attribute}"))
            highs = array("d")
            highs.frombytes(container.block(f"highs:{attribute}"))
            if len(lows) != len(highs):
                raise SnapshotMismatch(
                    f"{path}: range index {attribute!r} has {len(lows)} "
                    f"lows but {len(highs)} highs",
                    reason="format",
                )
            index._lows = lows
            index._highs = highs
            index._finalized = True  # dumped post-finalize, still sorted
            range_indexes[attribute] = index
        statistics = WorkloadStatistics(
            schema, usage, occurrences, splitpoints, range_indexes
        )
        return statistics, epoch, journal_seq


def _occ_key(value: Any) -> Any:
    """Occurrence-table keys round-tripped through JSON.

    JSON preserves str/int/float/bool exactly, which is the full set of
    SQL literal types an IN-clause can contain; anything else in a
    snapshot means the format changed without a version bump.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise SnapshotMismatch(
        f"unexpected occurrence key type {type(value).__name__}",
        reason="format",
    )


def load_warm(
    schema: TableSchema,
    directory: str | Path,
    backend: str = "columnar",
    backend_options: dict[str, Any] | None = None,
) -> WarmState:
    """Load a full warm state from a snapshot directory, or fail stop.

    The columnar backend adopts the deserialized store zero-copy; the
    row and sharded backends rebuild from the loaded columns (still far
    cheaper than re-parsing a CSV — coercion is skipped entirely).

    Raises:
        SnapshotMismatch: missing files, CRC/version/schema mismatch —
            the caller falls back to cold start and counts why.
    """
    directory = Path(directory)
    with perf.span("warmstart.load"):
        store, rows = ColumnStore.load(schema, directory / TABLE_SNAPSHOT)
        statistics, epoch, journal_seq = _load_statistics(
            schema, directory / STATS_SNAPSHOT
        )
        if backend == "columnar":
            table = Table.from_backend(schema, store, rows)
        else:
            table = Table.from_columns(
                schema,
                {name: store.column(name) for name in schema.names()},
                backend=backend,
                coerce=False,
                backend_options=backend_options,
            )
    return WarmState(table, statistics, epoch, journal_seq)
