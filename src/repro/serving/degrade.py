"""Deadline enforcement and the graceful-degradation ladder.

An interactive front end would rather show *something* organized within
its latency budget than the perfect tree late (the paper's whole premise
is reducing browsing effort — a categorization that arrives after the
user gave up reduces nothing).  The ladder, descending:

1. **full** — the complete cost-based tree, no compromise.
2. **truncated** — the build hit its deadline between levels; the levels
   already attached are returned (``tree.truncated``).  This falls out
   of the engine's ``checkpoint`` hook: the predicate returning False
   stops growth but keeps the work, so a timeout converts paid work into
   a shallower tree instead of discarding it.
3. **single_level** — when the remaining budget is too small to even
   start the full build (per an EWMA estimate of level cost), build just
   the cheapest single-attribute level (``max_levels=1``) — the paper's
   one-level categorization, still cost-ranked.
4. **showtuples** — the deadline is effectively gone: return the plain
   result set, exactly what a system without categorization shows.

The ladder never raises :class:`~repro.serving.errors.DeadlineExceeded`
to callers — it bottoms out at SHOWTUPLES, which always succeeds in
O(1).  The rung actually served is recorded in the labeled perf counter
``serve.rung{rung=...}`` and on the decision trace, so degradation is
observable, never silent.

Fault site: ``degrade.level`` fires inside the between-levels checkpoint;
an armed delay simulates a slow level, and an armed failure forces the
checkpoint to stop the build (descending the ladder) rather than
escaping the engine.
"""

from __future__ import annotations

import time
from typing import Callable

from repro import perf
from repro.core.algorithm import LevelByLevelCategorizer
from repro.core.tree import CategoryTree
from repro.relational.query import SelectQuery
from repro.relational.table import RowSet
from repro.serving.errors import Degraded
from repro.serving.faults import NULL_INJECTOR, FaultInjector, InjectedFault

#: Ladder rungs, best first.
RUNG_FULL = "full"
RUNG_TRUNCATED = "truncated"
RUNG_SINGLE_LEVEL = "single_level"
RUNG_SHOWTUPLES = "showtuples"

RUNGS = (RUNG_FULL, RUNG_TRUNCATED, RUNG_SINGLE_LEVEL, RUNG_SHOWTUPLES)


class Deadline:
    """A request's time budget against an injectable monotonic clock.

    Args:
        budget_ms: milliseconds allowed; None means no deadline.
        clock: monotonic time source.
    """

    def __init__(
        self,
        budget_ms: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_ms is not None and budget_ms < 0:
            raise ValueError(f"deadline must be >= 0 ms, got {budget_ms}")
        self.budget_ms = budget_ms
        self._clock = clock
        self._started = clock()

    @property
    def elapsed_s(self) -> float:
        return self._clock() - self._started

    @property
    def remaining_s(self) -> float:
        """Seconds left; ``inf`` when there is no deadline."""
        if self.budget_ms is None:
            return float("inf")
        return self.budget_ms / 1000.0 - self.elapsed_s

    @property
    def expired(self) -> bool:
        return self.remaining_s <= 0.0


class DegradationLadder:
    """Run categorization under a deadline, descending the ladder as needed.

    The ladder is stateful only in its EWMA estimate of per-level build
    cost, so one instance is shared across requests while the engine
    itself is passed per call (the service builds a fresh engine against
    each pinned epoch's statistics — sharing an engine across epochs
    would read stale counts).

    Args:
        faults: injector wired to the ``degrade.level`` site.
        level_cost_hint_s: seed for the EWMA estimate of per-level build
            cost, used to skip rungs that cannot fit the remaining
            budget.  Tests pass a large hint to force ``single_level``
            deterministically.
        ewma_alpha: weight of the newest observation in the estimate.
    """

    def __init__(
        self,
        faults: FaultInjector | None = None,
        level_cost_hint_s: float = 0.0,
        ewma_alpha: float = 0.3,
    ) -> None:
        self._faults = faults or NULL_INJECTOR
        self._level_cost_s = level_cost_hint_s
        self._ewma_alpha = ewma_alpha

    @property
    def level_cost_s(self) -> float:
        """Current EWMA estimate of one level's build cost in seconds."""
        return self._level_cost_s

    def categorize(
        self,
        categorizer: LevelByLevelCategorizer,
        rows: RowSet,
        query: SelectQuery | None,
        deadline: Deadline,
        *,
        collect_trace: bool = False,
        max_rung: str = RUNG_FULL,
    ) -> tuple[CategoryTree | None, str, Degraded | None]:
        """Produce the best response the deadline allows.

        ``max_rung`` caps the *best* rung attempted (a cost budget
        independent of wall-clock): ``single_level`` skips the deep
        build, ``showtuples`` skips categorization entirely.

        Returns:
            ``(tree, rung, degraded)`` — ``tree`` is None only on the
            SHOWTUPLES rung; ``degraded`` is None only on the full rung.
            Never raises for deadline reasons.
        """
        tree, rung, reason = self._run_ladder(
            categorizer, rows, query, deadline, collect_trace, max_rung
        )
        perf.count("serve.rung", rung=rung)
        degraded = None if rung == RUNG_FULL else Degraded(rung, reason)
        if tree is not None and tree.decision_trace is not None:
            tree.decision_trace.served_rung = rung
        return tree, rung, degraded

    def _run_ladder(
        self,
        categorizer: LevelByLevelCategorizer,
        rows: RowSet,
        query: SelectQuery | None,
        deadline: Deadline,
        collect_trace: bool,
        max_rung: str,
    ) -> tuple[CategoryTree | None, str, str]:
        if deadline.expired:
            return None, RUNG_SHOWTUPLES, "deadline"
        if max_rung == RUNG_SHOWTUPLES:
            return None, RUNG_SHOWTUPLES, "budget"

        # Not enough budget to fit even one estimated level (or the caller
        # capped the rung): skip straight to the cheapest rung that can
        # still finish.
        if max_rung == RUNG_SINGLE_LEVEL or (
            self._level_cost_s > 0.0 and deadline.remaining_s < self._level_cost_s
        ):
            reason = "budget" if max_rung == RUNG_SINGLE_LEVEL else "deadline"
            tree = self._single_level(
                categorizer, rows, query, deadline, collect_trace
            )
            if tree is not None:
                return tree, RUNG_SINGLE_LEVEL, reason
            return None, RUNG_SHOWTUPLES, reason

        started = deadline.elapsed_s
        tree = categorizer.categorize(
            rows,
            query,
            collect_trace=collect_trace,
            checkpoint=lambda: self._checkpoint(deadline),
        )
        self._observe(deadline.elapsed_s - started, self._depth(tree))

        if not tree.truncated:
            return tree, RUNG_FULL, ""
        if tree.root.children:
            return tree, RUNG_TRUNCATED, "deadline"
        # Truncated before level 1 even built: nothing categorized.
        return None, RUNG_SHOWTUPLES, "deadline"

    def _checkpoint(self, deadline: Deadline) -> bool:
        """Continue-predicate between levels; False stops (keeps) the build."""
        try:
            self._faults.fire("degrade.level")
        except InjectedFault:
            # An injected level failure degrades instead of escaping.
            return False
        return not deadline.expired

    def _single_level(
        self,
        categorizer: LevelByLevelCategorizer,
        rows: RowSet,
        query: SelectQuery | None,
        deadline: Deadline,
        collect_trace: bool,
    ) -> CategoryTree | None:
        shallow = categorizer.config.with_overrides(max_levels=1)
        original = categorizer.config
        try:
            categorizer.config = shallow
            tree = categorizer.categorize(
                rows,
                query,
                collect_trace=collect_trace,
                checkpoint=lambda: self._checkpoint(deadline),
            )
        finally:
            categorizer.config = original
        if tree.truncated and not tree.root.children:
            return None
        return tree

    def _observe(self, elapsed_s: float, levels: int) -> None:
        if levels <= 0:
            return
        sample = elapsed_s / levels
        if self._level_cost_s <= 0.0:
            self._level_cost_s = sample
        else:
            a = self._ewma_alpha
            self._level_cost_s = a * sample + (1.0 - a) * self._level_cost_s
        perf.gauge("degrade.level_cost_est_s", self._level_cost_s)

    @staticmethod
    def _depth(tree: CategoryTree) -> int:
        depth = 0
        frontier = [tree.root]
        while frontier:
            children = [c for node in frontier for c in node.children]
            if not children:
                break
            depth += 1
            frontier = children
        return depth
