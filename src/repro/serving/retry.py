"""Bounded retry, circuit breaking, and lossless load shedding.

Epoch publishes (:meth:`SnapshotStore.publish_pending
<repro.serving.snapshot.SnapshotStore.publish_pending>`) can fail
transiently or run slow under pressure.  Three layers keep ingestion
healthy without ever losing a logged query:

1. :class:`RetryPolicy` — bounded attempts with exponential backoff and
   deterministic jitter.  A failed publish leaves the pending delta
   intact, so retrying is always safe.
2. :class:`CircuitBreaker` — classic closed → open → half-open.  Both
   failures *and slow successes* (publish latency above a threshold)
   count against the breaker: a publish that technically succeeds in
   800 ms is still starving readers of fresh epochs and burning the
   ingestion thread.
3. :class:`ResilientIngestor` — the composition.  While the breaker is
   closed, ``record_query`` appends + publishes with retry.  While it is
   open, publishes are *shed*: queries still append to the snapshot
   store's pending delta and their SQL is mirrored into a bounded
   **spill log**.  When the breaker closes again, the spill replays —
   the conservation invariant (checked by tests) is that every query
   ever recorded is either published, pending, or spilled; none vanish.

Only a full spill raises (:class:`~repro.serving.errors.IngestionStalled`):
silently dropping logged queries would skew ``NAttr``/``N`` statistics
forever, which is the one failure this layer refuses to absorb.

With a :class:`~repro.serving.journal.SpillJournal` attached, every
*absorbed* query (pending, published, or spilled — not a refused one) is
also appended to the durable journal before ``record_query`` returns, so
the front end's ack happens-after the disk write and the conservation
invariant extends across process death: a restarted server replays the
journal suffix past its snapshot watermark (docs/serving.md, "Durability
& warm start").  Journal I/O errors are counted
(``journal.append_failures``) but do not fail ingestion — availability
over durability, by choice; crank ``fsync="always"`` (the default) for
the reverse trade.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable

from repro import perf
from repro.serving.errors import IngestionStalled, PublishError
from repro.serving.journal import SpillJournal
from repro.serving.snapshot import SnapshotStore
from repro.workload.model import WorkloadQuery


class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    Args:
        attempts: total tries (1 = no retry).
        base_delay_s: sleep before the first retry; doubles each retry.
        max_delay_s: backoff ceiling.
        jitter: ± fraction of the delay drawn from the seeded RNG.
        sleeper: injectable sleep (tests pass a recording fake).
        seed: RNG seed for the jitter — retries are reproducible.
    """

    def __init__(
        self,
        attempts: int = 3,
        base_delay_s: float = 0.01,
        max_delay_s: float = 0.5,
        jitter: float = 0.25,
        sleeper: Callable[[float], None] = time.sleep,
        seed: int = 0,
    ) -> None:
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        self.attempts = attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self._sleeper = sleeper
        self._rng = random.Random(seed)

    def delay_s(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (0-based), jittered."""
        raw = min(self.base_delay_s * (2**retry_index), self.max_delay_s)
        if self.jitter:
            raw *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return max(raw, 0.0)

    def call(self, fn: Callable[[], float]) -> float:
        """Run ``fn`` with retries; re-raise the last error when exhausted.

        Only :class:`~repro.serving.errors.PublishError` is retried —
        anything else is a bug, not a transient condition.
        """
        last: PublishError | None = None
        for attempt in range(self.attempts):
            try:
                return fn()
            except PublishError as exc:
                last = exc
                perf.count("retry.publish_failures")
                if attempt + 1 < self.attempts:
                    self._sleeper(self.delay_s(attempt))
        assert last is not None
        perf.count("retry.exhausted")
        raise last


class CircuitBreaker:
    """Closed → open → half-open breaker over publish outcomes.

    Args:
        failure_threshold: consecutive failures that open the breaker.
        slow_threshold_s: a successful publish slower than this counts as
            a failure (it is starving readers even though it "worked").
        reset_timeout_s: how long the breaker stays open before allowing
            one half-open probe.
        clock: monotonic time source (injectable for tests).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        slow_threshold_s: float = 0.25,
        reset_timeout_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.slow_threshold_s = slow_threshold_s
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """Current state, promoting open → half-open when the timeout ran."""
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = self.HALF_OPEN
        return self._state

    def allows(self) -> bool:
        """May a publish be attempted right now?"""
        return self.state != self.OPEN

    def record_success(self, latency_s: float) -> None:
        """Feed back a successful publish; slow success still counts bad."""
        if latency_s > self.slow_threshold_s:
            perf.count("breaker.slow_publishes")
            self._trip()
            return
        if self._state != self.CLOSED:
            perf.count("breaker.closes")
        self._state = self.CLOSED
        self._failures = 0

    def record_failure(self) -> None:
        """Feed back a failed publish."""
        self._trip()

    def _trip(self) -> None:
        self._failures += 1
        # A half-open probe that fails re-opens immediately; while closed,
        # only the threshold-th consecutive bad outcome opens the breaker.
        if self._state == self.HALF_OPEN or self._failures >= self.failure_threshold:
            if self._state != self.OPEN:
                perf.count("breaker.opens")
            self._state = self.OPEN
            self._opened_at = self._clock()
            perf.gauge("breaker.open", 1)
        if self._state == self.CLOSED:
            perf.gauge("breaker.open", 0)


class ResilientIngestor:
    """``record_query`` that survives slow and failing epoch publishes.

    Composition of a :class:`~repro.serving.snapshot.SnapshotStore`, a
    :class:`RetryPolicy`, and a :class:`CircuitBreaker`; see the module
    docstring for the shedding/replay protocol.

    Args:
        store: the snapshot store to ingest into.
        retry: retry policy for failed publishes.
        breaker: circuit breaker fed publish outcomes.
        spill_limit: max queries held in the spill log while shedding.
        journal: optional durable write-ahead journal; every absorbed
            query is appended before ``record_query`` returns.
    """

    def __init__(
        self,
        store: SnapshotStore,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        spill_limit: int = 1024,
        journal: SpillJournal | None = None,
    ) -> None:
        self.store = store
        self.retry = retry or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.spill_limit = spill_limit
        self.journal = journal
        self._lock = threading.Lock()
        self._spill: list[WorkloadQuery] = []
        self._recorded = 0
        self._published = 0
        self._shed = 0

    # -- introspection (conservation invariant) ------------------------------

    @property
    def recorded(self) -> int:
        """Queries ever handed to :meth:`record_query`."""
        return self._recorded

    @property
    def published(self) -> int:
        """Queries folded into some published epoch."""
        return self._published

    @property
    def spilled(self) -> int:
        """Queries currently waiting in the spill log."""
        return len(self._spill)

    def conserved(self) -> bool:
        """Every recorded query is published, pending, or spilled."""
        return (
            self._published + self.store.pending_count + len(self._spill)
            == self._recorded
        )

    # -- ingestion -----------------------------------------------------------

    def record_query(self, query: WorkloadQuery) -> None:
        """Ingest one logged query; shed the publish if the breaker is open.

        Raises:
            IngestionStalled: only when shedding *and* the spill log is
                full — the single loud failure mode.
        """
        with self._lock:
            self._recorded += 1
            if not self.breaker.allows():
                self._shed_locked(query)
                self._journal_locked(query)
                return
            # Breaker closed (or half-open probe): replay any spill first
            # so epochs apply queries in arrival order.
            backlog = self._spill + [query]
            self._spill = []
            for item in backlog:
                self.store.append(item)
            # The query is absorbed (pending at worst): make it durable
            # before anything acks it.  A publish failure below does not
            # un-absorb it, so journaling here covers every return path.
            self._journal_locked(query)
            if not self.store.should_publish:
                return
            pending = self.store.pending_count
            try:
                latency = self.retry.call(self.store.publish_pending)
            except PublishError:
                self.breaker.record_failure()
                # Publish failed after retries: queries are still pending
                # in the store (publish is all-or-nothing), nothing lost.
                perf.count("ingest.publish_shed")
                return
            self.breaker.record_success(latency)
            # Even a slow success that tripped the breaker *did* land the
            # data — only the next publishes get shed.
            self._published += pending

    def _shed_locked(self, query: WorkloadQuery) -> None:
        if len(self._spill) >= self.spill_limit:
            perf.count("ingest.stalled")
            self._recorded -= 1  # refused, not absorbed
            raise IngestionStalled(
                f"spill log full ({self.spill_limit} queries) while the "
                "circuit breaker is open",
                spilled=len(self._spill),
            )
        self._spill.append(query)
        self._shed += 1
        perf.count("ingest.spilled")

    def _journal_locked(self, query: WorkloadQuery) -> None:
        """Durably journal an absorbed query (best effort on I/O errors)."""
        if self.journal is None:
            return
        try:
            self.journal.append(query.to_sql())
        except OSError:
            # Disk trouble must not take ingestion down with it; the
            # in-memory path stays conserved, only crash-durability of
            # this one query is lost — and counted.
            perf.count("journal.append_failures")

    def restore(self, query: WorkloadQuery) -> None:
        """Re-ingest a journal-replayed query WITHOUT re-journaling it.

        Recovery's half of the conservation invariant: the query counts
        as recorded (it was, in a previous life) and lands in the pending
        delta; the caller publishes via :meth:`flush` when the replay
        batch is done.
        """
        with self._lock:
            self._recorded += 1
            self.store.append(query)

    def flush(self) -> None:
        """Replay any spill and publish everything pending (best effort).

        Raises:
            PublishError: when the final publish still fails after
                retries; state remains conserved (queries stay pending).
        """
        with self._lock:
            for item in self._spill:
                self.store.append(item)
            self._spill = []
            pending = self.store.pending_count
            if pending == 0:
                return
            latency = self.retry.call(self.store.publish_pending)
            self.breaker.record_success(latency)
            self._published += pending
