"""Exception taxonomy for the serving path.

The offline reproduction raises bare ``ValueError``s; a long-lived service
needs a typed contract so callers (the HTTP front end, the CLI, batch
drivers) can map failures to responses without string matching:

* :class:`InvalidRequest` — the caller's fault: malformed SQL, an unknown
  table or attribute, a nonsensical deadline.  Maps to HTTP 400.
* :class:`DeadlineExceeded` — a request's time budget ran out.  Internal
  to the degradation ladder: :meth:`CategorizationService.categorize
  <repro.serving.service.CategorizationService.categorize>` never lets it
  escape — the ladder bottoms out at SHOWTUPLES instead.
* :class:`PublishError` — an epoch publish failed transiently (injected
  fault, contention).  Retried with backoff; repeated failures trip the
  circuit breaker.
* :class:`IngestionStalled` — the breaker's spill log is full: ingestion
  has been shedding load longer than the spill can absorb.  The one
  ingestion error that is *not* silently absorbed, because dropping
  logged queries silently would skew the statistics forever.
* :class:`Degraded` — **not an exception.**  The explicit, non-error
  signal that a response was served below the full rung; carried on the
  response object so callers can distinguish "full tree" from "best
  effort under pressure" without exception control flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

#: Stable machine-readable error codes shared by both HTTP front ends.
#: Every error body on the wire is ``{"error": {"code", "message",
#: "detail"}}`` with ``code`` drawn from this closed set — clients switch
#: on the code, never on message text.
CODE_INVALID_REQUEST = "InvalidRequest"
CODE_SQL_ERROR = "SqlError"
CODE_UNKNOWN_TABLE = "UnknownTable"
CODE_SHED = "Shed"
CODE_INGESTION_STALLED = "IngestionStalled"
CODE_NOT_FOUND = "NotFound"
CODE_INTERNAL = "InternalError"

ERROR_CODES = frozenset(
    {
        CODE_INVALID_REQUEST,
        CODE_SQL_ERROR,
        CODE_UNKNOWN_TABLE,
        CODE_SHED,
        CODE_INGESTION_STALLED,
        CODE_NOT_FOUND,
        CODE_INTERNAL,
    }
)


def error_payload(
    code: str, message: str, detail: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """The one error-body serializer both front ends share.

    ``detail`` carries structured context (reason slug, spill depth,
    available tables); it is always present, possibly empty, so clients
    can index into it unconditionally.
    """

    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return {"error": {"code": code, "message": message, "detail": dict(detail or {})}}


def error_response(exc: Exception) -> tuple[int, dict[str, Any]]:
    """Map a serving exception to ``(http_status, body)``.

    The one place both front ends turn exceptions into wire errors, so
    status codes and body shapes cannot drift apart.  Overload shedding
    is front-end-specific (the threading server has no admission queue)
    and handled where it is raised, with :func:`error_payload` and
    :data:`CODE_SHED`.
    """
    if isinstance(exc, UnknownTable):
        return 404, error_payload(exc.code, str(exc), exc.detail())
    if isinstance(exc, InvalidRequest):
        return 400, error_payload(exc.code, str(exc), exc.detail())
    if isinstance(exc, IngestionStalled):
        return 503, error_payload(
            CODE_INGESTION_STALLED, str(exc), {"spilled": exc.spilled}
        )
    return 500, error_payload(CODE_INTERNAL, f"internal error: {exc}")


class ServingError(Exception):
    """Base class for every error the serving layer raises."""


class InvalidRequest(ServingError):
    """The request itself is unserveable (bad SQL, unknown relation...).

    ``reason`` is a short machine-readable slug (``sql``, ``table``,
    ``deadline``); the message carries the human detail, including the
    position/snippet when the underlying failure was a
    :class:`~repro.sql.errors.SqlError`.
    """

    def __init__(self, message: str, reason: str = "request") -> None:
        super().__init__(message)
        self.reason = reason

    @property
    def code(self) -> str:
        """Wire code: SQL parse failures get their own stable code."""
        return CODE_SQL_ERROR if self.reason == "sql" else CODE_INVALID_REQUEST

    def detail(self) -> dict[str, Any]:
        return {"reason": self.reason}


class UnknownTable(InvalidRequest):
    """The request names a relation this catalog does not serve.

    A subclass of :class:`InvalidRequest` so existing ``except`` clauses
    keep working, but mapped to HTTP 404 with its own stable code and a
    ``detail`` listing the relations the server *does* hold.
    """

    def __init__(self, table: str, available: tuple[str, ...] = ()) -> None:
        served = ", ".join(sorted(available)) or "none"
        super().__init__(
            f"unknown table {table!r} (this server holds: {served})",
            reason="table",
        )
        self.table = table
        self.available = tuple(sorted(available))

    @property
    def code(self) -> str:
        return CODE_UNKNOWN_TABLE

    def detail(self) -> dict[str, Any]:
        return {
            "reason": self.reason,
            "table": self.table,
            "available": list(self.available),
        }


class DeadlineExceeded(ServingError):
    """A request's deadline ran out before the current rung finished."""

    def __init__(self, message: str, elapsed_s: float | None = None) -> None:
        super().__init__(message)
        self.elapsed_s = elapsed_s


class PublishError(ServingError):
    """A transient epoch-publish failure (retryable)."""


class IngestionStalled(ServingError):
    """The spill log is full while the circuit breaker is shedding load."""

    def __init__(self, message: str, spilled: int = 0) -> None:
        super().__init__(message)
        self.spilled = spilled


@dataclass(frozen=True)
class Degraded:
    """Non-error signal: the response was served below the full rung.

    Attributes:
        rung: the degradation-ladder step that answered (``truncated``,
            ``single_level``, or ``showtuples``).
        reason: why the ladder descended (``deadline``, ``error``).
    """

    rung: str
    reason: str

    def __str__(self) -> str:
        return f"degraded to {self.rung} ({self.reason})"
