"""Exception taxonomy for the serving path.

The offline reproduction raises bare ``ValueError``s; a long-lived service
needs a typed contract so callers (the HTTP front end, the CLI, batch
drivers) can map failures to responses without string matching:

* :class:`InvalidRequest` — the caller's fault: malformed SQL, an unknown
  table or attribute, a nonsensical deadline.  Maps to HTTP 400.
* :class:`DeadlineExceeded` — a request's time budget ran out.  Internal
  to the degradation ladder: :meth:`CategorizationService.categorize
  <repro.serving.service.CategorizationService.categorize>` never lets it
  escape — the ladder bottoms out at SHOWTUPLES instead.
* :class:`PublishError` — an epoch publish failed transiently (injected
  fault, contention).  Retried with backoff; repeated failures trip the
  circuit breaker.
* :class:`IngestionStalled` — the breaker's spill log is full: ingestion
  has been shedding load longer than the spill can absorb.  The one
  ingestion error that is *not* silently absorbed, because dropping
  logged queries silently would skew the statistics forever.
* :class:`Degraded` — **not an exception.**  The explicit, non-error
  signal that a response was served below the full rung; carried on the
  response object so callers can distinguish "full tree" from "best
  effort under pressure" without exception control flow.
"""

from __future__ import annotations

from dataclasses import dataclass


class ServingError(Exception):
    """Base class for every error the serving layer raises."""


class InvalidRequest(ServingError):
    """The request itself is unserveable (bad SQL, unknown relation...).

    ``reason`` is a short machine-readable slug (``sql``, ``table``,
    ``deadline``); the message carries the human detail, including the
    position/snippet when the underlying failure was a
    :class:`~repro.sql.errors.SqlError`.
    """

    def __init__(self, message: str, reason: str = "request") -> None:
        super().__init__(message)
        self.reason = reason


class DeadlineExceeded(ServingError):
    """A request's deadline ran out before the current rung finished."""

    def __init__(self, message: str, elapsed_s: float | None = None) -> None:
        super().__init__(message)
        self.elapsed_s = elapsed_s


class PublishError(ServingError):
    """A transient epoch-publish failure (retryable)."""


class IngestionStalled(ServingError):
    """The spill log is full while the circuit breaker is shedding load."""

    def __init__(self, message: str, spilled: int = 0) -> None:
        super().__init__(message)
        self.spilled = spilled


@dataclass(frozen=True)
class Degraded:
    """Non-error signal: the response was served below the full rung.

    Attributes:
        rung: the degradation-ladder step that answered (``truncated``,
            ``single_level``, or ``showtuples``).
        reason: why the ladder descended (``deadline``, ``error``).
    """

    rung: str
    reason: str

    def __str__(self) -> str:
        return f"degraded to {self.rung} ({self.reason})"
