"""Fault-tolerant serving layer over the categorization pipeline.

The offline reproduction runs once and exits; this package turns it into
a long-lived service (the setting the paper assumes — categorization
inside an interactive search front end) that stays correct and available
under concurrent ingestion, deadlines, and injected faults:

* :mod:`~repro.serving.service` — the request/response front end with
  trace ids and an LRU+TTL result cache.
* :mod:`~repro.serving.snapshot` — epoch-based statistics snapshots:
  readers pin immutable epochs, writers batch and publish atomically.
* :mod:`~repro.serving.degrade` — deadlines and the degradation ladder
  (full → truncated → single level → SHOWTUPLES).
* :mod:`~repro.serving.retry` — backoff, circuit breaker, lossless spill.
* :mod:`~repro.serving.errors` — the typed exception taxonomy.
* :mod:`~repro.serving.faults` — deterministic fault injection.
* :mod:`~repro.serving.http` — the stdlib threading HTTP front end
  (`repro serve`).
* :mod:`~repro.serving.aserve` — the asyncio front end: keep-alive event
  loop, in-flight request coalescing, admission control / load shedding
  (`repro serve --async`).
* :mod:`~repro.serving.loadgen` — the closed-loop load generator
  (`repro loadgen`).
* :mod:`~repro.serving.journal` — the write-ahead spill journal that
  makes acked ingestion survive process death.
* :mod:`~repro.serving.warmstart` — snapshot pair (table + statistics)
  behind `repro serve --warm-start`.
* :mod:`~repro.serving.relation` — the per-relation state bundle
  (table, statistics, namespace, journal) a
  :class:`~repro.catalog.catalog.Catalog` builds one of per dataset
  (docs/catalog.md).

See ``docs/serving.md`` for the design, including the "Durability &
warm start" section covering the crash-safety layer.
"""

from repro.serving.aserve import (
    AdmissionGate,
    AsyncFrontEnd,
    AsyncServerHandle,
    Overloaded,
    Singleflight,
    start_in_thread,
)
from repro.serving.degrade import (
    RUNG_FULL,
    RUNG_SHOWTUPLES,
    RUNG_SINGLE_LEVEL,
    RUNG_TRUNCATED,
    RUNGS,
    Deadline,
    DegradationLadder,
)
from repro.serving.errors import (
    ERROR_CODES,
    Degraded,
    DeadlineExceeded,
    IngestionStalled,
    InvalidRequest,
    PublishError,
    ServingError,
    UnknownTable,
    error_payload,
    error_response,
)
from repro.serving.faults import (
    FaultInjector,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
)
from repro.serving.journal import FSYNC_POLICIES, SpillJournal
from repro.serving.relation import Relation
from repro.serving.retry import CircuitBreaker, ResilientIngestor, RetryPolicy
from repro.serving.service import CategorizationService, ResultCache, ServeResult
from repro.serving.snapshot import EpochSnapshot, SnapshotStore
from repro.serving.warmstart import (
    SnapshotMismatch,
    WarmState,
    load_warm,
    write_stats_snapshot,
    write_table_snapshot,
)

from repro.serving.loadgen import DEFAULT_MIX, LoadReport, run_loadgen

__all__ = [
    "RUNG_FULL",
    "RUNG_SHOWTUPLES",
    "RUNG_SINGLE_LEVEL",
    "RUNG_TRUNCATED",
    "RUNGS",
    "AdmissionGate",
    "AsyncFrontEnd",
    "AsyncServerHandle",
    "DEFAULT_MIX",
    "ERROR_CODES",
    "LoadReport",
    "Overloaded",
    "Singleflight",
    "run_loadgen",
    "start_in_thread",
    "CategorizationService",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "Degraded",
    "DegradationLadder",
    "EpochSnapshot",
    "FaultInjector",
    "FaultSpec",
    "FSYNC_POLICIES",
    "IngestionStalled",
    "InjectedCrash",
    "InjectedFault",
    "InvalidRequest",
    "PublishError",
    "Relation",
    "ResilientIngestor",
    "ResultCache",
    "RetryPolicy",
    "ServeResult",
    "ServingError",
    "SnapshotMismatch",
    "SnapshotStore",
    "SpillJournal",
    "UnknownTable",
    "WarmState",
    "error_payload",
    "error_response",
    "load_warm",
    "write_stats_snapshot",
    "write_table_snapshot",
]
